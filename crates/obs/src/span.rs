//! Request-scoped tracing: trace/span ids, timed stage spans, and
//! tail-based sampling.
//!
//! A [`Tracer`] mirrors the [`crate::recorder::Recorder`] design — an
//! `Option<Arc<_>>` whose `noop()` form costs one branch on every hot-path
//! call and allocates nothing. An enabled tracer hands out lock-free
//! [`TraceId`]/[`SpanId`] pairs (an atomic counter mixed through
//! splitmix64, seeded per process so ids stay distinct across restarts)
//! and collects closed [`SpanRecord`]s per trace until the owner calls
//! [`Tracer::complete`].
//!
//! Sampling is **tail-based**: the keep/drop decision happens at
//! completion time, when the trace's total duration and any
//! [`Tracer::force_keep`] marks (alarms, quarantines) are known. A kept
//! trace becomes a [`TraceTree`] — one JSON line of parent-linked spans —
//! queued for the owner to [`Tracer::drain`] into a spans file and
//! mirrored into a small `recent` ring for the `/debug/spans` endpoint.
//!
//! Spans are deliberately dumb data: [`OpenSpan`] is `Copy` and carries
//! its start as microseconds-since-anchor, so a span opened on the HTTP
//! thread (queue admission) can be closed by the tenant worker thread
//! that dequeues the batch.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Completed traces buffered for [`Tracer::drain`]. Beyond this the oldest
/// trees are dropped (counted) — a stalled drainer must not OOM the server.
const FINISHED_CAP: usize = 1024;

/// Kept traces mirrored for `/debug/spans`, newest last.
const RECENT_CAP: usize = 64;

/// SplitMix64 — the id/sampling mixer. Statistically uniform output for
/// sequential input, so `mix(seed + n)` is a cheap unique-id stream and
/// `mix(trace) % 1e6` is an unbiased sampling coin.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Identifies one end-to-end request (accept → verdict). Rendered as 16
/// lowercase hex digits everywhere: span files, access logs, `purposectl
/// trace` arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl TraceId {
    /// Parse the 16-hex-digit rendering back into an id.
    pub fn parse(s: &str) -> Option<TraceId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// Identifies one span within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The pipeline stages a request's spans are tagged with — a closed set so
/// the per-stage latency histograms stay inside the closed metric
/// vocabulary and the span schema can enumerate them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Socket accept → response written (the root span).
    Accept,
    /// Parse + watermark check + queue push on the HTTP thread.
    Admission,
    /// Queue residence: admission push → worker dequeue.
    QueueWait,
    /// `ShardedMonitor::ingest` over the batch (live replay).
    Replay,
    /// One eviction: encode + spill-store insert.
    Spill,
    /// One rehydration: spill-store take + decode + re-admit.
    Rehydrate,
    /// Post-replay bookkeeping: counter moves, alarm scan, offset commit.
    Verdict,
}

/// Every stage, in pipeline order.
pub const STAGES: [Stage; 7] = [
    Stage::Accept,
    Stage::Admission,
    Stage::QueueWait,
    Stage::Replay,
    Stage::Spill,
    Stage::Rehydrate,
    Stage::Verdict,
];

impl Stage {
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::Replay => "replay",
            Stage::Spill => "spill",
            Stage::Rehydrate => "rehydrate",
            Stage::Verdict => "verdict",
        }
    }

    /// The per-stage latency histogram this stage's closed spans feed.
    /// Flat names (`stage_latency_us_<stage>`): the registry has no label
    /// dimension — the `tenant` label is supplied by [`crate::prometheus_multi`],
    /// and the stage is baked into the family name.
    pub fn histogram_name(self) -> &'static str {
        match self {
            Stage::Accept => "stage_latency_us_accept",
            Stage::Admission => "stage_latency_us_admission",
            Stage::QueueWait => "stage_latency_us_queue_wait",
            Stage::Replay => "stage_latency_us_replay",
            Stage::Spill => "stage_latency_us_spill",
            Stage::Rehydrate => "stage_latency_us_rehydrate",
            Stage::Verdict => "stage_latency_us_verdict",
        }
    }

    pub fn parse(s: &str) -> Option<Stage> {
        STAGES.iter().copied().find(|st| st.as_str() == s)
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A span that has been opened but not yet closed. `Copy` + all-integer so
/// it can cross threads (queue-wait spans open on the HTTP thread and
/// close on the tenant worker) and be parked inside queued batches.
#[derive(Clone, Copy, Debug)]
pub struct OpenSpan {
    pub trace: TraceId,
    pub span: SpanId,
    pub parent: Option<SpanId>,
    pub stage: Stage,
    pub start_us: u64,
}

/// One closed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub trace: TraceId,
    pub span: SpanId,
    pub parent: Option<SpanId>,
    pub stage: Stage,
    pub start_us: u64,
    pub dur_us: u64,
    /// The case a spill/rehydrate span worked on, when known.
    pub case: Option<String>,
}

/// A completed, kept trace: its spans plus the tail-sampling verdict.
#[derive(Clone, Debug)]
pub struct TraceTree {
    pub trace: TraceId,
    /// End-to-end duration: max span end minus min span start.
    pub dur_us: u64,
    /// Why the tail sampler kept it: `"forced"`, `"slow"` or `"sampled"`.
    pub kept: &'static str,
    pub spans: Vec<SpanRecord>,
}

impl TraceTree {
    /// One JSON line, schema `schemas/span.schema.json`. Deterministic
    /// field order; `parent`/`case` are `null` when absent.
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(128 + self.spans.len() * 160);
        write!(
            s,
            "{{\"trace\":\"{}\",\"dur_us\":{},\"kept\":\"{}\",\"spans\":[",
            self.trace, self.dur_us, self.kept
        )
        .unwrap();
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write!(
                s,
                "{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":",
                span.trace, span.span
            )
            .unwrap();
            match span.parent {
                Some(p) => write!(s, "\"{p}\"").unwrap(),
                None => s.push_str("null"),
            }
            write!(
                s,
                ",\"stage\":\"{}\",\"start_us\":{},\"dur_us\":{},\"case\":",
                span.stage, span.start_us, span.dur_us
            )
            .unwrap();
            match &span.case {
                Some(c) => s.push_str(&crate::json::escape(c)),
                None => s.push_str("null"),
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

struct PendingTrace {
    spans: Vec<SpanRecord>,
    forced: bool,
    /// Outstanding [`Tracer::complete`] calls before the trace finalizes.
    /// [`Tracer::start`] sets 1; [`Tracer::retain`] adds one per extra
    /// party (the tenant worker that closes spans after the HTTP thread
    /// has answered). The *last* completer applies the tail decision, so
    /// the finish/complete race across threads cannot drop spans.
    holds: u32,
}

struct TracerInner {
    anchor: Instant,
    /// Head-sampling rate in parts per million (tail-applied).
    sample_per_million: u64,
    /// Traces at least this long are always kept.
    slow_us: u64,
    /// Id stream state: `mix(seed + fetch_add(1))`.
    ids: AtomicU64,
    id_seed: u64,
    pending: Mutex<HashMap<u64, PendingTrace>>,
    finished: Mutex<VecDeque<TraceTree>>,
    recent: Mutex<VecDeque<TraceTree>>,
    spans_total: AtomicU64,
    traces_started: AtomicU64,
    traces_kept: AtomicU64,
    traces_dropped: AtomicU64,
}

impl TracerInner {
    /// Poison-tolerant locks, same rationale as the recorder ring: a
    /// panicking worker must not take sibling telemetry down.
    fn pending(&self) -> std::sync::MutexGuard<'_, HashMap<u64, PendingTrace>> {
        self.pending.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn finished(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceTree>> {
        self.finished.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn recent(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceTree>> {
        self.recent.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn now_us(&self) -> u64 {
        self.anchor.elapsed().as_micros() as u64
    }

    fn next_id(&self) -> u64 {
        let n = self.ids.fetch_add(1, Ordering::Relaxed);
        // mix() maps 0 to 0; the seed offset keeps ids nonzero in practice
        // and distinct across processes.
        mix(self.id_seed.wrapping_add(n)) | 1
    }
}

/// Handle to the tracing pipeline. Cloning shares the buffers.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TracerInner>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Tracer::noop"),
            Some(inner) => f
                .debug_struct("Tracer")
                .field("sample_per_million", &inner.sample_per_million)
                .field("slow_us", &inner.slow_us)
                .field("pending", &inner.pending().len())
                .finish(),
        }
    }
}

impl Tracer {
    /// The disabled tracer: `enabled()` is false, [`Tracer::start`] returns
    /// `None`, nothing is ever allocated.
    pub const fn noop() -> Tracer {
        Tracer(None)
    }

    /// An enabled tracer. `sample` is the fraction of completed traces
    /// kept regardless of duration (clamped to `0.0..=1.0`); traces at
    /// least `slow_us` long and [`Tracer::force_keep`]-marked traces are
    /// always kept.
    pub fn sampled(sample: f64, slow_us: u64) -> Tracer {
        let per_million = (sample.clamp(0.0, 1.0) * 1_000_000.0).round() as u64;
        let id_seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
            ^ (u64::from(std::process::id()) << 32);
        Tracer(Some(Arc::new(TracerInner {
            anchor: Instant::now(),
            sample_per_million: per_million,
            slow_us,
            ids: AtomicU64::new(0),
            id_seed: mix(id_seed),
            pending: Mutex::new(HashMap::new()),
            finished: Mutex::new(VecDeque::new()),
            recent: Mutex::new(VecDeque::new()),
            spans_total: AtomicU64::new(0),
            traces_started: AtomicU64::new(0),
            traces_kept: AtomicU64::new(0),
            traces_dropped: AtomicU64::new(0),
        })))
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Microseconds since the tracer's anchor — the clock every span start
    /// is expressed in. Returns 0 when disabled.
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(inner) => inner.now_us(),
        }
    }

    /// Begin a new trace. `None` when disabled — callers skip all span
    /// work off that one branch.
    pub fn start(&self) -> Option<TraceId> {
        let inner = self.0.as_ref()?;
        let trace = TraceId(inner.next_id());
        inner.pending().insert(
            trace.0,
            PendingTrace {
                spans: Vec::new(),
                forced: false,
                holds: 1,
            },
        );
        inner.traces_started.fetch_add(1, Ordering::Relaxed);
        Some(trace)
    }

    /// Add a completion hold: the trace now needs one more
    /// [`Tracer::complete`] call before it finalizes. Call before handing
    /// the trace to another thread that will close spans of its own.
    pub fn retain(&self, trace: TraceId) {
        if let Some(inner) = &self.0 {
            if let Some(p) = inner.pending().get_mut(&trace.0) {
                p.holds += 1;
            }
        }
    }

    /// Open a span. Cheap: two atomics, no lock — the record is built at
    /// [`Tracer::finish`].
    pub fn begin(&self, trace: TraceId, parent: Option<SpanId>, stage: Stage) -> OpenSpan {
        let (span, start_us) = match &self.0 {
            None => (SpanId(0), 0),
            Some(inner) => (SpanId(inner.next_id()), inner.now_us()),
        };
        OpenSpan {
            trace,
            span,
            parent,
            stage,
            start_us,
        }
    }

    /// Close a span into its pending trace. Returns the span duration in
    /// microseconds (0 when disabled) so the caller can feed the per-stage
    /// latency histogram without a second clock read.
    pub fn finish(&self, open: OpenSpan, case: Option<&str>) -> u64 {
        let Some(inner) = &self.0 else { return 0 };
        let dur_us = inner.now_us().saturating_sub(open.start_us);
        let record = SpanRecord {
            trace: open.trace,
            span: open.span,
            parent: open.parent,
            stage: open.stage,
            start_us: open.start_us,
            dur_us,
            case: case.map(str::to_string),
        };
        inner.spans_total.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = inner.pending().get_mut(&open.trace.0) {
            p.spans.push(record);
        }
        dur_us
    }

    /// Mark a trace always-keep (alarm raised, lines quarantined, request
    /// errored) regardless of duration or sampling coin.
    pub fn force_keep(&self, trace: TraceId) {
        if let Some(inner) = &self.0 {
            if let Some(p) = inner.pending().get_mut(&trace.0) {
                p.forced = true;
            }
        }
    }

    /// Complete a trace: apply the tail-sampling decision and, if kept,
    /// queue its [`TraceTree`] for [`Tracer::drain`]. Returns the tree
    /// when the trace was kept.
    pub fn complete(&self, trace: TraceId) -> Option<TraceTree> {
        let inner = self.0.as_ref()?;
        let pending = {
            let mut map = inner.pending();
            let p = map.get_mut(&trace.0)?;
            p.holds = p.holds.saturating_sub(1);
            if p.holds > 0 {
                return None;
            }
            map.remove(&trace.0)?
        };
        let start = pending.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = pending
            .spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0);
        let dur_us = end.saturating_sub(start);
        let kept = if pending.forced {
            Some("forced")
        } else if dur_us >= inner.slow_us {
            Some("slow")
        } else if mix(trace.0) % 1_000_000 < inner.sample_per_million {
            Some("sampled")
        } else {
            None
        };
        let kept = kept?;
        inner.traces_kept.fetch_add(1, Ordering::Relaxed);
        let tree = TraceTree {
            trace,
            dur_us,
            kept,
            spans: pending.spans,
        };
        let mut finished = inner.finished();
        if finished.len() >= FINISHED_CAP {
            finished.pop_front();
            inner.traces_dropped.fetch_add(1, Ordering::Relaxed);
        }
        finished.push_back(tree.clone());
        drop(finished);
        let mut recent = inner.recent();
        if recent.len() >= RECENT_CAP {
            recent.pop_front();
        }
        recent.push_back(tree.clone());
        Some(tree)
    }

    /// Take every kept-but-unwritten trace (oldest first). The serve loop
    /// calls this periodically and appends the JSON lines durably.
    pub fn drain(&self) -> Vec<TraceTree> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner.finished().drain(..).collect(),
        }
    }

    /// The most recent kept traces (up to `limit`, newest last) — the
    /// `/debug/spans` view. Non-destructive.
    pub fn recent(&self, limit: usize) -> Vec<TraceTree> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => {
                let recent = inner.recent();
                let skip = recent.len().saturating_sub(limit);
                recent.iter().skip(skip).cloned().collect()
            }
        }
    }

    /// Spans closed since construction.
    pub fn spans_total(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.spans_total.load(Ordering::Relaxed))
    }

    /// Traces the tail sampler kept.
    pub fn traces_kept(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.traces_kept.load(Ordering::Relaxed))
    }

    /// Kept traces evicted before a drain picked them up.
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.traces_dropped.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_costs_nothing_and_returns_nothing() {
        let t = Tracer::noop();
        assert!(!t.enabled());
        assert!(t.start().is_none());
        let open = t.begin(TraceId(7), None, Stage::Accept);
        assert_eq!(t.finish(open, None), 0);
        assert!(t.drain().is_empty());
        assert!(t.recent(10).is_empty());
    }

    #[test]
    fn ids_are_distinct_and_nonzero() {
        let t = Tracer::sampled(1.0, u64::MAX);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = t.start().unwrap();
            assert_ne!(id.0, 0);
            assert!(seen.insert(id.0), "duplicate trace id {id}");
            t.complete(id);
        }
    }

    #[test]
    fn trace_id_round_trips_through_display() {
        let id = TraceId(0x00ab_cdef_0123_4567);
        assert_eq!(TraceId::parse(&id.to_string()), Some(id));
        assert_eq!(TraceId::parse("xyz"), None);
        assert_eq!(TraceId::parse("123"), None);
    }

    #[test]
    fn sample_zero_keeps_only_forced_and_slow() {
        let t = Tracer::sampled(0.0, u64::MAX);
        // Plain trace: dropped.
        let a = t.start().unwrap();
        let open = t.begin(a, None, Stage::Accept);
        t.finish(open, None);
        assert!(t.complete(a).is_none());
        // Forced trace: kept.
        let b = t.start().unwrap();
        let open = t.begin(b, None, Stage::Accept);
        t.finish(open, None);
        t.force_keep(b);
        let tree = t.complete(b).expect("forced trace kept");
        assert_eq!(tree.kept, "forced");
        assert_eq!(t.traces_kept(), 1);
        assert_eq!(t.drain().len(), 1);
        assert!(t.drain().is_empty(), "drain empties the queue");
    }

    #[test]
    fn slow_traces_always_keep() {
        let t = Tracer::sampled(0.0, 0); // every trace counts as slow
        let a = t.start().unwrap();
        let open = t.begin(a, None, Stage::Replay);
        t.finish(open, Some("HT-1"));
        let tree = t.complete(a).expect("slow trace kept");
        assert_eq!(tree.kept, "slow");
        assert_eq!(tree.spans.len(), 1);
        assert_eq!(tree.spans[0].case.as_deref(), Some("HT-1"));
    }

    #[test]
    fn sample_one_keeps_everything() {
        let t = Tracer::sampled(1.0, u64::MAX);
        for _ in 0..100 {
            let a = t.start().unwrap();
            let open = t.begin(a, None, Stage::Accept);
            t.finish(open, None);
            assert!(t.complete(a).is_some());
        }
        assert_eq!(t.traces_kept(), 100);
    }

    #[test]
    fn spans_cross_threads_and_link_parents() {
        let t = Tracer::sampled(1.0, u64::MAX);
        let trace = t.start().unwrap();
        let root = t.begin(trace, None, Stage::Accept);
        let queued = t.begin(trace, Some(root.span), Stage::QueueWait);
        let t2 = t.clone();
        std::thread::spawn(move || {
            t2.finish(queued, None);
            let replay = t2.begin(queued.trace, Some(queued.span), Stage::Replay);
            t2.finish(replay, None);
        })
        .join()
        .unwrap();
        t.finish(root, None);
        let tree = t.complete(trace).expect("kept");
        assert_eq!(tree.spans.len(), 3);
        // Every non-root parent id points at a span in the tree.
        let ids: std::collections::HashSet<u64> = tree.spans.iter().map(|s| s.span.0).collect();
        for s in &tree.spans {
            if let Some(p) = s.parent {
                assert!(ids.contains(&p.0), "orphan span {}", s.span);
            }
        }
        let line = tree.to_json_line();
        let doc = crate::parse_json(&line).expect("span line parses");
        assert_eq!(
            doc.get("trace").and_then(|v| v.as_str()),
            Some(trace.to_string().as_str())
        );
        assert_eq!(
            doc.get("spans").and_then(|v| v.as_array()).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn finished_ring_is_bounded() {
        let t = Tracer::sampled(1.0, u64::MAX);
        for _ in 0..FINISHED_CAP + 10 {
            let a = t.start().unwrap();
            let open = t.begin(a, None, Stage::Accept);
            t.finish(open, None);
            t.complete(a);
        }
        assert_eq!(t.dropped(), 10);
        assert_eq!(t.drain().len(), FINISHED_CAP);
    }

    #[test]
    fn stage_round_trip_and_histogram_names() {
        for stage in STAGES {
            assert_eq!(Stage::parse(stage.as_str()), Some(stage));
            assert!(stage
                .histogram_name()
                .strip_prefix("stage_latency_us_")
                .is_some());
        }
        assert_eq!(Stage::parse("warp"), None);
    }

    #[test]
    fn retained_traces_finalize_on_the_last_complete() {
        let t = Tracer::sampled(1.0, u64::MAX);
        let trace = t.start().unwrap();
        t.retain(trace); // a second party (the worker) now holds it
        let accept = t.begin(trace, None, Stage::Accept);
        t.finish(accept, None);
        // First complete (HTTP thread): trace must stay pending.
        assert!(t.complete(trace).is_none());
        // The other party can still add spans — nothing was dropped.
        let replay = t.begin(trace, Some(accept.span), Stage::Replay);
        t.finish(replay, None);
        let tree = t.complete(trace).expect("last complete finalizes");
        assert_eq!(tree.spans.len(), 2);
        // A third complete is a no-op, not a double-finalize.
        assert!(t.complete(trace).is_none());
        assert_eq!(t.drain().len(), 1);
    }
}
