//! Per-case evidence traces — the auditable record of *why* a verdict.
//!
//! Algorithm 1 walks a set of configurations `(state, active_tasks, next)`
//! over the case's log entries. A [`CaseEvidence`] captures that walk:
//! one [`EvidenceStep`] per consumed entry (which observable matched, the
//! active/token tasks afterwards, the size of the `WeakNext` frontier) and,
//! when the replay deviated, an [`EvidenceViolation`] naming the exact
//! entry that triggered `sys·Err` and the observations that were expected
//! instead.
//!
//! Everything here is plain strings and integers: `obs` sits at the bottom
//! of the dependency graph, so the engine renders its domain types
//! (`Observation`, `LogEntry`, task names) into stable labels before
//! handing them over. Crucially there are **no timestamps** in the
//! serialized form — the JSONL line for a case is a pure function of the
//! trail and the process model, which is what lets the determinism test
//! demand byte-identical traces across runs *and* across the
//! `direct`/`automaton` engines.

use std::fmt::Write as _;

use crate::json::escape;

/// One consumed log entry during replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvidenceStep {
    /// Index of the entry within the case (0-based).
    pub index: usize,
    /// The rendered log entry (`user role action object task case time status`).
    pub entry: String,
    /// How the entry matched: `absorbed:R.T`, `started:R.T`, or `err:sys.Err`.
    pub matched: String,
    /// Active (started, unfinished) tasks after the step, sorted.
    pub active: Vec<String>,
    /// Token tasks — tasks some surviving configuration could still start —
    /// after the step, sorted.
    pub tokens: Vec<String>,
    /// Total `WeakNext` frontier size: sum of expected-next observation
    /// counts across all surviving configurations.
    pub frontier: usize,
    /// Surviving configuration count after the step.
    pub configurations: usize,
}

/// The deviation that ended a non-compliant replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvidenceViolation {
    /// Index of the offending entry within the case.
    pub entry_index: usize,
    /// The rendered offending entry.
    pub entry: String,
    /// The observations the surviving configurations would have accepted,
    /// sorted and deduplicated.
    pub expected: Vec<String>,
    /// Stable violation kind label (e.g. `unexpected-action`,
    /// `purpose-incomplete`).
    pub kind: String,
}

/// The full evidence trace for one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseEvidence {
    pub case: String,
    pub purpose: String,
    /// Engine label: `direct`, `automaton` or `trie`. Recorded for
    /// provenance; the steps themselves must not differ between engines.
    pub engine: String,
    /// Verdict label: `compliant`, `compliant-incomplete`, `infringement`.
    pub verdict: String,
    pub steps: Vec<EvidenceStep>,
    pub violation: Option<EvidenceViolation>,
}

fn string_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(s));
    }
    out.push(']');
}

impl CaseEvidence {
    /// Serialize as one JSONL line (no trailing newline). Field order is
    /// fixed and there are no timestamps, so the line is deterministic.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256 + self.steps.len() * 128);
        write!(
            s,
            "{{\"case\":{},\"purpose\":{},\"engine\":{},\"verdict\":{},\"steps\":[",
            escape(&self.case),
            escape(&self.purpose),
            escape(&self.engine),
            escape(&self.verdict)
        )
        .unwrap();
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write!(
                s,
                "{{\"index\":{},\"entry\":{},\"matched\":{},\"active\":",
                step.index,
                escape(&step.entry),
                escape(&step.matched)
            )
            .unwrap();
            string_array(&mut s, &step.active);
            s.push_str(",\"tokens\":");
            string_array(&mut s, &step.tokens);
            write!(
                s,
                ",\"frontier\":{},\"configurations\":{}}}",
                step.frontier, step.configurations
            )
            .unwrap();
        }
        s.push_str("],\"violation\":");
        match &self.violation {
            None => s.push_str("null"),
            Some(v) => {
                write!(
                    s,
                    "{{\"entry_index\":{},\"entry\":{},\"kind\":{},\"expected\":",
                    v.entry_index,
                    escape(&v.entry),
                    escape(&v.kind)
                )
                .unwrap();
                string_array(&mut s, &v.expected);
                s.push('}');
            }
        }
        s.push('}');
        s
    }

    /// Human-readable rendering for `purposectl audit --explain <case>`:
    /// the replayed configuration path, one line per consumed entry,
    /// ending at the violating entry when there is one.
    pub fn render_explain(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "case {} [purpose {}] — {} ({} entries, engine {})",
            self.case,
            self.purpose,
            self.verdict,
            self.steps.len(),
            self.engine
        )
        .unwrap();
        for step in &self.steps {
            let active = if step.active.is_empty() {
                "-".to_string()
            } else {
                step.active.join(",")
            };
            let tokens = if step.tokens.is_empty() {
                "-".to_string()
            } else {
                step.tokens.join(",")
            };
            writeln!(
                s,
                "  #{:<4} {:<24} active[{active}] tokens[{tokens}] frontier={} confs={}",
                step.index, step.matched, step.frontier, step.configurations
            )
            .unwrap();
            writeln!(s, "        {}", step.entry).unwrap();
        }
        match &self.violation {
            None => {
                writeln!(
                    s,
                    "  => no deviation: trail conforms to the purpose process"
                )
                .unwrap();
            }
            Some(v) => {
                writeln!(
                    s,
                    "  => sys·Err at entry #{} ({}): {}",
                    v.entry_index, v.kind, v.entry
                )
                .unwrap();
                if v.expected.is_empty() {
                    writeln!(s, "     expected: (nothing — process already complete)").unwrap();
                } else {
                    writeln!(s, "     expected one of: {}", v.expected.join(", ")).unwrap();
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CaseEvidence {
        CaseEvidence {
            case: "41".into(),
            purpose: "treatment".into(),
            engine: "automaton".into(),
            verdict: "infringement".into(),
            steps: vec![EvidenceStep {
                index: 0,
                entry: "alice doctor write chart visit 41 100 success".into(),
                matched: "started:doctor.visit".into(),
                active: vec!["doctor.visit".into()],
                tokens: vec!["doctor.visit".into(), "nurse.triage".into()],
                frontier: 3,
                configurations: 1,
            }],
            violation: Some(EvidenceViolation {
                entry_index: 1,
                entry: "mallory clerk read chart billing 41 101 success".into(),
                expected: vec!["doctor.visit".into()],
                kind: "unexpected-action".into(),
            }),
        }
    }

    #[test]
    fn jsonl_is_valid_json_and_deterministic() {
        let ev = sample();
        let a = ev.to_json_line();
        let b = ev.to_json_line();
        assert_eq!(a, b);
        assert!(!a.contains('\n'));
        let v = crate::json::parse_json(&a).unwrap();
        assert_eq!(v.get("case").unwrap().as_str(), Some("41"));
        assert_eq!(
            v.get("violation").unwrap().get("kind").unwrap().as_str(),
            Some("unexpected-action")
        );
        assert_eq!(v.get("steps").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn explain_ends_at_the_violating_entry() {
        let text = sample().render_explain();
        assert!(text.starts_with("case 41 [purpose treatment] — infringement"));
        assert!(text.contains("started:doctor.visit"));
        assert!(text.contains("sys·Err at entry #1"));
        assert!(text.contains("expected one of: doctor.visit"));
    }

    #[test]
    fn compliant_trace_has_null_violation() {
        let mut ev = sample();
        ev.violation = None;
        ev.verdict = "compliant".into();
        let line = ev.to_json_line();
        let v = crate::json::parse_json(&line).unwrap();
        assert_eq!(v.get("violation"), Some(&crate::json::JsonValue::Null));
        assert!(ev.render_explain().contains("no deviation"));
    }
}
