//! `schema-check` — validate exported telemetry documents in CI.
//!
//! Usage:
//!   schema-check --schema schemas/metrics.schema.json metrics.json
//!   schema-check --schema schemas/trace.schema.json --jsonl traces.jsonl
//!
//! Exits non-zero (listing every violation) if any document fails, which
//! is what makes the CI telemetry job fail on unknown or missing keys.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut schema_path: Option<String> = None;
    let mut jsonl = false;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--schema" => {
                i += 1;
                schema_path = args.get(i).cloned();
            }
            "--jsonl" => jsonl = true,
            other => files.push(other.to_string()),
        }
        i += 1;
    }
    let Some(schema_path) = schema_path else {
        eprintln!("usage: schema-check --schema <schema.json> [--jsonl] <file>...");
        return ExitCode::from(2);
    };
    if files.is_empty() {
        eprintln!("schema-check: no input files");
        return ExitCode::from(2);
    }

    let schema_text = match std::fs::read_to_string(&schema_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("schema-check: cannot read {schema_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let schema = match obs::parse_json(&schema_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("schema-check: {schema_path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("schema-check: cannot read {file}: {e}");
                failures += 1;
                continue;
            }
        };
        let docs: Vec<(String, &str)> = if jsonl {
            text.lines()
                .enumerate()
                .filter(|(_, l)| !l.trim().is_empty())
                .map(|(n, l)| (format!("{file}:{}", n + 1), l))
                .collect()
        } else {
            vec![(file.clone(), text.as_str())]
        };
        for (label, doc) in docs {
            match obs::parse_json(doc) {
                Err(e) => {
                    eprintln!("{label}: invalid JSON: {e}");
                    failures += 1;
                }
                Ok(value) => {
                    let errors = obs::validate(&value, &schema);
                    for err in &errors {
                        eprintln!("{label}: {err}");
                    }
                    if !errors.is_empty() {
                        failures += 1;
                    }
                }
            }
        }
    }

    if failures > 0 {
        eprintln!("schema-check: {failures} document(s) failed validation");
        ExitCode::FAILURE
    } else {
        println!("schema-check: ok ({} file(s))", files.len());
        ExitCode::SUCCESS
    }
}
