//! The span/event recorder.
//!
//! A [`Recorder`] is an `Option<Arc<RecorderInner>>` in a trenchcoat:
//! [`Recorder::noop()`] is `None`, so disabled recording costs a single
//! branch — the event value is never even constructed because [`emit`]
//! takes a closure. An enabled recorder appends [`TimedEvent`]s to a
//! bounded ring buffer (oldest events are dropped, with a counter, so a
//! 20k-entry day cannot OOM the auditor).
//!
//! Events are enum-tagged ([`ObsEvent`]) rather than free-form strings so
//! the CLI renders them through one consistent `--verbose` path, and so
//! tests can match on structure instead of scraping text.
//!
//! [`emit`]: Recorder::emit

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity: enough for a full hospital-day audit at one
/// event per entry plus lifecycle events, small enough to stay cheap.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A structured observability event. Variants mirror the engine's
/// lifecycle: startup, per-case replay, salvage, snapshots, quarantine.
#[derive(Clone, Debug, PartialEq)]
pub enum ObsEvent {
    /// Automaton startup resolved (warm from snapshot or cold compile).
    /// `detail` is the human line previously printed ad hoc, e.g.
    /// `"warm start: 12 states, 12 edge tables from snapshot (0 new)"`.
    Startup {
        purpose: Option<String>,
        detail: String,
    },
    /// A compiled automaton snapshot was persisted.
    SnapshotSaved { path: String },
    /// A case replay began.
    CaseStart { case: String, entries: usize },
    /// A case replay finished. `verdict` is a stable short label
    /// (`"compliant"`, `"infringement"`, `"inconclusive"`).
    CaseEnd { case: String, verdict: String },
    /// One log entry was consumed during replay.
    EntryStep {
        case: String,
        index: usize,
        matched: String,
        frontier: usize,
    },
    /// The automaton expanded a state's successor table (cache miss).
    AutomatonExpand { state: u32, successors: usize },
    /// One `WeakNext` closure (Def. 7) was computed directly: how many
    /// τ-states the BFS visited and how many observable successors it
    /// yielded.
    WeakNext {
        tau_states: usize,
        successors: usize,
    },
    /// The transitions memo evicted half a shard (cold path).
    CacheEviction { shard: usize, evicted: usize },
    /// Degraded-mode salvage summary line.
    Degraded { detail: String },
    /// A trail line was quarantined during salvage.
    Quarantined { line: String },
    /// An out-of-order arrival was noted during salvage.
    Noted { arrival: String },
    /// The quarantine report was written.
    QuarantineReport { path: String },
    /// Free-form diagnostic that has no structured variant (kept rare).
    Diagnostic { detail: String },
    /// A tracing span was opened (flight-recorder context for postmortems;
    /// the span registry itself lives in `obs::span`).
    SpanOpen { trace: u64, stage: &'static str },
    /// A tracing span closed after `dur_us` microseconds.
    SpanClose {
        trace: u64,
        stage: &'static str,
        dur_us: u64,
    },
    /// A tenant ingest-queue depth snapshot.
    QueueDepth { tenant: String, depth: u64 },
    /// A tenant worker finished a batch: the tenant's audited stream
    /// offset advanced to `offset`. The last of these in a flight dump is
    /// the offset the tenant had durably reported when the process died.
    OffsetCommit { tenant: String, offset: u64 },
}

impl ObsEvent {
    /// Stable variant tag — the `kind` field of flight-recorder JSON lines
    /// (`schemas/flight.schema.json` enumerates these).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::Startup { .. } => "Startup",
            ObsEvent::SnapshotSaved { .. } => "SnapshotSaved",
            ObsEvent::CaseStart { .. } => "CaseStart",
            ObsEvent::CaseEnd { .. } => "CaseEnd",
            ObsEvent::EntryStep { .. } => "EntryStep",
            ObsEvent::AutomatonExpand { .. } => "AutomatonExpand",
            ObsEvent::WeakNext { .. } => "WeakNext",
            ObsEvent::CacheEviction { .. } => "CacheEviction",
            ObsEvent::Degraded { .. } => "Degraded",
            ObsEvent::Quarantined { .. } => "Quarantined",
            ObsEvent::Noted { .. } => "Noted",
            ObsEvent::QuarantineReport { .. } => "QuarantineReport",
            ObsEvent::Diagnostic { .. } => "Diagnostic",
            ObsEvent::SpanOpen { .. } => "SpanOpen",
            ObsEvent::SpanClose { .. } => "SpanClose",
            ObsEvent::QueueDepth { .. } => "QueueDepth",
            ObsEvent::OffsetCommit { .. } => "OffsetCommit",
        }
    }
}

impl std::fmt::Display for ObsEvent {
    /// Renders exactly the diagnostic lines the CLI printed before events
    /// existed — existing integration tests assert on these strings.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsEvent::Startup { purpose, detail } => match purpose {
                Some(p) => write!(f, "automaton[{p}]: {detail}"),
                None => write!(f, "automaton: {detail}"),
            },
            ObsEvent::SnapshotSaved { path } => {
                write!(f, "automaton: snapshot saved to {path}")
            }
            ObsEvent::CaseStart { case, entries } => {
                write!(f, "case {case}: replay start ({entries} entries)")
            }
            ObsEvent::CaseEnd { case, verdict } => {
                write!(f, "case {case}: {verdict}")
            }
            ObsEvent::EntryStep {
                case,
                index,
                matched,
                frontier,
            } => write!(
                f,
                "case {case}: entry {index} {matched} (frontier {frontier})"
            ),
            ObsEvent::AutomatonExpand { state, successors } => {
                write!(
                    f,
                    "automaton: expanded state {state} ({successors} successors)"
                )
            }
            ObsEvent::WeakNext {
                tau_states,
                successors,
            } => write!(
                f,
                "weaknext: {tau_states} tau state(s) -> {successors} successor(s)"
            ),
            ObsEvent::CacheEviction { shard, evicted } => {
                write!(f, "semantics: memo shard {shard} evicted {evicted} entries")
            }
            ObsEvent::Degraded { detail } => write!(f, "degraded mode: {detail}"),
            ObsEvent::Quarantined { line } => write!(f, "  quarantined {line}"),
            ObsEvent::Noted { arrival } => write!(f, "  noted {arrival}"),
            ObsEvent::QuarantineReport { path } => {
                write!(f, "quarantine report written to {path}")
            }
            ObsEvent::Diagnostic { detail } => write!(f, "{detail}"),
            ObsEvent::SpanOpen { trace, stage } => {
                write!(f, "span open {stage} trace {trace:016x}")
            }
            ObsEvent::SpanClose {
                trace,
                stage,
                dur_us,
            } => write!(f, "span close {stage} trace {trace:016x} ({dur_us}us)"),
            ObsEvent::QueueDepth { tenant, depth } => {
                write!(f, "tenant {tenant}: queue depth {depth}")
            }
            ObsEvent::OffsetCommit { tenant, offset } => {
                write!(f, "tenant {tenant}: committed stream offset {offset}")
            }
        }
    }
}

/// An event plus the microseconds since the recorder was created
/// (monotonic — `Instant`-based, never wall clock, so traces built from
/// events stay deterministic when timestamps are excluded).
#[derive(Clone, Debug)]
pub struct TimedEvent {
    pub micros: u64,
    pub event: ObsEvent,
}

struct RecorderInner {
    anchor: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<TimedEvent>>,
    dropped: AtomicU64,
}

impl RecorderInner {
    /// Lock the ring, recovering from poisoning. A worker that panics
    /// while holding the lock (the exact fault `catch_unwind` case
    /// isolation contains) must not take every sibling's telemetry down
    /// with it — the ring holds plain event values, so the data is
    /// coherent even after a mid-`emit` panic.
    fn ring(&self) -> std::sync::MutexGuard<'_, VecDeque<TimedEvent>> {
        self.ring
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Handle to the event ring. Cloning shares the buffer.
#[derive(Clone)]
pub struct Recorder(Option<Arc<RecorderInner>>);

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Recorder::noop"),
            Some(inner) => f
                .debug_struct("Recorder")
                .field("capacity", &inner.capacity)
                .field("len", &inner.ring().len())
                .field("dropped", &inner.dropped.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::noop()
    }
}

impl Recorder {
    /// The disabled recorder: `enabled()` is false and [`Recorder::emit`]
    /// never runs its closure.
    pub const fn noop() -> Recorder {
        Recorder(None)
    }

    /// An enabled recorder with the default ring capacity.
    pub fn new() -> Recorder {
        Recorder::with_capacity(DEFAULT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Recorder {
        Recorder(Some(Arc::new(RecorderInner {
            anchor: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        })))
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record an event. The closure only runs when the recorder is
    /// enabled, so a noop recorder never pays for event construction
    /// (string formatting, clones) on the hot path.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> ObsEvent) {
        if let Some(inner) = &self.0 {
            let event = f();
            let micros = inner.anchor.elapsed().as_micros() as u64;
            let mut ring = inner.ring();
            if ring.len() >= inner.capacity {
                ring.pop_front();
                inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(TimedEvent { micros, event });
        }
    }

    /// Drain all buffered events (oldest first), leaving the ring empty.
    pub fn drain(&self) -> Vec<TimedEvent> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner.ring().drain(..).collect(),
        }
    }

    /// Snapshot the buffered events without draining.
    pub fn events(&self) -> Vec<TimedEvent> {
        match &self.0 {
            None => Vec::new(),
            Some(inner) => inner.ring().iter().cloned().collect(),
        }
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_never_constructs_events() {
        let r = Recorder::noop();
        let mut ran = false;
        r.emit(|| {
            ran = true;
            ObsEvent::Diagnostic { detail: "x".into() }
        });
        assert!(!ran);
        assert!(!r.enabled());
        assert!(r.drain().is_empty());
    }

    #[test]
    fn ring_bounds_and_drop_counter() {
        let r = Recorder::with_capacity(4);
        for i in 0..10 {
            r.emit(|| ObsEvent::CaseStart {
                case: format!("c{i}"),
                entries: i,
            });
        }
        let events = r.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(r.dropped(), 6);
        // Oldest dropped: the survivors are c6..c9.
        match &events[0].event {
            ObsEvent::CaseStart { case, .. } => assert_eq!(case, "c6"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_matches_legacy_cli_lines() {
        let e = ObsEvent::Startup {
            purpose: Some("fulfillment".into()),
            detail: "warm start: 3 states, 3 edge tables from snapshot (0 new)".into(),
        };
        assert_eq!(
            e.to_string(),
            "automaton[fulfillment]: warm start: 3 states, 3 edge tables from snapshot (0 new)"
        );
        let e = ObsEvent::SnapshotSaved {
            path: "/tmp/a.pcas".into(),
        };
        assert_eq!(e.to_string(), "automaton: snapshot saved to /tmp/a.pcas");
        let e = ObsEvent::Quarantined {
            line: "line 3: bad-column-count".into(),
        };
        assert_eq!(e.to_string(), "  quarantined line 3: bad-column-count");
    }

    #[test]
    fn poisoned_ring_recovers_for_sibling_workers() {
        let r = Recorder::with_capacity(16);
        r.emit(|| ObsEvent::Diagnostic {
            detail: "before".into(),
        });
        // A worker panics *inside* the emit closure — under `catch_unwind`
        // case isolation the process survives, but the closure runs before
        // the lock is taken, so also poison the mutex directly by panicking
        // while a guard is held.
        let poisoner = r.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            poisoner.emit(|| panic!("worker fault mid-emit"));
        }));
        assert!(result.is_err());
        let inner = r.0.as_ref().expect("enabled recorder");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = inner.ring.lock().unwrap_or_else(|e| e.into_inner());
            panic!("worker fault while holding the ring lock");
        }));
        assert!(result.is_err());
        assert!(inner.ring.is_poisoned());
        // Sibling workers keep recording and reading through the poison.
        r.emit(|| ObsEvent::Diagnostic {
            detail: "after".into(),
        });
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert!(format!("{r:?}").contains("len"));
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        match &drained[1].event {
            ObsEvent::Diagnostic { detail } => assert_eq!(detail, "after"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn timestamps_are_monotonic() {
        let r = Recorder::new();
        for _ in 0..5 {
            r.emit(|| ObsEvent::Diagnostic {
                detail: "tick".into(),
            });
        }
        let events = r.events();
        for w in events.windows(2) {
            assert!(w[0].micros <= w[1].micros);
        }
    }
}
