//! # obs — the telemetry spine of the purpose-control engine
//!
//! The paper's whole point is *a-posteriori* verification: an auditor must
//! be able to justify **why** a case was judged compliant or a violation,
//! not just receive a boolean. This crate is the observability layer that
//! turns the replay engine from a black box into an auditable instrument:
//!
//! * [`metrics`] — a zero-dependency metrics registry (counters, gauges,
//!   histograms with fixed log-scale buckets). Hot paths record into
//!   thread-owned [`metrics::Shard`]s and merge into the shared
//!   [`metrics::Registry`] at join, so the §7 parallel workers never take a
//!   lock per case. Exposition as stable JSON and Prometheus text.
//! * [`recorder`] — a lightweight span/event recorder: enum-tagged
//!   [`recorder::ObsEvent`]s with monotonic timestamps in a bounded ring
//!   buffer. [`recorder::Recorder::noop()`] is a `None` behind an `Option`;
//!   disabled recording costs one branch and no event construction.
//! * [`evidence`] — the per-case evidence trace: the sequence of
//!   configurations the replay walked (matched label, active tasks, token
//!   tasks, `WeakNext` frontier size per step) and the exact entry that
//!   triggered a deviation. Serialized as deterministic JSONL and rendered
//!   human-readably for `purposectl audit --explain <case>`.
//! * [`json`] — a minimal JSON value model (emit + parse) and a schema
//!   validator for the subset of JSON Schema the exported documents are
//!   checked against in CI (`schemas/*.schema.json`).
//! * [`span`] — request-scoped tracing: lock-free [`span::TraceId`] /
//!   [`span::SpanId`] allocation, per-stage timed spans, and tail-based
//!   sampling ([`span::Tracer`]) that keeps slow/alarmed traces and a
//!   configurable fraction of the rest as JSONL span trees.
//! * [`flight`] — the crash flight recorder: a process-global bounded ring
//!   of [`recorder::ObsEvent`]s covering the last N seconds, dumped to
//!   `flight.jsonl` on panic, SIGUSR1, or storage degradation.
//!
//! The crate deliberately depends on `std` alone so every other crate in
//! the workspace (including `cows` at the bottom of the graph) can thread
//! a [`Recorder`] through its hot paths without a dependency cycle.

pub mod evidence;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use evidence::{CaseEvidence, EvidenceStep, EvidenceViolation};
pub use json::{parse_json, validate, JsonValue, SchemaError};
pub use metrics::{prometheus_multi, HistogramSnapshot, Registry, Shard};
pub use recorder::{ObsEvent, Recorder, TimedEvent};
pub use span::{OpenSpan, SpanId, SpanRecord, Stage, TraceId, TraceTree, Tracer, STAGES};
