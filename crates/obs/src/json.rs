//! Minimal JSON: a value model, an emitter, a recursive-descent parser and
//! a validator for the JSON-Schema subset our exported documents use.
//!
//! The workspace deliberately has no `serde_json`; everything this engine
//! exports is assembled by hand (the bench report already did this), and
//! this module is where the shared pieces live. The parser exists so CI
//! can re-read `--metrics-out`/`--trace-out` files and check them against
//! the committed `schemas/*.schema.json` — failing on unknown **and**
//! missing keys, which plain pretty-printing can't do.
//!
//! Supported schema keywords: `type` (string or array of strings, with
//! `"integer"` meaning a fractionless number), `properties`, `required`,
//! `additionalProperties: false`, `items`, `enum` (strings only). That is
//! exactly what the two committed schemas use; anything else is rejected
//! loudly rather than silently ignored.

use std::collections::BTreeMap;

/// A parsed JSON document. Objects use `BTreeMap` so re-emission is
/// key-stable.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }

    fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// Escape a string as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a single JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse_json(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                b => {
                    // Collect the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// A schema violation, with a JSON-pointer-ish path to the offending node.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemaError {
    pub path: String,
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// Validate `value` against `schema` (itself a parsed JSON document using
/// the keyword subset described in the module docs). Returns every
/// violation found, empty = valid.
pub fn validate(value: &JsonValue, schema: &JsonValue) -> Vec<SchemaError> {
    let mut errors = Vec::new();
    validate_at(value, schema, "$", &mut errors);
    errors
}

fn type_matches(value: &JsonValue, ty: &str) -> bool {
    match ty {
        "null" => matches!(value, JsonValue::Null),
        "boolean" => matches!(value, JsonValue::Bool(_)),
        "number" => matches!(value, JsonValue::Number(_)),
        "integer" => matches!(value, JsonValue::Number(n) if n.fract() == 0.0),
        "string" => matches!(value, JsonValue::String(_)),
        "array" => matches!(value, JsonValue::Array(_)),
        "object" => matches!(value, JsonValue::Object(_)),
        _ => false,
    }
}

fn validate_at(value: &JsonValue, schema: &JsonValue, path: &str, errors: &mut Vec<SchemaError>) {
    let Some(schema_obj) = schema.as_object() else {
        errors.push(SchemaError {
            path: path.to_string(),
            message: "schema node is not an object".to_string(),
        });
        return;
    };

    if let Some(ty) = schema_obj.get("type") {
        let allowed: Vec<&str> = match ty {
            JsonValue::String(s) => vec![s.as_str()],
            JsonValue::Array(v) => v.iter().filter_map(|t| t.as_str()).collect(),
            _ => vec![],
        };
        if !allowed.iter().any(|t| type_matches(value, t)) {
            errors.push(SchemaError {
                path: path.to_string(),
                message: format!(
                    "expected type {}, found {}",
                    allowed.join("|"),
                    value.type_name()
                ),
            });
            return;
        }
    }

    if let Some(JsonValue::Array(options)) = schema_obj.get("enum") {
        let ok = options.iter().any(|o| o == value);
        if !ok {
            errors.push(SchemaError {
                path: path.to_string(),
                message: format!(
                    "value not in enum {:?}",
                    options
                        .iter()
                        .filter_map(|o| o.as_str())
                        .collect::<Vec<_>>()
                ),
            });
        }
    }

    if let (Some(obj), Some(props)) = (value.as_object(), schema_obj.get("properties")) {
        let props = props.as_object().cloned().unwrap_or_default();
        if let Some(JsonValue::Array(required)) = schema_obj.get("required") {
            for r in required.iter().filter_map(|r| r.as_str()) {
                if !obj.contains_key(r) {
                    errors.push(SchemaError {
                        path: path.to_string(),
                        message: format!("missing required key \"{r}\""),
                    });
                }
            }
        }
        let closed = matches!(
            schema_obj.get("additionalProperties"),
            Some(JsonValue::Bool(false))
        );
        for (k, v) in obj {
            match props.get(k) {
                Some(subschema) => validate_at(v, subschema, &format!("{path}.{k}"), errors),
                None if closed => errors.push(SchemaError {
                    path: path.to_string(),
                    message: format!("unknown key \"{k}\""),
                }),
                None => {}
            }
        }
    } else if value.as_object().is_some() {
        // Object with no `properties` but additionalProperties:false and a
        // sub-schema for values via `items` is not a shape we use; objects
        // whose keys are dynamic (metric names) use `valueSchema`.
        if let Some(value_schema) = schema_obj.get("valueSchema") {
            for (k, v) in value.as_object().unwrap() {
                validate_at(v, value_schema, &format!("{path}.{k}"), errors);
            }
        }
    }

    if let (Some(items), Some(item_schema)) = (value.as_array(), schema_obj.get("items")) {
        for (i, item) in items.iter().enumerate() {
            validate_at(item, item_schema, &format!("{path}[{i}]"), errors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_basics() {
        let v = parse_json(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-3.0));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\n")
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        let lit = escape(s);
        let back = parse_json(&lit).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn validator_flags_unknown_and_missing() {
        let schema = parse_json(
            r#"{
                "type": "object",
                "additionalProperties": false,
                "required": ["name", "count"],
                "properties": {
                    "name": { "type": "string" },
                    "count": { "type": "integer" }
                }
            }"#,
        )
        .unwrap();
        let ok = parse_json(r#"{"name": "x", "count": 3}"#).unwrap();
        assert!(validate(&ok, &schema).is_empty());

        let missing = parse_json(r#"{"name": "x"}"#).unwrap();
        let errs = validate(&missing, &schema);
        assert!(errs.iter().any(|e| e.message.contains("count")));

        let unknown = parse_json(r#"{"name": "x", "count": 3, "extra": 1}"#).unwrap();
        let errs = validate(&unknown, &schema);
        assert!(errs.iter().any(|e| e.message.contains("extra")));

        let wrong_type = parse_json(r#"{"name": "x", "count": 3.5}"#).unwrap();
        let errs = validate(&wrong_type, &schema);
        assert!(errs.iter().any(|e| e.message.contains("integer")));
    }

    #[test]
    fn validator_value_schema_for_dynamic_keys() {
        let schema =
            parse_json(r#"{ "type": "object", "valueSchema": { "type": "integer" } }"#).unwrap();
        let ok = parse_json(r#"{"metric_a": 1, "metric_b": 2}"#).unwrap();
        assert!(validate(&ok, &schema).is_empty());
        let bad = parse_json(r#"{"metric_a": "nope"}"#).unwrap();
        assert!(!validate(&bad, &schema).is_empty());
    }
}
