//! The crash flight recorder: a process-global black box.
//!
//! A bounded in-memory ring of [`TimedEvent`]s covering the last N seconds
//! of activity, dumped as JSON lines (`<dir>/flight.jsonl`, schema
//! `schemas/flight.schema.json`) when something goes wrong: the panic
//! hook, SIGUSR1, the typed ENOSPC/EIO degradation paths in the live
//! monitor, or a periodic persistence tick that keeps the last dump on
//! disk so even SIGKILL leaves a postmortem behind.
//!
//! The recorder is **global state** on purpose: the degradation paths
//! that most need to leave a black box behind (`core::live`'s spill
//! failures) sit many layers below anything that could plumb a handle
//! down, and a panic hook has no context at all. The fast path is one
//! relaxed atomic load when not installed — the default for every
//! embedded/test use — so library users never pay for it.
//!
//! Durability is deliberately std-only (temp file → fsync → rename →
//! dir-fsync, hand-rolled): `obs` sits below `core` in the crate graph,
//! so it cannot reuse `core::durable`.

use crate::recorder::{ObsEvent, TimedEvent};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity: at one event per batch plus lifecycle noise this
/// covers minutes of serving, bounded to a few MiB worst case.
pub const DEFAULT_CAPACITY: usize = 16_384;

/// Default recording window in seconds ("the last N seconds of activity").
pub const DEFAULT_WINDOW_SECS: u64 = 60;

static ENABLED: AtomicBool = AtomicBool::new(false);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static INNER: Mutex<Option<FlightInner>> = Mutex::new(None);

struct FlightInner {
    anchor: Instant,
    window_us: u64,
    capacity: usize,
    ring: VecDeque<TimedEvent>,
    dir: Option<PathBuf>,
}

fn inner() -> std::sync::MutexGuard<'static, Option<FlightInner>> {
    INNER.lock().unwrap_or_else(|p| p.into_inner())
}

/// Install (or reconfigure) the process flight recorder. `dir` is where
/// [`dump`] writes `flight.jsonl`; `None` keeps the ring in memory only
/// (dumps return `None`). Resets the ring and the drop counter.
pub fn install(dir: Option<&Path>, window_secs: u64, capacity: usize) {
    let mut guard = inner();
    *guard = Some(FlightInner {
        anchor: Instant::now(),
        window_us: window_secs.saturating_mul(1_000_000),
        capacity: capacity.max(1),
        ring: VecDeque::new(),
        dir: dir.map(Path::to_path_buf),
    });
    DROPPED.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Tear down the recorder (tests). Subsequent [`record`] calls are no-ops.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Relaxed);
    *inner() = None;
}

#[inline]
pub fn installed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Events evicted for capacity (window expiry is not counted — aging out
/// is the design, overflowing is data loss).
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Record an event. The closure only runs when the recorder is installed,
/// so the uninstalled fast path is one atomic load.
#[inline]
pub fn record(f: impl FnOnce() -> ObsEvent) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let event = f();
    let mut guard = inner();
    let Some(inner) = guard.as_mut() else { return };
    let micros = inner.anchor.elapsed().as_micros() as u64;
    if inner.ring.len() >= inner.capacity {
        inner.ring.pop_front();
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
    let horizon = micros.saturating_sub(inner.window_us);
    while inner.ring.front().is_some_and(|e| e.micros < horizon) {
        inner.ring.pop_front();
    }
    inner.ring.push_back(TimedEvent { micros, event });
}

/// Snapshot the ring (oldest first), trimmed to the recording window.
pub fn snapshot() -> Vec<TimedEvent> {
    let mut guard = inner();
    let Some(inner) = guard.as_mut() else {
        return Vec::new();
    };
    let horizon = (inner.anchor.elapsed().as_micros() as u64).saturating_sub(inner.window_us);
    while inner.ring.front().is_some_and(|e| e.micros < horizon) {
        inner.ring.pop_front();
    }
    inner.ring.iter().cloned().collect()
}

/// Typed extra fields for the event kinds a postmortem cross-references
/// against other state (offsets against checkpoints, depths against
/// metrics). Everything else carries only `kind` + `detail`.
fn extras(event: &ObsEvent) -> String {
    match event {
        ObsEvent::OffsetCommit { tenant, offset } => format!(
            ",\"tenant\":{},\"offset\":{offset}",
            crate::json::escape(tenant)
        ),
        ObsEvent::QueueDepth { tenant, depth } => format!(
            ",\"tenant\":{},\"depth\":{depth}",
            crate::json::escape(tenant)
        ),
        ObsEvent::SpanOpen { trace, stage } | ObsEvent::SpanClose { trace, stage, .. } => {
            format!(",\"trace\":\"{trace:016x}\",\"stage\":\"{stage}\"")
        }
        _ => String::new(),
    }
}

fn event_line(e: &TimedEvent) -> String {
    format!(
        "{{\"t_us\":{},\"kind\":\"{}\",\"detail\":{}{}}}",
        e.micros,
        e.event.kind(),
        crate::json::escape(&e.event.to_string()),
        extras(&e.event)
    )
}

/// Render the current ring as `flight.jsonl` content: one JSON line per
/// event plus a trailing `FlightDump` marker naming the dump reason.
pub fn dump_lines(reason: &str) -> String {
    let events = snapshot();
    let mut s = String::with_capacity(events.len() * 96 + 64);
    for e in &events {
        s.push_str(&event_line(e));
        s.push('\n');
    }
    let t_us = events.last().map(|e| e.micros).unwrap_or(0);
    s.push_str(&format!(
        "{{\"t_us\":{t_us},\"kind\":\"FlightDump\",\"detail\":{}}}\n",
        crate::json::escape(&format!("flight dump: {reason} ({} events)", events.len()))
    ));
    s
}

/// Crash-atomically write the ring to `<dir>/flight.jsonl` (temp file →
/// fsync → rename → dir-fsync). Returns the path, or `None` when the
/// recorder is uninstalled or has no dump directory. Never panics — a
/// flight dump running *inside* the panic hook must not double-panic.
pub fn dump(reason: &str) -> Option<PathBuf> {
    let dir = inner().as_ref()?.dir.clone()?;
    let lines = dump_lines(reason);
    let path = dir.join("flight.jsonl");
    let tmp = dir.join(".flight.jsonl.tmp");
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(&dir)?;
        {
            use std::io::Write as _;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(lines.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        #[cfg(unix)]
        if let Ok(d) = std::fs::File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    };
    match write() {
        Ok(()) => Some(path),
        Err(_) => {
            let _ = std::fs::remove_file(&tmp);
            None
        }
    }
}

/// Install a panic hook that records the panic and dumps the ring before
/// delegating to the previous hook. Idempotence is the caller's problem
/// (install once at process start); chaining keeps the default backtrace.
pub fn install_panic_hook() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        record(|| ObsEvent::Diagnostic {
            detail: format!("panic: {info}"),
        });
        let _ = dump("panic");
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// The recorder is process-global; serialize the tests that install it.
    static TEST_LOCK: TestMutex<()> = TestMutex::new(());

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("purposectl-tests")
            .join(format!("flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn uninstalled_recording_is_a_noop() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        uninstall();
        let mut ran = false;
        record(|| {
            ran = true;
            ObsEvent::Diagnostic { detail: "x".into() }
        });
        assert!(!ran);
        assert!(snapshot().is_empty());
        assert!(dump("test").is_none());
    }

    #[test]
    fn ring_bounds_and_dump_round_trip() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let dir = scratch("dump");
        install(Some(&dir), 3600, 8);
        for i in 0..12u64 {
            record(|| ObsEvent::OffsetCommit {
                tenant: "demo".into(),
                offset: i,
            });
        }
        assert_eq!(dropped(), 4);
        let events = snapshot();
        assert_eq!(events.len(), 8);
        record(|| ObsEvent::QueueDepth {
            tenant: "demo".into(),
            depth: 3,
        });
        let path = dump("test").expect("dump path");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // 8 ring events (one evicted by the QueueDepth push) + marker.
        assert_eq!(lines.len(), 8 + 1);
        for line in &lines {
            let doc = crate::parse_json(line).expect("flight line parses");
            assert!(doc.get("kind").and_then(|v| v.as_str()).is_some());
        }
        let last_commit = lines
            .iter()
            .rev()
            .map(|l| crate::parse_json(l).unwrap())
            .find(|d| d.get("kind").and_then(|v| v.as_str()) == Some("OffsetCommit"))
            .expect("an offset commit survives");
        assert_eq!(
            last_commit.get("offset").and_then(|v| v.as_f64()),
            Some(11.0)
        );
        assert!(text.contains("\"FlightDump\""));
        uninstall();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_expiry_is_not_a_drop() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        install(None, 0, 1024); // zero-second window: everything ages out
        record(|| ObsEvent::Diagnostic { detail: "a".into() });
        std::thread::sleep(std::time::Duration::from_millis(2));
        record(|| ObsEvent::Diagnostic { detail: "b".into() });
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(snapshot().is_empty());
        assert_eq!(dropped(), 0);
        uninstall();
    }
}
