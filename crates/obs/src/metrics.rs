//! The metrics registry: counters, gauges and log-scale histograms.
//!
//! Two-level design, mirroring the transitions-memo sharding that already
//! keeps the §7 parallel auditor contention-free:
//!
//! * a [`Registry`] holds the authoritative aggregate behind one mutex —
//!   it is touched only on cold paths (flush, exposition, direct updates);
//! * a [`Shard`] is a thread-owned buffer of the same metric families.
//!   Hot paths (per-case replay loops) record into their shard with plain
//!   `HashMap` writes — no atomics, no locks — and [`Shard::flush`] merges
//!   the whole buffer into the registry in one lock acquisition at join.
//!
//! Histograms use fixed log₂ buckets: bucket *i* counts values `v` with
//! `2^(i-1) < v ≤ 2^i` (bucket 0 counts `v ≤ 1`). Merging shards is
//! element-wise addition, so totals are exact regardless of interleaving —
//! the property the 8-thread hammer test asserts.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Number of log₂ histogram buckets. Bucket 63 absorbs everything above
/// `2^62`; the `+Inf` Prometheus bucket equals the histogram count.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index of a value: `0` for `v ≤ 1`, else `ceil(log2(v))`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` (the Prometheus `le` label).
#[inline]
fn bucket_le(i: usize) -> u64 {
    1u64 << i
}

/// Aggregated histogram state: exact count, exact sum, per-bucket counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`) from the log₂ buckets, the
    /// way Prometheus' `histogram_quantile` does: find the bucket the
    /// target rank falls in, then interpolate linearly between its bounds
    /// (bucket 0 spans `(0, 1]`). Exact to within one bucket width — the
    /// inherent resolution of log-scale buckets. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &(le, n)) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev_cum = cum;
            cum += n;
            if (cum as f64) >= rank {
                let lo = if i == 0 {
                    0.0
                } else {
                    self.buckets[i - 1].0 as f64
                };
                let hi = le as f64;
                let frac = (rank - prev_cum as f64) / n as f64;
                return lo + frac * (hi - lo);
            }
        }
        self.buckets.last().map_or(0.0, |&(le, _)| le as f64)
    }
}

#[derive(Clone)]
struct HistogramData {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramData {
    #[inline]
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_of(v)] += 1;
    }

    fn merge(&mut self, other: &HistogramData) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let top = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            buckets: (0..top).map(|i| (bucket_le(i), self.buckets[i])).collect(),
        }
    }
}

#[derive(Default)]
struct Aggregate {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramData>,
}

/// The shared metrics registry. Cheap to create; share behind an `Arc`.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Aggregate>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let a = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &a.counters.len())
            .field("gauges", &a.gauges.len())
            .field("histograms", &a.histograms.len())
            .finish()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A fresh thread-owned shard. Record into it lock-free; call
    /// [`Shard::flush`] to merge into this registry.
    pub fn shard(&self) -> Shard {
        Shard::new()
    }

    /// Declare a counter (idempotent). Declared-but-untouched metrics still
    /// appear in the exports, which is what lets the CI schema say
    /// "no missing keys".
    pub fn declare_counter(&self, name: &str) {
        self.inner
            .lock()
            .unwrap()
            .counters
            .entry(name.to_string())
            .or_insert(0);
    }

    pub fn declare_gauge(&self, name: &str) {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .entry(name.to_string())
            .or_insert(0.0);
    }

    pub fn declare_histogram(&self, name: &str) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name.to_string())
            .or_default();
    }

    /// Add to a counter directly (cold path — takes the registry lock).
    pub fn add_counter(&self, name: &str, v: u64) {
        *self
            .inner
            .lock()
            .unwrap()
            .counters
            .entry(name.to_string())
            .or_insert(0) += v;
    }

    /// Set a counter to an absolute value (last write wins). Used to
    /// export monotone process-global totals — the transitions-memo and
    /// automaton atomics — where adding would double-count on re-export.
    pub fn set_counter(&self, name: &str, v: u64) {
        self.inner
            .lock()
            .unwrap()
            .counters
            .insert(name.to_string(), v);
    }

    /// Set a gauge (last write wins).
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .insert(name.to_string(), v);
    }

    /// Observe a histogram value directly (cold path).
    pub fn observe(&self, name: &str, v: u64) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    pub fn gauge_value(&self, name: &str) -> f64 {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .get(name)
            .copied()
            .unwrap_or(0.0)
    }

    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .get(name)
            .map(|h| h.snapshot())
            .unwrap_or_default()
    }

    fn merge_shard(&self, shard: &Shard) {
        let mut a = self.inner.lock().unwrap();
        for (k, v) in &shard.counters {
            *a.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &shard.gauges {
            a.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &shard.histograms {
            a.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Stable JSON exposition: `{"counters":{…},"gauges":{…},
    /// "histograms":{…}}` with keys sorted (BTreeMap order), so two runs
    /// over the same data produce byte-identical documents.
    pub fn to_json(&self) -> String {
        let a = self.inner.lock().unwrap();
        let mut s = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &a.counters {
            if !first {
                s.push(',');
            }
            first = false;
            write!(s, "\n    {}: {v}", crate::json::escape(k)).unwrap();
        }
        s.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &a.gauges {
            if !first {
                s.push(',');
            }
            first = false;
            write!(s, "\n    {}: {}", crate::json::escape(k), fmt_json_f64(*v)).unwrap();
        }
        s.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &a.histograms {
            if !first {
                s.push(',');
            }
            first = false;
            let snap = h.snapshot();
            write!(
                s,
                "\n    {}: {{ \"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \
                 \"p99\": {}, \"buckets\": [",
                crate::json::escape(k),
                snap.count,
                snap.sum,
                fmt_json_f64(snap.quantile(0.50)),
                fmt_json_f64(snap.quantile(0.95)),
                fmt_json_f64(snap.quantile(0.99)),
            )
            .unwrap();
            for (i, (le, n)) in snap.buckets.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                write!(s, " {{ \"le\": {le}, \"n\": {n} }}").unwrap();
            }
            s.push_str(" ] }");
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Prometheus text exposition (metric names are prefixed with
    /// `purposectl_` and sanitized; histograms emit cumulative
    /// `_bucket{le=…}` series plus `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let a = self.inner.lock().unwrap();
        let mut s = String::new();
        for (k, v) in &a.counters {
            let name = prom_name(k);
            writeln!(s, "# TYPE {name} counter").unwrap();
            writeln!(s, "{name} {v}").unwrap();
        }
        for (k, v) in &a.gauges {
            let name = prom_name(k);
            writeln!(s, "# TYPE {name} gauge").unwrap();
            writeln!(s, "{name} {}", fmt_f64(*v)).unwrap();
        }
        for (k, h) in &a.histograms {
            let name = prom_name(k);
            let snap = h.snapshot();
            writeln!(s, "# TYPE {name} histogram").unwrap();
            let mut cum = 0u64;
            for (le, n) in &snap.buckets {
                cum += n;
                writeln!(s, "{name}_bucket{{le=\"{le}\"}} {cum}").unwrap();
            }
            writeln!(s, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count).unwrap();
            writeln!(s, "{name}_sum {}", snap.sum).unwrap();
            writeln!(s, "{name}_count {}", snap.count).unwrap();
            // Server-side quantile estimates as separate gauge families
            // (folding them into the histogram family would be invalid
            // exposition — only _bucket/_sum/_count belong to it).
            for (q, tag) in QUANTILES {
                let qn = format!("{name}_{tag}");
                writeln!(s, "# TYPE {qn} gauge").unwrap();
                writeln!(s, "{qn} {}", fmt_f64(snap.quantile(q))).unwrap();
            }
        }
        s
    }
}

/// The quantile estimates both expositions publish per histogram.
const QUANTILES: [(f64, &str); 3] = [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")];

/// Multi-registry Prometheus text exposition with a `tenant` label.
///
/// A multi-tenant service hosts one [`Registry`] per tenant but must serve
/// a *single* valid scrape document: one `# TYPE` line per metric family,
/// then one labeled sample per tenant. Interleaving per-tenant
/// [`Registry::to_prometheus`] outputs would repeat TYPE lines (invalid
/// exposition), so this walks the union of metric names across all
/// registries in sorted order and emits `name{tenant="…"} value` samples
/// grouped under one family header. Histogram bucket series carry both
/// `tenant` and `le` labels.
pub fn prometheus_multi(tenants: &[(&str, &Registry)]) -> String {
    use std::collections::BTreeSet;
    let mut counters = BTreeSet::new();
    let mut gauges = BTreeSet::new();
    let mut histograms = BTreeSet::new();
    for (_, reg) in tenants {
        let a = reg.inner.lock().unwrap();
        counters.extend(a.counters.keys().cloned());
        gauges.extend(a.gauges.keys().cloned());
        histograms.extend(a.histograms.keys().cloned());
    }
    let mut s = String::new();
    for k in &counters {
        let name = prom_name(k);
        writeln!(s, "# TYPE {name} counter").unwrap();
        for (tenant, reg) in tenants {
            let label = prom_label(tenant);
            writeln!(s, "{name}{{tenant=\"{label}\"}} {}", reg.counter_value(k)).unwrap();
        }
    }
    for k in &gauges {
        let name = prom_name(k);
        writeln!(s, "# TYPE {name} gauge").unwrap();
        for (tenant, reg) in tenants {
            let label = prom_label(tenant);
            writeln!(
                s,
                "{name}{{tenant=\"{label}\"}} {}",
                fmt_f64(reg.gauge_value(k))
            )
            .unwrap();
        }
    }
    for k in &histograms {
        let name = prom_name(k);
        writeln!(s, "# TYPE {name} histogram").unwrap();
        for (tenant, reg) in tenants {
            let label = prom_label(tenant);
            let snap = reg.histogram(k);
            let mut cum = 0u64;
            for (le, n) in &snap.buckets {
                cum += n;
                writeln!(s, "{name}_bucket{{tenant=\"{label}\",le=\"{le}\"}} {cum}").unwrap();
            }
            writeln!(
                s,
                "{name}_bucket{{tenant=\"{label}\",le=\"+Inf\"}} {}",
                snap.count
            )
            .unwrap();
            writeln!(s, "{name}_sum{{tenant=\"{label}\"}} {}", snap.sum).unwrap();
            writeln!(s, "{name}_count{{tenant=\"{label}\"}} {}", snap.count).unwrap();
        }
        for (q, tag) in QUANTILES {
            let qn = format!("{name}_{tag}");
            writeln!(s, "# TYPE {qn} gauge").unwrap();
            for (tenant, reg) in tenants {
                let label = prom_label(tenant);
                writeln!(
                    s,
                    "{qn}{{tenant=\"{label}\"}} {}",
                    fmt_f64(reg.histogram(k).quantile(q))
                )
                .unwrap();
            }
        }
    }
    s
}

/// Escape a string for use inside a Prometheus label value.
fn prom_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            c => s.push(c),
        }
    }
    s
}

/// Render a float the way the Prometheus exposition format expects.
/// Rust's `Display` writes `inf`/`NaN`, which scrapers reject — the spec
/// (and client_golang) use `+Inf`/`-Inf`/`NaN`. Integral values drop the
/// fraction so counters-as-gauges stay byte-stable across exports.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a float for the JSON exposition. JSON has no literal for
/// non-finite values; a gauge poisoned with one exports `null` rather
/// than producing an unparseable document.
fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

fn prom_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 11);
    s.push_str("purposectl_");
    for c in name.chars() {
        s.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    s
}

/// A thread-owned metrics buffer. Not `Sync` by construction (callers own
/// it mutably); recording is plain map insertion — the hot path takes no
/// lock and touches no shared cache line.
#[derive(Default)]
pub struct Shard {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    histograms: HashMap<String, HistogramData>,
}

impl Shard {
    pub fn new() -> Shard {
        Shard::default()
    }

    #[inline]
    pub fn add_counter(&mut self, name: &str, v: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += v,
            None => {
                self.counters.insert(name.to_string(), v);
            }
        }
    }

    #[inline]
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    #[inline]
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = HistogramData::default();
                h.observe(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Merge everything recorded so far into `registry` (one lock
    /// acquisition) and clear the shard for reuse.
    pub fn flush(&mut self, registry: &Registry) {
        registry.merge_shard(self);
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1025), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn shard_flush_merges_exactly() {
        let reg = Registry::new();
        let mut s1 = reg.shard();
        let mut s2 = reg.shard();
        s1.add_counter("cases", 3);
        s2.add_counter("cases", 4);
        s1.observe("entries", 10);
        s2.observe("entries", 1000);
        s1.flush(&reg);
        s2.flush(&reg);
        assert_eq!(reg.counter_value("cases"), 7);
        let h = reg.histogram("entries");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.buckets.iter().map(|(_, n)| n).sum::<u64>(), 2);
        // Flushing twice must not double-count.
        s1.flush(&reg);
        assert_eq!(reg.counter_value("cases"), 7);
    }

    #[test]
    fn json_is_stable_and_parses() {
        let reg = Registry::new();
        reg.declare_counter("b");
        reg.declare_counter("a");
        reg.set_gauge("g", 2.5);
        reg.observe("h", 3);
        let a = reg.to_json();
        let b = reg.to_json();
        assert_eq!(a, b);
        let v = crate::json::parse_json(&a).unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.contains_key("counters"));
        // Sorted keys: "a" before "b".
        assert!(a.find("\"a\"").unwrap() < a.find("\"b\"").unwrap());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.add_counter("cases_total", 2);
        reg.observe("case_entries", 5);
        reg.observe("case_entries", 6);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE purposectl_cases_total counter"));
        assert!(text.contains("purposectl_cases_total 2"));
        assert!(text.contains("purposectl_case_entries_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("purposectl_case_entries_sum 11"));
        assert!(text.contains("purposectl_case_entries_count 2"));
    }

    #[test]
    fn prometheus_multi_emits_one_type_line_per_family() {
        let clinic = Registry::new();
        let trial = Registry::new();
        clinic.add_counter("cases_total", 2);
        trial.add_counter("cases_total", 7);
        trial.set_gauge("open", 3.0);
        clinic.observe("case_entries", 4);
        let text = prometheus_multi(&[("clinic", &clinic), ("trial", &trial)]);
        // One family header even though both tenants export the counter.
        assert_eq!(
            text.matches("# TYPE purposectl_cases_total counter")
                .count(),
            1
        );
        assert!(text.contains("purposectl_cases_total{tenant=\"clinic\"} 2"));
        assert!(text.contains("purposectl_cases_total{tenant=\"trial\"} 7"));
        // A metric only one tenant touched still samples (zero) for both.
        assert!(text.contains("purposectl_open{tenant=\"clinic\"} 0"));
        assert!(text.contains("purposectl_open{tenant=\"trial\"} 3"));
        assert!(text.contains("purposectl_case_entries_bucket{tenant=\"clinic\",le=\"+Inf\"} 1"));
        assert!(text.contains("purposectl_case_entries_count{tenant=\"trial\"} 0"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let reg = Registry::new();
        reg.add_counter("c", 1);
        let text = prometheus_multi(&[("a\"b\\c", &reg)]);
        assert!(text.contains("purposectl_c{tenant=\"a\\\"b\\\\c\"} 1"));
    }

    /// Decode a Prometheus label value the way a conforming scraper does:
    /// `\\` → `\`, `\"` → `"`, `\n` → newline, nothing else is an escape.
    fn prom_label_unescape(v: &str) -> String {
        let mut out = String::with_capacity(v.len());
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn hostile_label_values_round_trip_through_prometheus_multi() {
        // Every character class the exposition format cares about:
        // backslash, double quote, newline — plus bystanders that must
        // pass through untouched (tab, braces, unicode, `\r`).
        let hostile = [
            "back\\slash",
            "quo\"te",
            "new\nline",
            "all\\three\"at\nonce",
            "tab\tand{braces}and\rcr",
            "ünïcode-ø",
            "\\\"\n\\\\",
        ];
        for tenant in hostile {
            let reg = Registry::new();
            reg.add_counter("c", 9);
            let text = prometheus_multi(&[(tenant, &reg)]);
            // The sample line must be exactly one physical line …
            let line = text
                .lines()
                .find(|l| l.starts_with("purposectl_c{tenant=\""))
                .unwrap_or_else(|| panic!("no sample line for {tenant:?} in:\n{text}"));
            // … whose label value decodes back to the original name.
            let start = line.find('"').unwrap() + 1;
            let end = line.rfind('"').unwrap();
            assert_eq!(
                prom_label_unescape(&line[start..end]),
                tenant,
                "label for {tenant:?} did not round-trip: {line}"
            );
            assert!(line.ends_with("\"} 9"), "malformed sample line: {line}");
        }
    }

    #[test]
    fn non_finite_values_render_per_exposition_spec() {
        let reg = Registry::new();
        reg.set_gauge("pos", f64::INFINITY);
        reg.set_gauge("neg", f64::NEG_INFINITY);
        reg.set_gauge("nan", f64::NAN);
        let text = reg.to_prometheus();
        assert!(text.contains("purposectl_pos +Inf"), "{text}");
        assert!(text.contains("purposectl_neg -Inf"), "{text}");
        assert!(text.contains("purposectl_nan NaN"), "{text}");
        // The JSON exposition must stay parseable: non-finite → null.
        let json = reg.to_json();
        let doc = crate::json::parse_json(&json).expect("JSON stays valid");
        assert!(matches!(
            doc.get("gauges").and_then(|g| g.get("pos")),
            Some(crate::json::JsonValue::Null)
        ));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.quantile(0.5), 0.0);

        let reg = Registry::new();
        // 100 observations of 1: everything lands in bucket 0 → (0, 1].
        for _ in 0..100 {
            reg.observe("h", 1);
        }
        let snap = reg.histogram("h");
        assert!(snap.quantile(0.5) > 0.0 && snap.quantile(0.5) <= 1.0);
        assert!(snap.quantile(0.99) <= 1.0);

        // Bimodal: 90 fast (≤ 8), 10 slow in (512, 1024].
        let reg = Registry::new();
        for _ in 0..90 {
            reg.observe("h", 8);
        }
        for _ in 0..10 {
            reg.observe("h", 700);
        }
        let snap = reg.histogram("h");
        let p50 = snap.quantile(0.50);
        let p95 = snap.quantile(0.95);
        let p99 = snap.quantile(0.99);
        assert!(p50 <= 8.0, "p50 {p50} should sit in the fast mode");
        assert!(
            (512.0..=1024.0).contains(&p95),
            "p95 {p95} should sit in the slow bucket"
        );
        assert!(p99 >= p95, "quantiles must be monotone: {p95} > {p99}");
        // The estimates surface in both expositions.
        let json = reg.to_json();
        assert!(json.contains("\"p50\""), "{json}");
        assert!(json.contains("\"p95\""), "{json}");
        let prom = reg.to_prometheus();
        assert!(prom.contains("# TYPE purposectl_h_p99 gauge"), "{prom}");
        let multi = prometheus_multi(&[("t", &reg)]);
        assert!(multi.contains("purposectl_h_p95{tenant=\"t\"}"), "{multi}");
    }
}
