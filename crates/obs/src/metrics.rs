//! The metrics registry: counters, gauges and log-scale histograms.
//!
//! Two-level design, mirroring the transitions-memo sharding that already
//! keeps the §7 parallel auditor contention-free:
//!
//! * a [`Registry`] holds the authoritative aggregate behind one mutex —
//!   it is touched only on cold paths (flush, exposition, direct updates);
//! * a [`Shard`] is a thread-owned buffer of the same metric families.
//!   Hot paths (per-case replay loops) record into their shard with plain
//!   `HashMap` writes — no atomics, no locks — and [`Shard::flush`] merges
//!   the whole buffer into the registry in one lock acquisition at join.
//!
//! Histograms use fixed log₂ buckets: bucket *i* counts values `v` with
//! `2^(i-1) < v ≤ 2^i` (bucket 0 counts `v ≤ 1`). Merging shards is
//! element-wise addition, so totals are exact regardless of interleaving —
//! the property the 8-thread hammer test asserts.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Number of log₂ histogram buckets. Bucket 63 absorbs everything above
/// `2^62`; the `+Inf` Prometheus bucket equals the histogram count.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket index of a value: `0` for `v ≤ 1`, else `ceil(log2(v))`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` (the Prometheus `le` label).
#[inline]
fn bucket_le(i: usize) -> u64 {
    1u64 << i
}

/// Aggregated histogram state: exact count, exact sum, per-bucket counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u64, u64)>,
}

#[derive(Clone)]
struct HistogramData {
    count: u64,
    sum: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramData {
    #[inline]
    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_of(v)] += 1;
    }

    fn merge(&mut self, other: &HistogramData) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let top = self
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            buckets: (0..top).map(|i| (bucket_le(i), self.buckets[i])).collect(),
        }
    }
}

#[derive(Default)]
struct Aggregate {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramData>,
}

/// The shared metrics registry. Cheap to create; share behind an `Arc`.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Aggregate>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let a = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &a.counters.len())
            .field("gauges", &a.gauges.len())
            .field("histograms", &a.histograms.len())
            .finish()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A fresh thread-owned shard. Record into it lock-free; call
    /// [`Shard::flush`] to merge into this registry.
    pub fn shard(&self) -> Shard {
        Shard::new()
    }

    /// Declare a counter (idempotent). Declared-but-untouched metrics still
    /// appear in the exports, which is what lets the CI schema say
    /// "no missing keys".
    pub fn declare_counter(&self, name: &str) {
        self.inner
            .lock()
            .unwrap()
            .counters
            .entry(name.to_string())
            .or_insert(0);
    }

    pub fn declare_gauge(&self, name: &str) {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .entry(name.to_string())
            .or_insert(0.0);
    }

    pub fn declare_histogram(&self, name: &str) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name.to_string())
            .or_default();
    }

    /// Add to a counter directly (cold path — takes the registry lock).
    pub fn add_counter(&self, name: &str, v: u64) {
        *self
            .inner
            .lock()
            .unwrap()
            .counters
            .entry(name.to_string())
            .or_insert(0) += v;
    }

    /// Set a counter to an absolute value (last write wins). Used to
    /// export monotone process-global totals — the transitions-memo and
    /// automaton atomics — where adding would double-count on re-export.
    pub fn set_counter(&self, name: &str, v: u64) {
        self.inner
            .lock()
            .unwrap()
            .counters
            .insert(name.to_string(), v);
    }

    /// Set a gauge (last write wins).
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .insert(name.to_string(), v);
    }

    /// Observe a histogram value directly (cold path).
    pub fn observe(&self, name: &str, v: u64) {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    pub fn gauge_value(&self, name: &str) -> f64 {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .get(name)
            .copied()
            .unwrap_or(0.0)
    }

    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.inner
            .lock()
            .unwrap()
            .histograms
            .get(name)
            .map(|h| h.snapshot())
            .unwrap_or_default()
    }

    fn merge_shard(&self, shard: &Shard) {
        let mut a = self.inner.lock().unwrap();
        for (k, v) in &shard.counters {
            *a.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &shard.gauges {
            a.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &shard.histograms {
            a.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Stable JSON exposition: `{"counters":{…},"gauges":{…},
    /// "histograms":{…}}` with keys sorted (BTreeMap order), so two runs
    /// over the same data produce byte-identical documents.
    pub fn to_json(&self) -> String {
        let a = self.inner.lock().unwrap();
        let mut s = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (k, v) in &a.counters {
            if !first {
                s.push(',');
            }
            first = false;
            write!(s, "\n    {}: {v}", crate::json::escape(k)).unwrap();
        }
        s.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (k, v) in &a.gauges {
            if !first {
                s.push(',');
            }
            first = false;
            write!(s, "\n    {}: {}", crate::json::escape(k), fmt_f64(*v)).unwrap();
        }
        s.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (k, h) in &a.histograms {
            if !first {
                s.push(',');
            }
            first = false;
            let snap = h.snapshot();
            write!(
                s,
                "\n    {}: {{ \"count\": {}, \"sum\": {}, \"buckets\": [",
                crate::json::escape(k),
                snap.count,
                snap.sum
            )
            .unwrap();
            for (i, (le, n)) in snap.buckets.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                write!(s, " {{ \"le\": {le}, \"n\": {n} }}").unwrap();
            }
            s.push_str(" ] }");
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Prometheus text exposition (metric names are prefixed with
    /// `purposectl_` and sanitized; histograms emit cumulative
    /// `_bucket{le=…}` series plus `_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let a = self.inner.lock().unwrap();
        let mut s = String::new();
        for (k, v) in &a.counters {
            let name = prom_name(k);
            writeln!(s, "# TYPE {name} counter").unwrap();
            writeln!(s, "{name} {v}").unwrap();
        }
        for (k, v) in &a.gauges {
            let name = prom_name(k);
            writeln!(s, "# TYPE {name} gauge").unwrap();
            writeln!(s, "{name} {}", fmt_f64(*v)).unwrap();
        }
        for (k, h) in &a.histograms {
            let name = prom_name(k);
            let snap = h.snapshot();
            writeln!(s, "# TYPE {name} histogram").unwrap();
            let mut cum = 0u64;
            for (le, n) in &snap.buckets {
                cum += n;
                writeln!(s, "{name}_bucket{{le=\"{le}\"}} {cum}").unwrap();
            }
            writeln!(s, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count).unwrap();
            writeln!(s, "{name}_sum {}", snap.sum).unwrap();
            writeln!(s, "{name}_count {}", snap.count).unwrap();
        }
        s
    }
}

/// Multi-registry Prometheus text exposition with a `tenant` label.
///
/// A multi-tenant service hosts one [`Registry`] per tenant but must serve
/// a *single* valid scrape document: one `# TYPE` line per metric family,
/// then one labeled sample per tenant. Interleaving per-tenant
/// [`Registry::to_prometheus`] outputs would repeat TYPE lines (invalid
/// exposition), so this walks the union of metric names across all
/// registries in sorted order and emits `name{tenant="…"} value` samples
/// grouped under one family header. Histogram bucket series carry both
/// `tenant` and `le` labels.
pub fn prometheus_multi(tenants: &[(&str, &Registry)]) -> String {
    use std::collections::BTreeSet;
    let mut counters = BTreeSet::new();
    let mut gauges = BTreeSet::new();
    let mut histograms = BTreeSet::new();
    for (_, reg) in tenants {
        let a = reg.inner.lock().unwrap();
        counters.extend(a.counters.keys().cloned());
        gauges.extend(a.gauges.keys().cloned());
        histograms.extend(a.histograms.keys().cloned());
    }
    let mut s = String::new();
    for k in &counters {
        let name = prom_name(k);
        writeln!(s, "# TYPE {name} counter").unwrap();
        for (tenant, reg) in tenants {
            let label = prom_label(tenant);
            writeln!(s, "{name}{{tenant=\"{label}\"}} {}", reg.counter_value(k)).unwrap();
        }
    }
    for k in &gauges {
        let name = prom_name(k);
        writeln!(s, "# TYPE {name} gauge").unwrap();
        for (tenant, reg) in tenants {
            let label = prom_label(tenant);
            writeln!(
                s,
                "{name}{{tenant=\"{label}\"}} {}",
                fmt_f64(reg.gauge_value(k))
            )
            .unwrap();
        }
    }
    for k in &histograms {
        let name = prom_name(k);
        writeln!(s, "# TYPE {name} histogram").unwrap();
        for (tenant, reg) in tenants {
            let label = prom_label(tenant);
            let snap = reg.histogram(k);
            let mut cum = 0u64;
            for (le, n) in &snap.buckets {
                cum += n;
                writeln!(s, "{name}_bucket{{tenant=\"{label}\",le=\"{le}\"}} {cum}").unwrap();
            }
            writeln!(
                s,
                "{name}_bucket{{tenant=\"{label}\",le=\"+Inf\"}} {}",
                snap.count
            )
            .unwrap();
            writeln!(s, "{name}_sum{{tenant=\"{label}\"}} {}", snap.sum).unwrap();
            writeln!(s, "{name}_count{{tenant=\"{label}\"}} {}", snap.count).unwrap();
        }
    }
    s
}

/// Escape a string for use inside a Prometheus label value.
fn prom_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            c => s.push(c),
        }
    }
    s
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn prom_name(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 11);
    s.push_str("purposectl_");
    for c in name.chars() {
        s.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    s
}

/// A thread-owned metrics buffer. Not `Sync` by construction (callers own
/// it mutably); recording is plain map insertion — the hot path takes no
/// lock and touches no shared cache line.
#[derive(Default)]
pub struct Shard {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    histograms: HashMap<String, HistogramData>,
}

impl Shard {
    pub fn new() -> Shard {
        Shard::default()
    }

    #[inline]
    pub fn add_counter(&mut self, name: &str, v: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += v,
            None => {
                self.counters.insert(name.to_string(), v);
            }
        }
    }

    #[inline]
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    #[inline]
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = HistogramData::default();
                h.observe(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Merge everything recorded so far into `registry` (one lock
    /// acquisition) and clear the shard for reuse.
    pub fn flush(&mut self, registry: &Registry) {
        registry.merge_shard(self);
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1025), 11);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn shard_flush_merges_exactly() {
        let reg = Registry::new();
        let mut s1 = reg.shard();
        let mut s2 = reg.shard();
        s1.add_counter("cases", 3);
        s2.add_counter("cases", 4);
        s1.observe("entries", 10);
        s2.observe("entries", 1000);
        s1.flush(&reg);
        s2.flush(&reg);
        assert_eq!(reg.counter_value("cases"), 7);
        let h = reg.histogram("entries");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.buckets.iter().map(|(_, n)| n).sum::<u64>(), 2);
        // Flushing twice must not double-count.
        s1.flush(&reg);
        assert_eq!(reg.counter_value("cases"), 7);
    }

    #[test]
    fn json_is_stable_and_parses() {
        let reg = Registry::new();
        reg.declare_counter("b");
        reg.declare_counter("a");
        reg.set_gauge("g", 2.5);
        reg.observe("h", 3);
        let a = reg.to_json();
        let b = reg.to_json();
        assert_eq!(a, b);
        let v = crate::json::parse_json(&a).unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.contains_key("counters"));
        // Sorted keys: "a" before "b".
        assert!(a.find("\"a\"").unwrap() < a.find("\"b\"").unwrap());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.add_counter("cases_total", 2);
        reg.observe("case_entries", 5);
        reg.observe("case_entries", 6);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE purposectl_cases_total counter"));
        assert!(text.contains("purposectl_cases_total 2"));
        assert!(text.contains("purposectl_case_entries_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("purposectl_case_entries_sum 11"));
        assert!(text.contains("purposectl_case_entries_count 2"));
    }

    #[test]
    fn prometheus_multi_emits_one_type_line_per_family() {
        let clinic = Registry::new();
        let trial = Registry::new();
        clinic.add_counter("cases_total", 2);
        trial.add_counter("cases_total", 7);
        trial.set_gauge("open", 3.0);
        clinic.observe("case_entries", 4);
        let text = prometheus_multi(&[("clinic", &clinic), ("trial", &trial)]);
        // One family header even though both tenants export the counter.
        assert_eq!(
            text.matches("# TYPE purposectl_cases_total counter")
                .count(),
            1
        );
        assert!(text.contains("purposectl_cases_total{tenant=\"clinic\"} 2"));
        assert!(text.contains("purposectl_cases_total{tenant=\"trial\"} 7"));
        // A metric only one tenant touched still samples (zero) for both.
        assert!(text.contains("purposectl_open{tenant=\"clinic\"} 0"));
        assert!(text.contains("purposectl_open{tenant=\"trial\"} 3"));
        assert!(text.contains("purposectl_case_entries_bucket{tenant=\"clinic\",le=\"+Inf\"} 1"));
        assert!(text.contains("purposectl_case_entries_count{tenant=\"trial\"} 0"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let reg = Registry::new();
        reg.add_counter("c", 1);
        let text = prometheus_multi(&[("a\"b\\c", &reg)]);
        assert!(text.contains("purposectl_c{tenant=\"a\\\"b\\\\c\"} 1"));
    }
}
