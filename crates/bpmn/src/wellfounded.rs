//! Well-foundedness (§5 of the paper).
//!
//! A BPMN process is *well-founded* w.r.t. the observable labels if every
//! cycle contains at least one observable activity — a task (whose start
//! synchronization `r·q` is observable) or an error boundary (whose
//! `sys·Err` is observable). Corollary 1 shows `WeakNext` terminates exactly
//! on well-founded processes, so this static check is the decidability
//! gate for Algorithm 1.
//!
//! The check is purely graph-theoretic: a cycle avoiding every task node is
//! a cycle in the subgraph induced by non-task nodes, and error edges
//! originate at tasks, so the task-free subgraph over all control edges
//! captures exactly the offending cycles. "Note that non well-founded
//! processes can be detected directly on the diagram describing the
//! process" (§5) — this module is that detector.

use crate::model::{ModelError, NodeId, ProcessModel};
use crate::validate::control_edges;
use std::collections::HashMap;

/// Check well-foundedness; on failure, report one task-free cycle.
pub fn check_well_founded(model: &ProcessModel) -> Result<(), ModelError> {
    match find_task_free_cycle(model) {
        None => Ok(()),
        Some(cycle) => Err(ModelError::NotWellFounded {
            cycle: cycle.iter().map(|id| model.node(*id).name).collect(),
        }),
    }
}

/// Find a cycle through non-task nodes only, if any.
pub fn find_task_free_cycle(model: &ProcessModel) -> Option<Vec<NodeId>> {
    // Adjacency restricted to non-task nodes.
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (from, to) in control_edges(model) {
        if model.node(from).kind.is_task() || model.node(to).kind.is_task() {
            continue;
        }
        adj.entry(from).or_default().push(to);
    }

    // Iterative DFS with colors; on back edge, reconstruct the cycle from
    // the active path.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<NodeId, Color> =
        model.nodes().iter().map(|n| (n.id, Color::White)).collect();

    for start in model.nodes().iter().map(|n| n.id) {
        if color[&start] != Color::White || model.node(start).kind.is_task() {
            continue;
        }
        // Stack of (node, next-child-index); `path` mirrors the gray chain.
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        let mut path: Vec<NodeId> = vec![start];
        color.insert(start, Color::Gray);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let children = adj.get(&node).map(Vec::as_slice).unwrap_or(&[]);
            if *idx < children.len() {
                let child = children[*idx];
                *idx += 1;
                match color[&child] {
                    Color::Gray => {
                        // Found a cycle: the segment of `path` from `child`.
                        let pos = path
                            .iter()
                            .position(|&n| n == child)
                            .expect("gray node is on the active path");
                        let mut cycle = path[pos..].to_vec();
                        cycle.push(child);
                        return Some(cycle);
                    }
                    Color::White => {
                        color.insert(child, Color::Gray);
                        stack.push((child, 0));
                        path.push(child);
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProcessBuilder;

    #[test]
    fn cycle_through_task_is_well_founded() {
        // S → T → G → (T | E): the paper's T01/G1/T02 pattern.
        let mut b = ProcessBuilder::new("wf");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let t = b.task(p, "T");
        let g = b.xor(p, "G");
        let e = b.end(p, "E");
        b.flow(s, t);
        b.flow(t, g);
        b.flow(g, t); // loop back through the task
        b.flow(g, e);
        assert!(b.build().is_ok());
    }

    #[test]
    fn gateway_only_cycle_is_rejected() {
        // "An example is a BPMN process with a cycle formed only by gates."
        let mut b = ProcessBuilder::new("nwf");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let g1 = b.xor(p, "G1");
        let g2 = b.xor(p, "G2");
        let e = b.end(p, "E");
        b.flow(s, g1);
        b.flow(g1, g2);
        b.flow(g2, g1); // gate-only cycle
        b.flow(g2, e);
        let err = b.build().unwrap_err();
        match err {
            ModelError::NotWellFounded { cycle } => {
                assert!(cycle.len() >= 2);
            }
            other => panic!("expected NotWellFounded, got {other}"),
        }
    }

    #[test]
    fn message_flow_cycle_with_tasks_is_well_founded() {
        // Fig. 10: two pools in a message cycle, each with a task.
        let mut b = ProcessBuilder::new("fig10");
        let p1 = b.pool("P1");
        let p2 = b.pool("P2");
        let s1 = b.start(p1, "S1");
        let s2 = b.message_start(p1, "S2");
        let t1 = b.task(p1, "T1");
        let s3 = b.message_start(p2, "S3");
        let t2 = b.task(p2, "T2");
        let e1 = b.message_end(p1, "E1", s3);
        let e2 = b.message_end(p2, "E2", s2);
        b.flow(s1, t1);
        b.flow(s2, t1);
        b.flow(t1, e1);
        b.flow(s3, t2);
        b.flow(t2, e2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn reported_cycle_is_closed() {
        let mut b = ProcessBuilder::new("nwf2");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let g1 = b.xor(p, "G1");
        let g2 = b.xor(p, "G2");
        let g3 = b.xor(p, "G3");
        let e = b.end(p, "E");
        b.flow(s, g1);
        b.flow(g1, g2);
        b.flow(g2, g3);
        b.flow(g3, g1);
        b.flow(g3, e);
        let m = b.build_unchecked();
        let cycle = find_task_free_cycle(&m).expect("cycle expected");
        assert_eq!(cycle.first(), cycle.last());
    }
}
