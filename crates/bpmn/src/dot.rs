//! Graphviz (DOT) export of process models.
//!
//! Renders a [`crate::model::ProcessModel`] in the visual vocabulary of
//! BPMN diagrams like the paper's Fig. 1: pools as clusters, events as
//! circles, tasks as boxes, gateways as diamonds, sequence flows solid and
//! message/error flows dashed.

use crate::model::{NodeKind, ProcessModel};
use std::fmt::Write;

/// Render the model as a DOT digraph with one cluster per pool.
pub fn to_dot(model: &ProcessModel) -> String {
    let mut out = String::new();
    out.push_str("digraph bpmn {\n  rankdir=LR;\n  fontsize=10;\n");
    for (pi, pool) in model.pools().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{pi} {{");
        let _ = writeln!(out, "    label=\"{}\";", pool.role);
        for n in model.nodes().iter().filter(|n| n.pool.0 == pi) {
            let attrs = match n.kind {
                NodeKind::Start | NodeKind::MessageStart => {
                    "shape=circle, style=filled, fillcolor=palegreen"
                }
                NodeKind::End | NodeKind::MessageEnd { .. } => {
                    "shape=circle, style=filled, fillcolor=lightcoral, penwidth=2"
                }
                NodeKind::Task { .. } => "shape=box, style=rounded",
                NodeKind::Xor => "shape=diamond, label=\"×\", xlabel=\"{}\"",
                NodeKind::And => "shape=diamond, label=\"+\"",
                NodeKind::Or { .. } | NodeKind::OrJoin => "shape=diamond, label=\"○\"",
            };
            if n.kind.is_gateway() {
                let symbol = match n.kind {
                    NodeKind::Xor => "×",
                    NodeKind::And => "+",
                    _ => "○",
                };
                let _ = writeln!(
                    out,
                    "    n{} [shape=diamond, label=\"{symbol}\", xlabel=\"{}\"];",
                    n.id.0, n.name
                );
            } else {
                let _ = writeln!(out, "    n{} [{attrs}, label=\"{}\"];", n.id.0, n.name);
            }
        }
        out.push_str("  }\n");
    }
    for f in model.flows() {
        let _ = writeln!(out, "  n{} -> n{};", f.from.0, f.to.0);
    }
    for n in model.nodes() {
        match n.kind {
            NodeKind::MessageEnd { to } => {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [style=dashed, label=\"msg\"];",
                    n.id.0, to.0
                );
            }
            NodeKind::Task { on_error: Some(h) } => {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [style=dotted, color=red, label=\"Err\"];",
                    n.id.0, h.0
                );
            }
            _ => {}
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{fig9_error, healthcare_treatment};

    #[test]
    fn fig1_renders_four_pools() {
        let dot = to_dot(&healthcare_treatment());
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_3"));
        assert!(dot.contains("label=\"GP\""));
        assert!(dot.contains("label=\"Radiologist\""));
        assert!(dot.contains("msg"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn error_boundaries_are_dotted_red() {
        let dot = to_dot(&fig9_error());
        assert!(dot.contains("style=dotted, color=red"));
    }
}
