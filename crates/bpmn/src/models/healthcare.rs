//! Fig. 1 — the healthcare treatment process.
//!
//! Four pools: the general practitioner (GP), the cardiologist, the
//! radiology department and the lab. The figure in the paper is a diagram;
//! this module reconstructs it from the prose of §2 and cross-checks the
//! reconstruction against the audit trail of Fig. 4 and the transition
//! system of Fig. 6 (see the `fig4_replay` / `fig6_visited_states`
//! integration tests).
//!
//! Concretization choices (the paper's task codes are reused verbatim where
//! Figs. 4 and 6 pin them down):
//!
//! * GP: `T01` retrieve EPR + collect symptoms, `T02` make diagnosis (with
//!   an error boundary looping back to `T01` — Fig. 6 shows `sys·Err`
//!   suspending the process until `GP·T01` restores it), `T03` prescribe,
//!   `T04` discharge, `T05` refer to specialist;
//! * cardiologist: `T06` examine / retrieve results, `T07` make diagnosis,
//!   `T08` order lab tests, `T09` order radiology scans;
//! * radiology: `T10` check counter-indications, `T11` do the scan, `T12`
//!   export results (Fig. 4: Charlie executes exactly these);
//! * lab: `T13` check counter-indications, `T14` do the lab exam, `T15`
//!   export results (Fig. 6 shows `TL·T13` as the lab's first task);
//! * `G1`/`G2` are exclusive gateways, `G3` is the inclusive "tests and/or
//!   scans" gateway, and the "notification for all the ordered tests and
//!   scans" event `S4` is modeled as the OR join paired with `G3`.

use crate::model::{ProcessBuilder, ProcessModel};

use super::roles;

/// Build the Fig. 1 process.
pub fn healthcare_treatment() -> ProcessModel {
    let mut b = ProcessBuilder::new("healthcare_treatment");

    let gp = b.pool(roles::gp());
    let card = b.pool(roles::cardiologist());
    let lab = b.pool(roles::medical_lab_tech());
    let rad = b.pool(roles::radiologist());

    // --- GP pool -----------------------------------------------------
    let s1 = b.start(gp, "S1"); // patient visits the GP
    let s2 = b.message_start(gp, "S2"); // notification from the cardiologist
    let t01 = b.task(gp, "T01"); // retrieve EPR, collect symptoms
    let g1 = b.xor(gp, "G1"); // diagnose here or refer
    let t02 = b.task(gp, "T02"); // make diagnosis (may fail)
    let t03 = b.task(gp, "T03"); // prescribe treatments
    let t04 = b.task(gp, "T04"); // discharge
    let t05 = b.task(gp, "T05"); // refer to specialist
    let e1 = b.end(gp, "E1"); // treatment concluded
    b.set_error_boundary(t02, t01); // Err: retry from examination

    // --- Cardiologist pool -------------------------------------------
    let s3 = b.message_start(card, "S3"); // referral received
    let s4 = b.or_join(card, "S4"); // all ordered tests/scans done
    let t06 = b.task(card, "T06"); // examine / retrieve results
    let g2 = b.xor(card, "G2"); // diagnose or order more
    let t07 = b.task(card, "T07"); // make diagnosis
    let g3 = b.or_split(card, "G3"); // tests and/or scans
    let t08 = b.task(card, "T08"); // order lab tests
    let t09 = b.task(card, "T09"); // order radiology scans
    let e4 = b.message_end(card, "E4", s2); // notify the GP
    b.pair_or(g3, s4);

    // --- Lab pool ------------------------------------------------------
    let s5 = b.message_start(lab, "S5");
    let t13 = b.task(lab, "T13"); // check EPR for counter-indications
    let t14 = b.task(lab, "T14"); // do the lab exam
    let t15 = b.task(lab, "T15"); // export the results
    let e6 = b.message_end(lab, "E6", s4); // notify: tests completed

    // --- Radiology pool -------------------------------------------------
    let s6 = b.message_start(rad, "S6");
    let t10 = b.task(rad, "T10"); // check EPR for counter-indications
    let t11 = b.task(rad, "T11"); // do the scan
    let t12 = b.task(rad, "T12"); // export the scan
    let e7 = b.message_end(rad, "E7", s4); // notify: scans completed

    // Message-sending relays: T05/T08/T09 complete by dispatching their
    // request (modeled as message end events, which are unobservable).
    let e5 = b.message_end(gp, "E5", s3); // referral to the cardiologist
    let e8 = b.message_end(card, "E8", s5); // lab order
    let e9 = b.message_end(card, "E9", s6); // radiology order

    // GP sequence flows.
    b.flow(s1, t01);
    b.flow(s2, t01);
    b.flow(t01, g1);
    b.flow(g1, t02);
    b.flow(g1, t05);
    b.flow(t02, t03);
    b.flow(t03, t04);
    b.flow(t04, e1);
    b.flow(t05, e5);

    // Cardiologist sequence flows.
    b.flow(s3, t06);
    b.flow(s4, t06);
    b.flow(t06, g2);
    b.flow(g2, t07);
    b.flow(g2, g3);
    b.flow(g3, t08);
    b.flow(g3, t09);
    b.flow(t07, e4);
    b.flow(t08, e8);
    b.flow(t09, e9);

    // Lab sequence flows.
    b.flow(s5, t13);
    b.flow(t13, t14);
    b.flow(t14, t15);
    b.flow(t15, e6);

    // Radiology sequence flows.
    b.flow(s6, t10);
    b.flow(t10, t11);
    b.flow(t11, t12);
    b.flow(t12, e7);

    b.build()
        .expect("the Fig. 1 model is well-formed and well-founded")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    #[test]
    fn fig1_inventory() {
        let m = healthcare_treatment();
        assert_eq!(m.pools().len(), 4);
        assert_eq!(m.tasks().count(), 15);
        assert_eq!(m.task_role(sym("T01")), Some(sym("GP")));
        assert_eq!(m.task_role(sym("T06")), Some(sym("Cardiologist")));
        assert_eq!(m.task_role(sym("T10")), Some(sym("Radiologist")));
        assert_eq!(m.task_role(sym("T13")), Some(sym("MedicalLabTech")));
    }

    #[test]
    fn fig1_is_well_founded() {
        // build() validates, so construction succeeding is the assertion;
        // double-check the cycle detector agrees.
        let m = healthcare_treatment();
        assert!(crate::wellfounded::find_task_free_cycle(&m).is_none());
    }

    #[test]
    fn fig1_t02_has_error_boundary_to_t01() {
        let m = healthcare_treatment();
        let t02 = m.node_by_name(sym("T02")).unwrap();
        match t02.kind {
            crate::model::NodeKind::Task { on_error: Some(h) } => {
                assert_eq!(m.node(h).name, sym("T01"));
            }
            _ => panic!("T02 must carry an error boundary"),
        }
    }
}
