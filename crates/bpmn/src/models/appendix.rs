//! The micro-processes of Appendix A (Figs. 7–10).
//!
//! Each constructor reproduces one example the paper uses to explain the
//! BPMN → COWS encoding; the LTS shapes claimed by the appendix are checked
//! by the `fig7_lts` … `fig10_lts` integration tests.

use crate::model::{ProcessBuilder, ProcessModel};

/// Fig. 7 — a single-task sequence `S → T → E`.
pub fn fig7_sequence() -> ProcessModel {
    let mut b = ProcessBuilder::new("fig7_sequence");
    let p = b.pool("P");
    let s = b.start(p, "S");
    let t = b.task(p, "T");
    let e = b.end(p, "E");
    b.chain(&[s, t, e]);
    b.build().expect("fig7 is well-formed")
}

/// Fig. 8 — an exclusive gateway: `S → T → G → (T1 → E1 | T2 → E2)`.
pub fn fig8_exclusive() -> ProcessModel {
    let mut b = ProcessBuilder::new("fig8_exclusive");
    let p = b.pool("P");
    let s = b.start(p, "S");
    let t = b.task(p, "T");
    let g = b.xor(p, "G");
    let t1 = b.task(p, "T1");
    let t2 = b.task(p, "T2");
    let e1 = b.end(p, "E1");
    let e2 = b.end(p, "E2");
    b.chain(&[s, t, g]);
    b.flow(g, t1);
    b.flow(g, t2);
    b.flow(t1, e1);
    b.flow(t2, e2);
    b.build().expect("fig8 is well-formed")
}

/// Fig. 9 — a task with an error boundary: `T` proceeds to `T2` or, on
/// `Err`, to the handler `T1`.
pub fn fig9_error() -> ProcessModel {
    let mut b = ProcessBuilder::new("fig9_error");
    let p = b.pool("P");
    let s = b.start(p, "S");
    let t1 = b.task(p, "T1"); // error handler
    let t2 = b.task(p, "T2"); // normal continuation
    let e1 = b.end(p, "E1");
    let e2 = b.end(p, "E2");
    let t = b.task_with_error(p, "T", t1);
    b.flow(s, t);
    b.flow(t, t2);
    b.flow(t1, e1);
    b.flow(t2, e2);
    b.build().expect("fig9 is well-formed")
}

/// Fig. 10 — message flow and a cross-pool cycle:
/// `S1 → T1 → E1 ⇒ S3 → T2 → E2 ⇒ S2 → T1 → …`.
pub fn fig10_message_cycle() -> ProcessModel {
    let mut b = ProcessBuilder::new("fig10_message_cycle");
    let p1 = b.pool("P1");
    let p2 = b.pool("P2");
    let s1 = b.start(p1, "S1");
    let s2 = b.message_start(p1, "S2");
    let t1 = b.task(p1, "T1");
    let s3 = b.message_start(p2, "S3");
    let t2 = b.task(p2, "T2");
    let e1 = b.message_end(p1, "E1", s3);
    let e2 = b.message_end(p2, "E2", s2);
    b.flow(s1, t1);
    b.flow(s2, t1);
    b.flow(t1, e1);
    b.flow(s3, t2);
    b.flow(t2, e2);
    b.build().expect("fig10 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_appendix_models_build() {
        assert_eq!(fig7_sequence().tasks().count(), 1);
        assert_eq!(fig8_exclusive().tasks().count(), 3);
        assert_eq!(fig9_error().tasks().count(), 3);
        assert_eq!(fig10_message_cycle().tasks().count(), 2);
    }
}
