//! The paper's worked process models.
//!
//! * [`healthcare_treatment`] — Fig. 1, the four-pool healthcare treatment
//!   process (GP, cardiologist, lab, radiology);
//! * [`clinical_trial`] — Fig. 2, the physician's part of a clinical trial;
//! * [`appendix`] — the four micro-processes of Appendix A (Figs. 7–10).
//!
//! Node and task names follow the paper; where the paper's figure is only
//! described in prose, the concretization choices are documented inline and
//! cross-checked against the audit trail of Fig. 4 and the transition system
//! of Fig. 6 by the integration tests.

pub mod appendix;
pub mod clinical_trial;
pub mod healthcare;

pub use appendix::{fig10_message_cycle, fig7_sequence, fig8_exclusive, fig9_error};
pub use clinical_trial::clinical_trial;
pub use healthcare::healthcare_treatment;

/// Role names used by the paper's models.
pub mod roles {
    use cows::symbol::{sym, Symbol};

    pub fn gp() -> Symbol {
        sym("GP")
    }
    pub fn cardiologist() -> Symbol {
        sym("Cardiologist")
    }
    pub fn radiologist() -> Symbol {
        sym("Radiologist")
    }
    pub fn medical_lab_tech() -> Symbol {
        sym("MedicalLabTech")
    }
    pub fn physician() -> Symbol {
        sym("Physician")
    }
    pub fn medical_tech() -> Symbol {
        sym("MedicalTech")
    }
}
