//! Fig. 2 — the clinical trial process (physician's part).
//!
//! `T91` define eligibility criteria → `T92` find candidate patients →
//! `T93` ask candidates to participate → `T94` perform the trial (repeated:
//! Fig. 4 logs several `T94` measurement entries across days) → `T95`
//! analyze the results.
//!
//! The pool role is the generic `Physician`: the paper's role hierarchy
//! makes `Cardiologist ≥R Physician`, so Bob's entries match through the
//! hierarchy — this model exercises the role-generalization rule of
//! Algorithm 1 (line 5).

use crate::model::{ProcessBuilder, ProcessModel};

use super::roles;

/// Build the Fig. 2 process.
pub fn clinical_trial() -> ProcessModel {
    let mut b = ProcessBuilder::new("clinical_trial");
    let phys = b.pool(roles::physician());
    let s91 = b.start(phys, "S91");
    let t91 = b.task(phys, "T91"); // define eligibility criteria
    let t92 = b.task(phys, "T92"); // find patients meeting the criteria
    let t93 = b.task(phys, "T93"); // ask candidates to participate
    let t94 = b.task(phys, "T94"); // perform the trial (measurements)
    let g91 = b.xor(phys, "G91"); // more measurements, or analyze
    let t95 = b.task(phys, "T95"); // analyze the results
    let e91 = b.end(phys, "E91");

    b.chain(&[s91, t91, t92, t93, t94, g91]);
    b.flow(g91, t94); // measurement loop (well-founded: contains T94)
    b.flow(g91, t95);
    b.flow(t95, e91);

    b.build()
        .expect("the Fig. 2 model is well-formed and well-founded")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    #[test]
    fn fig2_inventory() {
        let m = clinical_trial();
        assert_eq!(m.pools().len(), 1);
        assert_eq!(m.tasks().count(), 5);
        assert_eq!(m.task_role(sym("T94")), Some(sym("Physician")));
    }

    #[test]
    fn fig2_measurement_loop_is_well_founded() {
        let m = clinical_trial();
        assert!(crate::wellfounded::find_task_free_cycle(&m).is_none());
    }
}
