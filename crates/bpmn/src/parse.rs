//! A line-oriented text format for process models.
//!
//! The paper's processes are diagrams; this format gives them a concrete
//! syntax so purposes can be deployed as files next to policies and trails
//! (same philosophy as the `policy::parse` and `audit::codec` modules):
//!
//! ```text
//! process order_fulfillment
//!
//! pool Clerk
//!   start    Start
//!   task     Receive
//!   task     Pick on_error Receive
//!   task     Ship
//!   end      Done
//!
//! flows
//!   Start -> Receive -> Pick -> Ship -> Done
//! ```
//!
//! Node kinds: `start`, `message_start`, `end`, `message_end <name> -> <target>`,
//! `task <name> [on_error <node>]`, `xor`, `and`, `or_split <name> [join <node>]`,
//! `or_join`. Flows accept chains (`A -> B -> C`). References may be
//! forward — the parser resolves names in a second pass. Comments (`#`)
//! and blank lines are ignored.

use crate::model::{ModelError, NodeId, NodeKind, PoolId, ProcessBuilder, ProcessModel};
use cows::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessParseError {
    Syntax { line: usize, message: String },
    UnknownNode { line: usize, name: String },
    Invalid(ModelError),
}

impl fmt::Display for ProcessParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ProcessParseError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node `{name}`")
            }
            ProcessParseError::Invalid(e) => write!(f, "invalid model: {e}"),
        }
    }
}

impl std::error::Error for ProcessParseError {}

fn syntax(line: usize, message: impl Into<String>) -> ProcessParseError {
    ProcessParseError::Syntax {
        line,
        message: message.into(),
    }
}

/// One parsed node declaration awaiting reference resolution.
struct PendingNode {
    line: usize,
    pool: PoolId,
    kind_word: String,
    name: String,
    /// `on_error <x>` / `-> <x>` / `join <x>` argument, if any.
    reference: Option<String>,
}

/// Parse a process document.
pub fn parse_process(text: &str) -> Result<ProcessModel, ProcessParseError> {
    let mut name: Option<String> = None;
    let mut builder: Option<ProcessBuilder> = None;
    let mut current_pool: Option<PoolId> = None;
    let mut pending: Vec<PendingNode> = Vec::new();
    let mut flows: Vec<(usize, Vec<String>)> = Vec::new();
    let mut in_flows = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "process" => {
                if tokens.len() != 2 {
                    return Err(syntax(lineno, "expected `process <name>`"));
                }
                if name.is_some() {
                    return Err(syntax(lineno, "duplicate `process` header"));
                }
                name = Some(tokens[1].to_string());
                builder = Some(ProcessBuilder::new(tokens[1]));
            }
            "pool" => {
                if tokens.len() != 2 {
                    return Err(syntax(lineno, "expected `pool <role>`"));
                }
                let b = builder
                    .as_mut()
                    .ok_or_else(|| syntax(lineno, "`process <name>` must come first"))?;
                current_pool = Some(b.pool(tokens[1]));
                in_flows = false;
            }
            "flows" => {
                if builder.is_none() {
                    return Err(syntax(lineno, "`process <name>` must come first"));
                }
                in_flows = true;
            }
            _ if in_flows => {
                // A chain: A -> B -> C.
                let chain: Vec<String> = line.split("->").map(|s| s.trim().to_string()).collect();
                if chain.len() < 2 || chain.iter().any(String::is_empty) {
                    return Err(syntax(lineno, "expected `A -> B [-> C …]`"));
                }
                flows.push((lineno, chain));
            }
            kind_word @ ("start" | "message_start" | "end" | "message_end" | "task" | "xor"
            | "and" | "or_split" | "or_join") => {
                if builder.is_none() {
                    return Err(syntax(lineno, "`process <name>` must come first"));
                }
                let pool = current_pool
                    .ok_or_else(|| syntax(lineno, "node declared outside any `pool`"))?;
                if tokens.len() < 2 {
                    return Err(syntax(lineno, format!("expected `{kind_word} <name> …`")));
                }
                let node_name = tokens[1].to_string();
                let reference = match (kind_word, tokens.len()) {
                    ("message_end", 4) if tokens[2] == "->" => Some(tokens[3].to_string()),
                    ("message_end", _) => {
                        return Err(syntax(lineno, "expected `message_end <name> -> <target>`"))
                    }
                    ("task", 4) if tokens[2] == "on_error" => Some(tokens[3].to_string()),
                    ("task", 2) => None,
                    ("task", _) => {
                        return Err(syntax(lineno, "expected `task <name> [on_error <node>]`"))
                    }
                    ("or_split", 4) if tokens[2] == "join" => Some(tokens[3].to_string()),
                    ("or_split", 2) => None,
                    ("or_split", _) => {
                        return Err(syntax(lineno, "expected `or_split <name> [join <node>]`"))
                    }
                    (_, 2) => None,
                    _ => {
                        return Err(syntax(
                            lineno,
                            format!("unexpected tokens after `{kind_word} <name>`"),
                        ))
                    }
                };
                pending.push(PendingNode {
                    line: lineno,
                    pool,
                    kind_word: kind_word.to_string(),
                    name: node_name,
                    reference,
                });
            }
            other => {
                return Err(syntax(
                    lineno,
                    format!(
                        "unknown directive `{other}` (expected a node kind, `pool`, or `flows`)"
                    ),
                ))
            }
        }
    }

    let mut b = builder.ok_or_else(|| syntax(1, "missing `process <name>` header"))?;

    // First pass: create every node (targets resolved after).
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut fixups: Vec<(usize, NodeId, &'static str, String)> = Vec::new();
    for p in &pending {
        let id = match p.kind_word.as_str() {
            "start" => b.start(p.pool, p.name.as_str()),
            "message_start" => b.message_start(p.pool, p.name.as_str()),
            "end" => b.end(p.pool, p.name.as_str()),
            // Placeholder target: patched below once every name is known.
            "message_end" => b.message_end(p.pool, p.name.as_str(), NodeId(0)),
            "task" => b.task(p.pool, p.name.as_str()),
            "xor" => b.xor(p.pool, p.name.as_str()),
            "and" => b.and(p.pool, p.name.as_str()),
            "or_split" => b.or_split(p.pool, p.name.as_str()),
            "or_join" => b.or_join(p.pool, p.name.as_str()),
            _ => unreachable!("kinds filtered during scanning"),
        };
        if ids.insert(p.name.clone(), id).is_some() {
            return Err(ProcessParseError::Invalid(ModelError::DuplicateNodeName {
                name: Symbol::new(&p.name),
            }));
        }
        if let Some(r) = &p.reference {
            let slot = match p.kind_word.as_str() {
                "message_end" => "message_target",
                "task" => "on_error",
                "or_split" => "join",
                _ => unreachable!("only these kinds carry references"),
            };
            fixups.push((p.line, id, slot, r.clone()));
        }
    }

    // Second pass: resolve references.
    for (line, id, slot, target) in fixups {
        let Some(&tid) = ids.get(&target) else {
            return Err(ProcessParseError::UnknownNode { line, name: target });
        };
        match slot {
            "message_target" => b.set_message_target(id, tid),
            "on_error" => b.set_error_boundary(id, tid),
            "join" => b.pair_or(id, tid),
            _ => unreachable!(),
        }
    }

    // Flows.
    for (line, chain) in flows {
        let mut prev: Option<NodeId> = None;
        for nm in chain {
            let Some(&id) = ids.get(&nm) else {
                return Err(ProcessParseError::UnknownNode { line, name: nm });
            };
            if let Some(p) = prev {
                b.flow(p, id);
            }
            prev = Some(id);
        }
    }

    b.build().map_err(ProcessParseError::Invalid)
}

/// Render a model back to the text form (inverse of [`parse_process`] up to
/// whitespace and declaration order within a pool).
pub fn format_process(model: &ProcessModel) -> String {
    let mut out = format!("process {}\n", model.name());
    for (pi, pool) in model.pools().iter().enumerate() {
        out.push_str(&format!("\npool {}\n", pool.role));
        for n in model.nodes().iter().filter(|n| n.pool.0 == pi) {
            let decl = match n.kind {
                NodeKind::Start => format!("start {}", n.name),
                NodeKind::MessageStart => format!("message_start {}", n.name),
                NodeKind::End => format!("end {}", n.name),
                NodeKind::MessageEnd { to } => {
                    format!("message_end {} -> {}", n.name, model.node(to).name)
                }
                NodeKind::Task { on_error: None } => format!("task {}", n.name),
                NodeKind::Task { on_error: Some(h) } => {
                    format!("task {} on_error {}", n.name, model.node(h).name)
                }
                NodeKind::Xor => format!("xor {}", n.name),
                NodeKind::And => format!("and {}", n.name),
                NodeKind::Or { join: None } => format!("or_split {}", n.name),
                NodeKind::Or { join: Some(j) } => {
                    format!("or_split {} join {}", n.name, model.node(j).name)
                }
                NodeKind::OrJoin => format!("or_join {}", n.name),
            };
            out.push_str("  ");
            out.push_str(&decl);
            out.push('\n');
        }
    }
    out.push_str("\nflows\n");
    for f in model.flows() {
        out.push_str(&format!(
            "  {} -> {}\n",
            model.node(f.from).name,
            model.node(f.to).name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::healthcare_treatment;

    const ORDER: &str = "\
# a tiny fulfillment process
process order_fulfillment

pool Clerk
  start Start
  task Receive
  task Pick on_error Receive
  task Ship
  end Done

flows
  Start -> Receive -> Pick -> Ship -> Done
";

    #[test]
    fn parses_a_simple_process() {
        let m = parse_process(ORDER).unwrap();
        assert_eq!(m.name().to_string(), "order_fulfillment");
        assert_eq!(m.tasks().count(), 3);
        assert!(m.has_error_boundaries());
    }

    #[test]
    fn round_trips_through_format() {
        let m = parse_process(ORDER).unwrap();
        let text = format_process(&m);
        let m2 = parse_process(&text).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn fig1_round_trips() {
        // Re-parsing renumbers nodes (grouped per pool), so compare the
        // canonical text forms rather than raw ids.
        let m = healthcare_treatment();
        let text = format_process(&m);
        let m2 = parse_process(&text).unwrap();
        assert_eq!(format_process(&m2), text);
        assert_eq!(m2.pools().len(), m.pools().len());
        assert_eq!(m2.tasks().count(), m.tasks().count());
        assert_eq!(m2.flows().len(), m.flows().len());
    }

    #[test]
    fn forward_references_resolve() {
        let text = "\
process p
pool A
  start S
  task T
  message_end E -> M
pool B
  message_start M
  task U
  end D
flows
  S -> T -> E
  M -> U -> D
";
        let m = parse_process(text).unwrap();
        assert_eq!(m.pools().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_process("process p\npool A\n  start S\n  frobnicate X\n").unwrap_err();
        match e {
            ProcessParseError::Syntax { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unknown_flow_node_reported() {
        let text = "process p\npool A\n  start S\n  end E\nflows\n  S -> Missing\n";
        let e = parse_process(text).unwrap_err();
        assert!(matches!(e, ProcessParseError::UnknownNode { line: 6, .. }));
    }

    #[test]
    fn node_outside_pool_rejected() {
        let e = parse_process("process p\n  start S\n").unwrap_err();
        assert!(matches!(e, ProcessParseError::Syntax { line: 2, .. }));
    }

    #[test]
    fn invalid_models_surface_model_errors() {
        let text = "process p\npool A\n  task T\n  end E\nflows\n  T -> E\n";
        let e = parse_process(text).unwrap_err();
        assert!(matches!(
            e,
            ProcessParseError::Invalid(ModelError::NoStartEvent)
        ));
    }
}
