//! # BPMN process models for purpose control
//!
//! The organizational-process substrate of the paper (§3.3): a builder and
//! validator for the core BPMN 1.2 element set, the well-foundedness check
//! of §5, the encoding into [`cows`] services (Appendix A), and the paper's
//! worked process models (Figs. 1 and 2).
//!
//! ```
//! use bpmn::model::ProcessBuilder;
//! use bpmn::encode::encode;
//!
//! let mut b = ProcessBuilder::new("demo");
//! let p = b.pool("P");
//! let s = b.start(p, "S");
//! let t = b.task(p, "T");
//! let e = b.end(p, "E");
//! b.chain(&[s, t, e]);
//! let model = b.build().unwrap();
//! let encoded = encode(&model);
//! assert!(!encoded.service.is_nil());
//! ```

pub mod dot;
pub mod encode;
pub mod model;
pub mod models;
pub mod parse;
pub mod validate;
pub mod wellfounded;

pub use dot::to_dot;
pub use encode::{encode, Encoded};
pub use model::{ModelError, Node, NodeId, NodeKind, Pool, PoolId, ProcessBuilder, ProcessModel};
pub use parse::{format_process, parse_process, ProcessParseError};
