//! Structural validation of process models.
//!
//! Validation enforces the shape constraints the COWS encoding relies on.
//! [`validate`] is called by [`crate::model::ProcessBuilder::build`]; it
//! checks structure, reachability and well-foundedness (§5 of the paper;
//! see [`crate::wellfounded`]).

use crate::model::{ModelError, NodeId, NodeKind, ProcessModel};
use std::collections::HashSet;

/// Maximum supported OR-gateway fan-out. The encoding enumerates the
/// non-empty subsets of the outgoing branches (2^n − 1 alternatives), so the
/// fan-out is capped to keep services small. Fig. 1 uses fan-out 2.
pub const MAX_OR_FANOUT: usize = 6;

/// Every edge along which a token (or message, or error signal) can travel.
/// Used for reachability and cycle analysis.
pub fn control_edges(model: &ProcessModel) -> Vec<(NodeId, NodeId)> {
    let mut edges: Vec<(NodeId, NodeId)> = model.flows().iter().map(|f| (f.from, f.to)).collect();
    for n in model.nodes() {
        match n.kind {
            NodeKind::MessageEnd { to } => edges.push((n.id, to)),
            NodeKind::Task { on_error: Some(h) } => edges.push((n.id, h)),
            _ => {}
        }
    }
    edges
}

/// Validate `model`. Returns the first violated rule.
pub fn validate(model: &ProcessModel) -> Result<(), ModelError> {
    // Unique node names (endpoints are (role, name); names must be unique
    // process-wide so audit-trail tasks resolve unambiguously).
    let mut seen = HashSet::new();
    for n in model.nodes() {
        if !seen.insert(n.name) {
            return Err(ModelError::DuplicateNodeName { name: n.name });
        }
    }

    // Flow endpoints exist and stay within one pool.
    for f in model.flows() {
        for id in [f.from, f.to] {
            if id.0 >= model.nodes().len() {
                return Err(ModelError::UnknownNode { id });
            }
        }
        let (a, b) = (model.node(f.from), model.node(f.to));
        if a.pool != b.pool {
            return Err(ModelError::FlowCrossesPools {
                from: a.name,
                to: b.name,
            });
        }
    }

    // At least one plain start event.
    if !model
        .nodes()
        .iter()
        .any(|n| matches!(n.kind, NodeKind::Start))
    {
        return Err(ModelError::NoStartEvent);
    }

    // Targets of message flows and error boundaries — checked before the
    // degree rules so the more specific error is reported, and counted as
    // incoming edges (an error handler may have no incoming sequence flow).
    let mut extra_in: HashSet<NodeId> = HashSet::new();
    for n in model.nodes() {
        match n.kind {
            NodeKind::MessageEnd { to } => {
                if to.0 >= model.nodes().len() {
                    return Err(ModelError::UnknownNode { id: to });
                }
                let target = model.node(to);
                if !matches!(target.kind, NodeKind::MessageStart | NodeKind::OrJoin) {
                    return Err(ModelError::BadMessageTarget {
                        from: n.name,
                        to: target.name,
                    });
                }
                extra_in.insert(to);
            }
            NodeKind::Task { on_error: Some(h) } => {
                if h.0 >= model.nodes().len() {
                    return Err(ModelError::UnknownNode { id: h });
                }
                if model.node(h).pool != n.pool {
                    return Err(ModelError::ErrorTargetOutsidePool {
                        task: n.name,
                        target: model.node(h).name,
                    });
                }
                extra_in.insert(h);
            }
            _ => {}
        }
    }

    // Per-kind degree constraints.
    for n in model.nodes() {
        let ins = model.predecessors(n.id).len() + usize::from(extra_in.contains(&n.id));
        let outs = model.successors(n.id).len();
        match n.kind {
            NodeKind::Start | NodeKind::MessageStart => {
                // Message arrivals (extra_in) are fine; sequence flows not.
                if !model.predecessors(n.id).is_empty() {
                    return Err(ModelError::BadDegree {
                        node: n.name,
                        detail: "start events take no incoming sequence flow",
                    });
                }
                if outs != 1 {
                    return Err(ModelError::BadDegree {
                        node: n.name,
                        detail: "start events need exactly one outgoing flow",
                    });
                }
            }
            NodeKind::End | NodeKind::MessageEnd { .. } => {
                if outs != 0 {
                    return Err(ModelError::BadDegree {
                        node: n.name,
                        detail: "end events take no outgoing sequence flow",
                    });
                }
                if ins == 0 {
                    return Err(ModelError::BadDegree {
                        node: n.name,
                        detail: "end events need at least one incoming flow",
                    });
                }
            }
            NodeKind::Task { .. } => {
                if ins == 0 || outs != 1 {
                    return Err(ModelError::BadDegree {
                        node: n.name,
                        detail: "tasks need incoming flow and exactly one outgoing flow",
                    });
                }
            }
            NodeKind::Xor | NodeKind::And => {
                let split = ins == 1 && outs >= 1;
                let join = ins >= 1 && outs == 1;
                if !(split || join) {
                    return Err(ModelError::BadDegree {
                        node: n.name,
                        detail: "gateways must be 1-in/n-out splits or n-in/1-out joins",
                    });
                }
            }
            NodeKind::Or { join } => {
                if ins != 1 || outs == 0 {
                    return Err(ModelError::BadDegree {
                        node: n.name,
                        detail: "OR splits need one incoming and at least one outgoing flow",
                    });
                }
                if outs > MAX_OR_FANOUT {
                    return Err(ModelError::OrFanoutTooLarge {
                        gateway: n.name,
                        fanout: outs,
                        max: MAX_OR_FANOUT,
                    });
                }
                if let Some(j) = join {
                    if j.0 >= model.nodes().len() {
                        return Err(ModelError::UnknownNode { id: j });
                    }
                    if !matches!(model.node(j).kind, NodeKind::OrJoin) {
                        return Err(ModelError::OrJoinPairingBroken {
                            split: n.name,
                            detail: "paired join is not an OR join",
                        });
                    }
                }
            }
            NodeKind::OrJoin => {
                if outs != 1 {
                    return Err(ModelError::BadDegree {
                        node: n.name,
                        detail: "OR joins need exactly one outgoing flow",
                    });
                }
            }
        }
    }

    // Reachability from plain start events over every control edge.
    let edges = control_edges(model);
    let mut reachable: HashSet<NodeId> = model
        .nodes()
        .iter()
        .filter(|n| matches!(n.kind, NodeKind::Start))
        .map(|n| n.id)
        .collect();
    let mut frontier: Vec<NodeId> = reachable.iter().copied().collect();
    while let Some(id) = frontier.pop() {
        for &(from, to) in &edges {
            if from == id && reachable.insert(to) {
                frontier.push(to);
            }
        }
    }
    for n in model.nodes() {
        if !reachable.contains(&n.id) {
            return Err(ModelError::Unreachable { node: n.name });
        }
    }

    // Well-foundedness (§5): every cycle must contain an observable
    // activity.
    crate::wellfounded::check_well_founded(model)?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProcessBuilder;

    #[test]
    fn duplicate_names_rejected() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("P");
        let s = b.start(p, "X");
        let t = b.task(p, "X");
        let e = b.end(p, "E");
        b.chain(&[s, t, e]);
        assert!(matches!(
            b.build(),
            Err(ModelError::DuplicateNodeName { .. })
        ));
    }

    #[test]
    fn missing_start_rejected() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("P");
        let t = b.task(p, "T");
        let e = b.end(p, "E");
        b.flow(t, e);
        assert!(matches!(b.build(), Err(ModelError::NoStartEvent)));
    }

    #[test]
    fn cross_pool_sequence_flow_rejected() {
        let mut b = ProcessBuilder::new("t");
        let p1 = b.pool("P1");
        let p2 = b.pool("P2");
        let s = b.start(p1, "S");
        let t = b.task(p2, "T");
        b.flow(s, t);
        assert!(matches!(
            b.build(),
            Err(ModelError::FlowCrossesPools { .. })
        ));
    }

    #[test]
    fn task_without_outgoing_rejected() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let t = b.task(p, "T");
        b.flow(s, t);
        assert!(matches!(b.build(), Err(ModelError::BadDegree { .. })));
    }

    #[test]
    fn unreachable_node_rejected() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let t = b.task(p, "T");
        let e = b.end(p, "E");
        b.chain(&[s, t, e]);
        let t2 = b.task(p, "Orphan");
        let e2 = b.end(p, "E2");
        b.flow(t2, e2);
        // Orphan has no incoming flow at all → degree error fires first; give
        // it one from another orphan start-like shape is impossible, so
        // check the reachability rule with a self-contained island instead.
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            ModelError::BadDegree { .. } | ModelError::Unreachable { .. }
        ));
    }

    #[test]
    fn message_target_must_receive_messages() {
        let mut b = ProcessBuilder::new("t");
        let p1 = b.pool("P1");
        let p2 = b.pool("P2");
        let s = b.start(p1, "S");
        let t = b.task(p1, "T");
        let bad_target = b.task(p2, "T2");
        let e = b.message_end(p1, "E", bad_target);
        let e2 = b.end(p2, "E2");
        b.chain(&[s, t, e]);
        b.flow(bad_target, e2);
        assert!(matches!(
            b.build(),
            Err(ModelError::BadMessageTarget { .. })
        ));
    }

    #[test]
    fn error_boundary_must_stay_in_pool() {
        let mut b = ProcessBuilder::new("t");
        let p1 = b.pool("P1");
        let p2 = b.pool("P2");
        let s = b.start(p1, "S");
        let h = b.task(p2, "H");
        let t = b.task_with_error(p1, "T", h);
        let e = b.end(p1, "E");
        let e2 = b.end(p2, "E2");
        b.chain(&[s, t, e]);
        b.flow(h, e2);
        assert!(matches!(
            b.build(),
            Err(ModelError::ErrorTargetOutsidePool { .. })
        ));
    }

    #[test]
    fn or_fanout_cap() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let g = b.or_split(p, "G");
        b.flow(s, g);
        for i in 0..(MAX_OR_FANOUT + 1) {
            let t = b.task(p, format!("T{i}").as_str());
            let e = b.end(p, format!("E{i}").as_str());
            b.flow(g, t);
            b.flow(t, e);
        }
        assert!(matches!(
            b.build(),
            Err(ModelError::OrFanoutTooLarge { .. })
        ));
    }

    #[test]
    fn well_formed_model_passes() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let g = b.xor(p, "G");
        let t1 = b.task(p, "T1");
        let t2 = b.task(p, "T2");
        let j = b.xor(p, "J");
        let e = b.end(p, "E");
        b.flow(s, g);
        b.flow(g, t1);
        b.flow(g, t2);
        b.flow(t1, j);
        b.flow(t2, j);
        b.flow(j, e);
        assert!(b.build().is_ok());
    }
}
