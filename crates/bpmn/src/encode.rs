//! Encoding BPMN into COWS (§3.3 and Appendix A of the paper).
//!
//! Every BPMN element becomes a distinct COWS service; the process is the
//! parallel composition of those services. The token game is rendered as
//! communications: element `m` hands the token to element `n` by invoking
//! `n`'s trigger endpoint `role(n)·name(n)`, which `n` receives.
//!
//! Conventions (matching the paper's examples):
//!
//! * task-start synchronizations `r·q` are the observable labels; every
//!   other endpoint uses either a gateway/event name (unobservable, since
//!   the operation is not a task) or the reserved partner `sys`;
//! * gateway decisions use `sys`-endpoints inside a `[sys]` delimiter with a
//!   `[k]`/`kill(k)`/`{|·|}` block, exactly as in Fig. 8;
//! * error boundaries raise the observable `sys·Err` (Fig. 9);
//! * message flows are communications across pools carrying a message name
//!   (Fig. 10);
//! * the invoke that hands the token onward from a task is annotated with
//!   `completes(task)` — the bookkeeping behind Def. 6's active tasks;
//! * OR-split/OR-join pairs synchronize through an unobservable count
//!   channel on the reserved partner `sysg` (the paper leaves the OR-join
//!   encoding unspecified; see `DESIGN.md` §2).

use crate::model::{NodeId, NodeKind, ProcessModel};
use cows::automaton::snapshot::{hash_service, MergeReport, SnapshotError, StableHasher};
use cows::automaton::ProcessAutomaton;
use cows::observe::{err_op, sys_partner, TaskObservability};
use cows::symbol::{sym, Symbol};
use cows::term::{
    delim, delim_killer, delim_var, ep, invoke, invoke_args, par, protect, repl, request,
    request_params, Decl, Endpoint, Invoke, Service, Word,
};
use cows::weaknext::Marked;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The reserved partner for cross-scope bookkeeping (OR-join counts). Like
/// `sys` it is never a role, so its labels are unobservable; unlike `sys` it
/// is not delimited, because the count must travel between two services.
pub fn sysg_partner() -> Symbol {
    sym("sysg")
}

/// A BPMN process encoded as a COWS service.
#[derive(Clone, Debug)]
pub struct Encoded {
    /// The parallel composition of all element services.
    pub service: Service,
    /// The paper's observability for this process: pool roles × task names,
    /// plus `sys·Err`.
    pub observability: TaskObservability,
    /// The process's lazily compiled observable-step automaton, shared by
    /// every replay of this encoding (clones of `Encoded` share it too).
    /// The §7 parallel workers warm it for each other: once any case has
    /// expanded a state, every later case walks cached `u32` edges.
    pub automaton: Arc<ProcessAutomaton>,
}

/// Extension of the snapshot files written next to process definitions.
pub const SNAPSHOT_EXT: &str = "pcas";

impl Encoded {
    /// The initial marked state for [`cows::weaknext`] / Algorithm 1.
    pub fn initial(&self) -> Marked {
        Marked::initial(&self.service)
    }

    /// The content key binding automaton snapshots to this encoding: a
    /// stable hash over the (un-normalized) process term and the
    /// observability alphabet, computed from symbol *strings* so it is
    /// identical across runs and machines. Any change to the process
    /// definition or its roles/tasks changes the key, and the stale
    /// snapshot self-invalidates on load.
    pub fn snapshot_key(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("purposectl-automaton-v1");
        hash_service(&mut h, &self.service);
        let mut roles: Vec<&str> = self.observability.roles().map(|s| s.as_str()).collect();
        roles.sort_unstable();
        h.write_u32(roles.len() as u32);
        for r in roles {
            h.write_str(r);
        }
        let mut tasks: Vec<&str> = self.observability.tasks().map(|s| s.as_str()).collect();
        tasks.sort_unstable();
        h.write_u32(tasks.len() as u32);
        for t in tasks {
            h.write_str(t);
        }
        h.finish()
    }

    /// Serialize the automaton's current compilation, keyed to this
    /// encoding.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.automaton.to_snapshot_bytes(self.snapshot_key())
    }

    /// Fail-open in-memory load: merge snapshot bytes into this encoding's
    /// automaton if (and only if) they validate against [`Self::snapshot_key`].
    pub fn load_snapshot_bytes(&self, bytes: &[u8]) -> Result<MergeReport, SnapshotError> {
        self.automaton
            .load_snapshot_bytes(bytes, self.snapshot_key())
    }

    /// Fail-open load from `path`. Missing or unreadable files, stale keys,
    /// corruption — every failure leaves the automaton cold and reports why.
    pub fn load_snapshot(&self, path: &Path) -> Result<MergeReport, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        self.load_snapshot_bytes(&bytes)
    }

    /// Write the automaton's current compilation to `path` crash-atomically:
    /// temp file, fsync, rename, parent-directory fsync. Readers never
    /// observe a half-written snapshot, and a power cut right after return
    /// cannot lose the rename — a torn write at worst costs a cold start,
    /// never a wrong verdict.
    pub fn save_snapshot(&self, path: &Path) -> Result<(), SnapshotError> {
        use std::io::Write as _;
        let io_err = |e: std::io::Error| SnapshotError::Io(e.to_string());
        let bytes = self.snapshot_bytes();
        let tmp = path.with_extension(format!("{SNAPSHOT_EXT}.tmp"));
        let write_synced = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()
        })();
        write_synced.map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            io_err(e)
        })?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            io_err(e)
        })?;
        // Persist the directory entry too; without this the rename itself
        // can vanish in a crash. Directories may refuse fsync on some
        // filesystems — that costs durability, not correctness.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(handle) = std::fs::File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(())
    }

    /// The conventional snapshot path for a process definition file:
    /// `<file name>.pcas` in `cache_dir` if given, else beside the process
    /// file.
    pub fn snapshot_path(process_file: &Path, cache_dir: Option<&Path>) -> PathBuf {
        let name = process_file
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "process".to_string());
        let dir = cache_dir.map(Path::to_path_buf).unwrap_or_else(|| {
            process_file
                .parent()
                .unwrap_or(Path::new("."))
                .to_path_buf()
        });
        dir.join(format!("{name}.{SNAPSHOT_EXT}"))
    }
}

/// Encode `model` into COWS.
///
/// `model` must have passed validation (guaranteed when built through
/// [`crate::model::ProcessBuilder::build`]).
pub fn encode(model: &ProcessModel) -> Encoded {
    let enc = Encoder { model };
    let mut services: Vec<Service> = Vec::with_capacity(model.nodes().len());
    for node in model.nodes() {
        services.push(enc.encode_node(node.id));
    }
    let observability = TaskObservability::with(
        model.pools().iter().map(|p| p.role),
        model.tasks().map(|t| t.name),
    );
    Encoded {
        service: par(services),
        observability,
        automaton: Arc::new(ProcessAutomaton::new()),
    }
}

struct Encoder<'m> {
    model: &'m ProcessModel,
}

impl Encoder<'_> {
    /// Trigger endpoint of a node: `role(n)·name(n)`.
    fn endpoint(&self, id: NodeId) -> Endpoint {
        ep(self.model.role_of(id), self.model.node(id).name)
    }

    /// The invoke that hands the token to `to`. When the token leaves a
    /// task, the invoke is annotated as completing it.
    fn trigger(&self, to: NodeId, completes: Option<NodeId>) -> Service {
        Service::Invoke(Invoke {
            ep: self.endpoint(to),
            args: Vec::new(),
            completes: completes.into_iter().map(|t| self.endpoint(t)).collect(),
        })
    }

    /// The single sequence-flow successor of a node (validated shape).
    fn only_successor(&self, id: NodeId) -> NodeId {
        let succ = self.model.successors(id);
        debug_assert_eq!(succ.len(), 1, "validated nodes have one successor");
        succ[0]
    }

    fn encode_node(&self, id: NodeId) -> Service {
        let node = self.model.node(id);
        match node.kind {
            NodeKind::Start => {
                // [[S]] = x·y!⟨⟩ — fires once.
                self.trigger(self.only_successor(id), None)
            }
            NodeKind::MessageStart => {
                // [[S]] = ∗ [z] p·S?⟨z⟩. trigger(succ)  (Fig. 10)
                let z = sym(&format!("z_{}", node.name));
                let succ = self.only_successor(id);
                repl(delim_var(
                    z,
                    request_params(
                        self.endpoint(id),
                        vec![Word::Var(z)],
                        self.trigger(succ, None),
                    ),
                ))
            }
            NodeKind::End => {
                // [[E]] = ∗ p·E?⟨⟩.
                repl(request(self.endpoint(id), Service::Nil))
            }
            NodeKind::MessageEnd { to } => {
                // [[E]] = ∗ p·E?⟨⟩. q·S!⟨msg⟩  (Fig. 10); a message into an
                // OR join is a plain token.
                let body = match self.model.node(to).kind {
                    NodeKind::MessageStart => {
                        let msg = sym(&format!("msg_{}", node.name));
                        invoke_args(self.endpoint(to), vec![Word::Name(msg)])
                    }
                    _ => invoke(self.endpoint(to)),
                };
                repl(request(self.endpoint(id), body))
            }
            NodeKind::Task { on_error } => self.encode_task(id, on_error),
            NodeKind::Xor => self.encode_xor(id),
            NodeKind::And => self.encode_and(id),
            NodeKind::Or { join } => self.encode_or_split(id, join),
            NodeKind::OrJoin => self.encode_or_join(id),
        }
    }

    fn encode_task(&self, id: NodeId, on_error: Option<NodeId>) -> Service {
        let succ = self.only_successor(id);
        let body = match on_error {
            None => {
                // [[T]] = ∗ r·T?⟨⟩. trigger(succ) — the trigger completes T.
                self.trigger(succ, Some(id))
            }
            Some(handler) => {
                // Fig. 9: after starting, the task internally either
                // proceeds (τ on sys·ok_T) or fails (observable sys·Err,
                // which also completes the task — §3.4: "the failure of a
                // task makes the task completed").
                let k = sym(&format!("k_{}", self.model.node(id).name));
                let ok = ep(
                    sys_partner(),
                    sym(&format!("ok_{}", self.model.node(id).name)),
                );
                let err = ep(sys_partner(), err_op());
                let err_invoke = Service::Invoke(Invoke {
                    ep: err,
                    args: Vec::new(),
                    completes: vec![self.endpoint(id)],
                });
                delim_killer(
                    k,
                    delim(
                        Decl::Name(sys_partner()),
                        par(vec![
                            invoke(ok),
                            err_invoke,
                            request(
                                ok,
                                par(vec![
                                    Service::Kill(k),
                                    protect(self.trigger(succ, Some(id))),
                                ]),
                            ),
                            request(
                                err,
                                par(vec![Service::Kill(k), protect(self.trigger(handler, None))]),
                            ),
                        ]),
                    ),
                )
            }
        };
        repl(request(self.endpoint(id), body))
    }

    fn encode_xor(&self, id: NodeId) -> Service {
        let succs = self.model.successors(id);
        let body = if succs.len() == 1 {
            // Join / pass-through merge.
            self.trigger(succs[0], None)
        } else {
            // Split (Fig. 8): internal choice followed by a kill of the
            // alternatives.
            let gate = self.model.node(id).name;
            let k = sym(&format!("k_{gate}"));
            let mut parts: Vec<Service> = Vec::with_capacity(succs.len() * 2);
            for &s in &succs {
                let pick = ep(
                    sys_partner(),
                    sym(&format!("{gate}_{}", self.model.node(s).name)),
                );
                parts.push(invoke(pick));
                parts.push(request(
                    pick,
                    par(vec![Service::Kill(k), protect(self.trigger(s, None))]),
                ));
            }
            delim_killer(k, delim(Decl::Name(sys_partner()), par(parts)))
        };
        repl(request(self.endpoint(id), body))
    }

    fn encode_and(&self, id: NodeId) -> Service {
        let succs = self.model.successors(id);
        let preds = self.model.predecessors(id);
        let body = if succs.len() > 1 {
            // Split: fork the token to every branch.
            par(succs.iter().map(|&s| self.trigger(s, None)).collect())
        } else {
            // Join: collect one token per incoming flow (the outer request
            // below consumes the first), then pass on.
            let mut inner = self.trigger(succs[0], None);
            for _ in 1..preds.len() {
                inner = request(self.endpoint(id), inner);
            }
            inner
        };
        repl(request(self.endpoint(id), body))
    }

    fn encode_or_split(&self, id: NodeId, join: Option<NodeId>) -> Service {
        let succs = self.model.successors(id);
        let gate = self.model.node(id).name;
        let k = sym(&format!("k_{gate}"));
        // One alternative per non-empty subset of the outgoing branches.
        let subset_count: usize = (1usize << succs.len()) - 1;
        let mut parts: Vec<Service> = Vec::with_capacity(subset_count * 2);
        for mask in 1..=subset_count {
            let pick = ep(sys_partner(), sym(&format!("{gate}_c{mask}")));
            let mut fired: Vec<Service> = Vec::new();
            let mut chosen = 0usize;
            for (i, &s) in succs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    fired.push(self.trigger(s, None));
                    chosen += 1;
                }
            }
            let cont = match join {
                // Tell the paired join how many tokens to expect, and wait
                // for its acknowledgment before releasing the branch tokens
                // (the handshake keeps the count delivery out of the
                // observable interleaving, so WeakNext state counts match
                // the paper's Fig. 6).
                Some(j) => par(vec![
                    invoke(self.count_endpoint(j, id, chosen)),
                    request(self.ack_endpoint(id), par(fired)),
                ]),
                None => par(fired),
            };
            parts.push(invoke(pick));
            parts.push(request(pick, par(vec![Service::Kill(k), protect(cont)])));
        }
        let body = delim_killer(k, delim(Decl::Name(sys_partner()), par(parts)));
        repl(request(self.endpoint(id), body))
    }

    /// The channel on which an OR split announces the number of activated
    /// branches to its paired join.
    fn count_endpoint(&self, join: NodeId, split: NodeId, count: usize) -> Endpoint {
        ep(
            sysg_partner(),
            sym(&format!(
                "{}_{}_cnt{count}",
                self.model.node(join).name,
                self.model.node(split).name
            )),
        )
    }

    /// The channel on which a join acknowledges a count announcement,
    /// releasing the split's branch tokens.
    fn ack_endpoint(&self, split: NodeId) -> Endpoint {
        ep(
            sysg_partner(),
            sym(&format!("ack_{}", self.model.node(split).name)),
        )
    }

    fn encode_or_join(&self, id: NodeId) -> Service {
        let succ = self.only_successor(id);
        // The OR splits paired with this join.
        let splits: Vec<NodeId> = self
            .model
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Or { join: Some(j) } if j == id))
            .map(|n| n.id)
            .collect();
        if splits.is_empty() {
            // Degrades to a pass-through merge.
            return repl(request(self.endpoint(id), self.trigger(succ, None)));
        }
        // ∗ Σ_{split,c}  sysg·J_split_cnt{c}?⟨⟩.( sysg·ack_split!⟨⟩ | (J?⟨⟩)^c. trigger(succ) )
        let mut branches = Vec::new();
        for &split in &splits {
            let fanout = self.model.successors(split).len();
            for c in 1..=fanout {
                let mut inner = self.trigger(succ, None);
                for _ in 0..c {
                    inner = request(self.endpoint(id), inner);
                }
                branches.push(cows::term::Request {
                    ep: self.count_endpoint(id, split, c),
                    params: Vec::new(),
                    cont: par(vec![invoke(self.ack_endpoint(split)), inner]).into(),
                });
            }
        }
        repl(cows::term::choice(branches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ProcessBuilder;
    use cows::lts::{explore, ExploreLimits};
    use cows::observe::{Observability, Observation};
    use cows::weaknext::{weak_next, WeakNextLimits};

    fn obs_strings(encoded: &Encoded, from: &Marked) -> Vec<String> {
        weak_next(from, &encoded.observability, WeakNextLimits::default())
            .unwrap()
            .iter()
            .map(|w| w.observation.to_string())
            .collect()
    }

    /// Fig. 7: S → T → E has LTS St1 → St2 → St3.
    #[test]
    fn fig7_sequence() {
        let mut b = ProcessBuilder::new("fig7");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let t = b.task(p, "T");
        let e = b.end(p, "E");
        b.chain(&[s, t, e]);
        let enc = encode(&b.build().unwrap());
        let lts = explore(&enc.service, ExploreLimits::default()).unwrap();
        assert_eq!(lts.state_count(), 3);
        assert_eq!(lts.edge_count(), 2);
    }

    /// Fig. 8: XOR split — exactly one of T1/T2 runs; both reach the same
    /// end-state count.
    #[test]
    fn fig8_exclusive_gateway() {
        let mut b = ProcessBuilder::new("fig8");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let t = b.task(p, "T");
        let g = b.xor(p, "G");
        let t1 = b.task(p, "T1");
        let t2 = b.task(p, "T2");
        let e1 = b.end(p, "E1");
        let e2 = b.end(p, "E2");
        b.chain(&[s, t, g]);
        b.flow(g, t1);
        b.flow(g, t2);
        b.flow(t1, e1);
        b.flow(t2, e2);
        let enc = encode(&b.build().unwrap());

        let m0 = enc.initial();
        // First observable: T.
        let succ = obs_strings(&enc, &m0);
        assert_eq!(succ, vec!["P.T"]);
        // After T: either T1 or T2 — never both in one run.
        let after_t = weak_next(&m0, &enc.observability, WeakNextLimits::default()).unwrap();
        let next = obs_strings(&enc, &after_t[0].state);
        assert_eq!(next, vec!["P.T1", "P.T2"]);
        let branches = weak_next(
            &after_t[0].state,
            &enc.observability,
            WeakNextLimits::default(),
        )
        .unwrap();
        for b in &branches {
            // After committing to one branch, the other is gone.
            assert!(obs_strings(&enc, &b.state).is_empty());
        }
    }

    /// Fig. 9: a task with an error boundary offers both the normal
    /// continuation and sys·Err.
    #[test]
    fn fig9_error_event() {
        let mut b = ProcessBuilder::new("fig9");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let t1 = b.task(p, "T1"); // error handler
        let t2 = b.task(p, "T2"); // normal continuation
        let e1 = b.end(p, "E1");
        let e2 = b.end(p, "E2");
        let t = b.task_with_error(p, "T", t1);
        b.flow(s, t);
        b.flow(t, t2);
        b.flow(t1, e1);
        b.flow(t2, e2);
        let enc = encode(&b.build().unwrap());

        let m0 = enc.initial();
        let after_t = weak_next(&m0, &enc.observability, WeakNextLimits::default()).unwrap();
        assert_eq!(after_t.len(), 1);
        assert_eq!(after_t[0].observation.to_string(), "P.T");
        // From the running task: the two paths of Fig. 9(c) — the normal
        // continuation (via the unobservable sys·T2-style choice) or the
        // observable error.
        let next = obs_strings(&enc, &after_t[0].state);
        assert_eq!(next, vec!["P.T2", "sys.Err"]);
        // The error completes T: after sys·Err nothing is running, and the
        // handler T1 is the next observable activity.
        let err_succ = weak_next(
            &after_t[0].state,
            &enc.observability,
            WeakNextLimits::default(),
        )
        .unwrap();
        let err_state = err_succ
            .iter()
            .find(|w| w.observation == Observation::Error)
            .unwrap();
        assert!(err_state.state.running.is_empty());
        assert_eq!(obs_strings(&enc, &err_state.state), vec!["P.T1"]);
    }

    /// Fig. 10: message flow between two pools, with a cycle.
    #[test]
    fn fig10_message_flow_cycle() {
        let mut b = ProcessBuilder::new("fig10");
        let p1 = b.pool("P1");
        let p2 = b.pool("P2");
        let s1 = b.start(p1, "S1");
        let s2 = b.message_start(p1, "S2");
        let t1 = b.task(p1, "T1");
        let s3 = b.message_start(p2, "S3");
        let t2 = b.task(p2, "T2");
        let e1 = b.message_end(p1, "E1", s3);
        let e2 = b.message_end(p2, "E2", s2);
        b.flow(s1, t1);
        b.flow(s2, t1);
        b.flow(t1, e1);
        b.flow(s3, t2);
        b.flow(t2, e2);
        let enc = encode(&b.build().unwrap());

        // The observable behaviour cycles T1, T2, T1, T2, …
        let mut m = enc.initial();
        for expected in ["P1.T1", "P2.T2", "P1.T1", "P2.T2"] {
            let succ = weak_next(&m, &enc.observability, WeakNextLimits::default()).unwrap();
            assert_eq!(succ.len(), 1);
            assert_eq!(succ[0].observation.to_string(), expected);
            m = succ[0].state.clone();
        }
        // And the LTS itself is finite (canonical forms close the cycle).
        let lts = explore(&enc.service, ExploreLimits::default()).unwrap();
        assert!(lts.state_count() <= 8, "got {}", lts.state_count());
    }

    /// AND split/join: both tasks run (in either order), join waits for both.
    #[test]
    fn and_gateway_fork_join() {
        let mut b = ProcessBuilder::new("and");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let f = b.and(p, "F");
        let t1 = b.task(p, "T1");
        let t2 = b.task(p, "T2");
        let j = b.and(p, "J");
        let t3 = b.task(p, "T3");
        let e = b.end(p, "E");
        b.flow(s, f);
        b.flow(f, t1);
        b.flow(f, t2);
        b.flow(t1, j);
        b.flow(t2, j);
        b.flow(j, t3);
        b.flow(t3, e);
        let enc = encode(&b.build().unwrap());

        let m0 = enc.initial();
        let first = weak_next(&m0, &enc.observability, WeakNextLimits::default()).unwrap();
        let names: Vec<String> = first.iter().map(|w| w.observation.to_string()).collect();
        assert_eq!(names, vec!["P.T1", "P.T2"]);
        // Take T1 then T2; only then T3 becomes available. (Several states
        // may share the observation — the interleaving of T1's hand-over to
        // the join with T2's start — exactly the St11/St12 phenomenon of
        // Fig. 6.)
        let after1 = &first[0].state;
        let second = weak_next(after1, &enc.observability, WeakNextLimits::default()).unwrap();
        let names2: std::collections::BTreeSet<String> =
            second.iter().map(|w| w.observation.to_string()).collect();
        assert_eq!(
            names2,
            std::collections::BTreeSet::from(["P.T2".to_string()]),
            "join must wait for both tokens"
        );
        // Pick the state where T1 has already handed its token to the join.
        let third_names: std::collections::BTreeSet<String> = second
            .iter()
            .flat_map(|w| {
                weak_next(&w.state, &enc.observability, WeakNextLimits::default()).unwrap()
            })
            .map(|x| x.observation.to_string())
            .collect();
        assert_eq!(
            third_names,
            std::collections::BTreeSet::from(["P.T3".to_string()])
        );
    }

    /// OR split/join: one, the other, or both branches; the join
    /// synchronizes exactly the activated set.
    #[test]
    fn or_gateway_inclusive_choice() {
        let mut b = ProcessBuilder::new("or");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let g = b.or_split(p, "G");
        let t1 = b.task(p, "T1");
        let t2 = b.task(p, "T2");
        let j = b.or_join(p, "J");
        let t3 = b.task(p, "T3");
        let e = b.end(p, "E");
        b.pair_or(g, j);
        b.flow(s, g);
        b.flow(g, t1);
        b.flow(g, t2);
        b.flow(t1, j);
        b.flow(t2, j);
        b.flow(j, t3);
        b.flow(t3, e);
        let enc = encode(&b.build().unwrap());

        let m0 = enc.initial();
        let first = weak_next(&m0, &enc.observability, WeakNextLimits::default()).unwrap();
        // Reachable one observable step away: T1 (alone or with T2 pending)
        // and T2 (alone or with T1 pending) — 4 states, 2 observations,
        // mirroring the paper's St9–St12 discussion.
        assert_eq!(first.len(), 4);
        let names: std::collections::BTreeSet<String> =
            first.iter().map(|w| w.observation.to_string()).collect();
        assert_eq!(
            names,
            std::collections::BTreeSet::from(["P.T1".to_string(), "P.T2".to_string()])
        );

        for w in &first {
            let next = weak_next(&w.state, &enc.observability, WeakNextLimits::default()).unwrap();
            let nn: std::collections::BTreeSet<String> =
                next.iter().map(|x| x.observation.to_string()).collect();
            // Either the branch was alone (join fires, T3 next) or the other
            // branch is still pending.
            assert!(
                nn == std::collections::BTreeSet::from(["P.T3".to_string()])
                    || nn.contains("P.T1")
                    || nn.contains("P.T2"),
                "unexpected successors {nn:?}"
            );
        }
    }

    #[test]
    fn snapshot_key_is_stable_per_process_and_distinct_across_processes() {
        let build = |task: &str| {
            let mut b = ProcessBuilder::new("keyed");
            let p = b.pool("P");
            let s = b.start(p, "S");
            let t = b.task(p, task);
            let e = b.end(p, "E");
            b.chain(&[s, t, e]);
            encode(&b.build().unwrap())
        };
        let a1 = build("T");
        let a2 = build("T");
        let b = build("U");
        assert_eq!(a1.snapshot_key(), a2.snapshot_key());
        assert_ne!(a1.snapshot_key(), b.snapshot_key());
        // A snapshot of one process never loads into the other.
        let bytes = a1.snapshot_bytes();
        assert!(a2.load_snapshot_bytes(&bytes).is_ok());
        assert!(matches!(
            b.load_snapshot_bytes(&bytes),
            Err(cows::SnapshotError::KeyMismatch { .. })
        ));
    }

    #[test]
    fn snapshot_path_convention() {
        use std::path::Path;
        assert_eq!(
            Encoded::snapshot_path(Path::new("/tmp/procs/care.toml"), None),
            Path::new("/tmp/procs/care.toml.pcas")
        );
        assert_eq!(
            Encoded::snapshot_path(
                Path::new("/tmp/procs/care.toml"),
                Some(Path::new("/var/cache"))
            ),
            Path::new("/var/cache/care.toml.pcas")
        );
    }

    #[test]
    fn observability_covers_tasks_and_roles() {
        let mut b = ProcessBuilder::new("obs");
        let p = b.pool("GP");
        let s = b.start(p, "S");
        let t = b.task(p, "T01");
        let e = b.end(p, "E");
        b.chain(&[s, t, e]);
        let enc = encode(&b.build().unwrap());
        let l = cows::label::Label::Comm {
            ep: ep("GP", "T01"),
            args: vec![],
            completes: vec![],
        };
        assert!(enc.observability.observe(&l).is_some());
    }
}
