//! BPMN process models.
//!
//! A [`ProcessModel`] is the core set of BPMN 1.2 elements used by the paper
//! (§3.3, Figs. 1, 2, 7–10): pools, start/end events (plain and message),
//! tasks with optional error boundary events, exclusive (XOR), parallel
//! (AND) and inclusive (OR) gateways, sequence flows and message flows.
//!
//! Models are built through [`ProcessBuilder`] and checked by
//! [`crate::validate`] before they can be encoded into COWS.

use cows::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node within its [`ProcessModel`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Index of a pool within its [`ProcessModel`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PoolId(pub usize);

/// A BPMN pool: "every BPMN pool corresponds to a role in R" (§3.1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool {
    pub role: Symbol,
}

/// The kind of a BPMN element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Plain start event: fires once, unprompted.
    Start,
    /// Message start event: fires each time a message arrives.
    MessageStart,
    /// Plain end event.
    End,
    /// Message end event: sends a message to `to` (a [`NodeKind::MessageStart`]
    /// or [`NodeKind::OrJoin`], possibly in another pool) on completion.
    MessageEnd { to: NodeId },
    /// A task. `on_error` is the target of an attached error boundary
    /// event: when the task fails, an observable `sys·Err` is raised and
    /// the token flows to `on_error` (Fig. 9).
    Task { on_error: Option<NodeId> },
    /// Exclusive (XOR) gateway: split (one outgoing path chosen) or join
    /// (pass-through merge).
    Xor,
    /// Parallel (AND) gateway: split (all outgoing paths) or join (waits
    /// for every incoming token).
    And,
    /// Inclusive (OR) gateway split: one or more outgoing paths chosen.
    /// `join` optionally names the [`NodeKind::OrJoin`] that synchronizes
    /// the chosen branches; the encoding forwards the number of activated
    /// branches to it.
    Or { join: Option<NodeId> },
    /// Inclusive (OR) join: waits for as many tokens as its paired
    /// [`NodeKind::Or`] split activated. Without a paired split it degrades
    /// to a pass-through merge.
    OrJoin,
}

impl NodeKind {
    pub fn is_task(&self) -> bool {
        matches!(self, NodeKind::Task { .. })
    }

    pub fn is_gateway(&self) -> bool {
        matches!(
            self,
            NodeKind::Xor | NodeKind::And | NodeKind::Or { .. } | NodeKind::OrJoin
        )
    }

    pub fn is_start(&self) -> bool {
        matches!(self, NodeKind::Start | NodeKind::MessageStart)
    }

    pub fn is_end(&self) -> bool {
        matches!(self, NodeKind::End | NodeKind::MessageEnd { .. })
    }
}

/// A BPMN element.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub name: Symbol,
    pub pool: PoolId,
    pub kind: NodeKind,
}

/// A sequence flow `from → to` (within a pool).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceFlow {
    pub from: NodeId,
    pub to: NodeId,
}

/// A validated BPMN process model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcessModel {
    name: Symbol,
    pools: Vec<Pool>,
    nodes: Vec<Node>,
    flows: Vec<SequenceFlow>,
}

impl ProcessModel {
    pub fn name(&self) -> Symbol {
        self.name
    }

    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn flows(&self) -> &[SequenceFlow] {
        &self.flows
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    pub fn pool(&self, id: PoolId) -> &Pool {
        &self.pools[id.0]
    }

    /// The role of the pool containing `id`.
    pub fn role_of(&self, id: NodeId) -> Symbol {
        self.pools[self.node(id).pool.0].role
    }

    /// Outgoing sequence-flow targets of `id`, in insertion order.
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.flows
            .iter()
            .filter(|f| f.from == id)
            .map(|f| f.to)
            .collect()
    }

    /// Incoming sequence-flow sources of `id`, in insertion order.
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        self.flows
            .iter()
            .filter(|f| f.to == id)
            .map(|f| f.from)
            .collect()
    }

    /// All task nodes.
    pub fn tasks(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind.is_task())
    }

    /// Role responsible for a task name, if the task exists.
    pub fn task_role(&self, task: Symbol) -> Option<Symbol> {
        self.nodes
            .iter()
            .find(|n| n.kind.is_task() && n.name == task)
            .map(|n| self.role_of(n.id))
    }

    /// Find a node by name.
    pub fn node_by_name(&self, name: Symbol) -> Option<&Node> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Whether any task carries an error boundary event.
    pub fn has_error_boundaries(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n.kind, NodeKind::Task { on_error: Some(_) }))
    }
}

/// Errors raised when assembling or validating a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    DuplicateNodeName {
        name: Symbol,
    },
    UnknownNode {
        id: NodeId,
    },
    NoStartEvent,
    FlowCrossesPools {
        from: Symbol,
        to: Symbol,
    },
    BadDegree {
        node: Symbol,
        detail: &'static str,
    },
    BadMessageTarget {
        from: Symbol,
        to: Symbol,
    },
    ErrorTargetOutsidePool {
        task: Symbol,
        target: Symbol,
    },
    OrJoinPairingBroken {
        split: Symbol,
        detail: &'static str,
    },
    Unreachable {
        node: Symbol,
    },
    NotWellFounded {
        cycle: Vec<Symbol>,
    },
    OrFanoutTooLarge {
        gateway: Symbol,
        fanout: usize,
        max: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateNodeName { name } => {
                write!(f, "duplicate node name `{name}`")
            }
            ModelError::UnknownNode { id } => write!(f, "unknown node id {id:?}"),
            ModelError::NoStartEvent => write!(f, "the process has no start event"),
            ModelError::FlowCrossesPools { from, to } => write!(
                f,
                "sequence flow `{from}` → `{to}` crosses pools; use a message flow"
            ),
            ModelError::BadDegree { node, detail } => {
                write!(f, "node `{node}`: {detail}")
            }
            ModelError::BadMessageTarget { from, to } => write!(
                f,
                "message end `{from}` targets `{to}`, which is neither a message start nor an OR join"
            ),
            ModelError::ErrorTargetOutsidePool { task, target } => write!(
                f,
                "error boundary of task `{task}` targets `{target}` in a different pool"
            ),
            ModelError::OrJoinPairingBroken { split, detail } => {
                write!(f, "OR split `{split}`: {detail}")
            }
            ModelError::Unreachable { node } => {
                write!(f, "node `{node}` is unreachable from every start event")
            }
            ModelError::NotWellFounded { cycle } => {
                write!(f, "process is not well-founded; task-free cycle: ")?;
                for (i, n) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " → ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
            ModelError::OrFanoutTooLarge { gateway, fanout, max } => write!(
                f,
                "OR gateway `{gateway}` has fan-out {fanout}, above the supported maximum {max}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// Incremental builder for [`ProcessModel`].
///
/// ```
/// use bpmn::model::ProcessBuilder;
///
/// let mut b = ProcessBuilder::new("demo");
/// let p = b.pool("P");
/// let s = b.start(p, "S");
/// let t = b.task(p, "T");
/// let e = b.end(p, "E");
/// b.flow(s, t);
/// b.flow(t, e);
/// let model = b.build().unwrap();
/// assert_eq!(model.tasks().count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ProcessBuilder {
    name: Option<Symbol>,
    pools: Vec<Pool>,
    nodes: Vec<Node>,
    flows: Vec<SequenceFlow>,
}

impl ProcessBuilder {
    pub fn new(name: impl Into<Symbol>) -> ProcessBuilder {
        ProcessBuilder {
            name: Some(name.into()),
            ..ProcessBuilder::default()
        }
    }

    pub fn pool(&mut self, role: impl Into<Symbol>) -> PoolId {
        let id = PoolId(self.pools.len());
        self.pools.push(Pool { role: role.into() });
        id
    }

    fn add(&mut self, pool: PoolId, name: impl Into<Symbol>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            name: name.into(),
            pool,
            kind,
        });
        id
    }

    pub fn start(&mut self, pool: PoolId, name: impl Into<Symbol>) -> NodeId {
        self.add(pool, name, NodeKind::Start)
    }

    pub fn message_start(&mut self, pool: PoolId, name: impl Into<Symbol>) -> NodeId {
        self.add(pool, name, NodeKind::MessageStart)
    }

    pub fn end(&mut self, pool: PoolId, name: impl Into<Symbol>) -> NodeId {
        self.add(pool, name, NodeKind::End)
    }

    /// Message end sending to `to` on completion; `to` must be a message
    /// start or an OR join (checked at [`ProcessBuilder::build`]).
    pub fn message_end(&mut self, pool: PoolId, name: impl Into<Symbol>, to: NodeId) -> NodeId {
        self.add(pool, name, NodeKind::MessageEnd { to })
    }

    pub fn task(&mut self, pool: PoolId, name: impl Into<Symbol>) -> NodeId {
        self.add(pool, name, NodeKind::Task { on_error: None })
    }

    /// A task with an attached error boundary event routing failures to
    /// `on_error`.
    pub fn task_with_error(
        &mut self,
        pool: PoolId,
        name: impl Into<Symbol>,
        on_error: NodeId,
    ) -> NodeId {
        self.add(
            pool,
            name,
            NodeKind::Task {
                on_error: Some(on_error),
            },
        )
    }

    /// Re-target an existing message end — used by the text parser to
    /// resolve forward references.
    pub fn set_message_target(&mut self, message_end: NodeId, to: NodeId) {
        if let Some(node) = self.nodes.get_mut(message_end.0) {
            if let NodeKind::MessageEnd { to: slot } = &mut node.kind {
                *slot = to;
            }
        }
    }

    /// Attach (or replace) an error boundary on an existing task — useful
    /// when the handler node is created after the task.
    pub fn set_error_boundary(&mut self, task: NodeId, on_error: NodeId) {
        if let Some(node) = self.nodes.get_mut(task.0) {
            if let NodeKind::Task { on_error: slot } = &mut node.kind {
                *slot = Some(on_error);
            }
        }
    }

    pub fn xor(&mut self, pool: PoolId, name: impl Into<Symbol>) -> NodeId {
        self.add(pool, name, NodeKind::Xor)
    }

    pub fn and(&mut self, pool: PoolId, name: impl Into<Symbol>) -> NodeId {
        self.add(pool, name, NodeKind::And)
    }

    pub fn or_split(&mut self, pool: PoolId, name: impl Into<Symbol>) -> NodeId {
        self.add(pool, name, NodeKind::Or { join: None })
    }

    pub fn or_join(&mut self, pool: PoolId, name: impl Into<Symbol>) -> NodeId {
        self.add(pool, name, NodeKind::OrJoin)
    }

    /// Pair an OR split with its join so the encoding can synchronize the
    /// activated branches.
    pub fn pair_or(&mut self, split: NodeId, join: NodeId) {
        if let Some(node) = self.nodes.get_mut(split.0) {
            if let NodeKind::Or { join: slot } = &mut node.kind {
                *slot = Some(join);
            }
        }
    }

    pub fn flow(&mut self, from: NodeId, to: NodeId) {
        self.flows.push(SequenceFlow { from, to });
    }

    /// Chain a sequence of nodes with flows.
    pub fn chain(&mut self, nodes: &[NodeId]) {
        for w in nodes.windows(2) {
            self.flow(w[0], w[1]);
        }
    }

    /// Validate and freeze the model. See [`crate::validate`] for the rules.
    pub fn build(self) -> Result<ProcessModel, ModelError> {
        let model = ProcessModel {
            name: self.name.unwrap_or_else(|| Symbol::new("unnamed")),
            pools: self.pools,
            nodes: self.nodes,
            flows: self.flows,
        };
        crate::validate::validate(&model)?;
        Ok(model)
    }

    /// Freeze without validation — for tests that need to construct broken
    /// models on purpose.
    pub fn build_unchecked(self) -> ProcessModel {
        ProcessModel {
            name: self.name.unwrap_or_else(|| Symbol::new("unnamed")),
            pools: self.pools,
            nodes: self.nodes,
            flows: self.flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let t = b.task(p, "T");
        assert_eq!(s, NodeId(0));
        assert_eq!(t, NodeId(1));
    }

    #[test]
    fn successors_and_predecessors() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let t = b.task(p, "T");
        let e = b.end(p, "E");
        b.chain(&[s, t, e]);
        let m = b.build().unwrap();
        assert_eq!(m.successors(s), vec![t]);
        assert_eq!(m.successors(t), vec![e]);
        assert_eq!(m.predecessors(e), vec![t]);
        assert!(m.successors(e).is_empty());
    }

    #[test]
    fn task_role_lookup() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("GP");
        let s = b.start(p, "S");
        let t = b.task(p, "T01");
        let e = b.end(p, "E");
        b.chain(&[s, t, e]);
        let m = b.build().unwrap();
        assert_eq!(m.task_role(sym("T01")), Some(sym("GP")));
        assert_eq!(m.task_role(sym("T99")), None);
    }

    #[test]
    fn error_boundary_can_be_set_late() {
        let mut b = ProcessBuilder::new("t");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let t = b.task(p, "T");
        let h = b.task(p, "H");
        let e = b.end(p, "E");
        let e2 = b.end(p, "E2");
        b.set_error_boundary(t, h);
        b.chain(&[s, t, e]);
        b.flow(h, e2);
        let m = b.build().unwrap();
        match m.node(t).kind {
            NodeKind::Task { on_error } => assert_eq!(on_error, Some(h)),
            _ => panic!("expected task"),
        }
        assert!(m.has_error_boundaries());
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Start.is_start());
        assert!(NodeKind::Task { on_error: None }.is_task());
        assert!(NodeKind::Xor.is_gateway());
        assert!(NodeKind::End.is_end());
        assert!(!NodeKind::End.is_gateway());
    }
}
