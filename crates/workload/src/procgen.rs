//! Random well-founded process generation.
//!
//! The paper reports no public process corpus, so scalability experiments
//! (P2/P6 in `DESIGN.md`) run on synthetic processes. [`generate`] builds a
//! structured, single-pool BPMN model by recursive block composition —
//! sequences of tasks, XOR/AND/OR blocks and loops — which guarantees
//! well-formedness by construction; loops always contain a task, so every
//! generated model is well-founded (§5).

use bpmn::model::{NodeId, PoolId, ProcessBuilder, ProcessModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for [`generate`].
#[derive(Clone, Debug)]
pub struct ProcGenConfig {
    /// Approximate number of tasks (the generator stops opening new blocks
    /// once the budget is spent; the exact count can exceed this slightly).
    pub target_tasks: usize,
    /// Probability that a segment is an XOR block.
    pub xor_prob: f64,
    /// Probability that a segment is an AND block.
    pub and_prob: f64,
    /// Probability that a segment is an OR block (with paired join).
    pub or_prob: f64,
    /// Probability that a segment is a loop.
    pub loop_prob: f64,
    /// Branch fan-out of gateway blocks (2..=max, capped at the validator's
    /// OR limit for OR blocks).
    pub max_branch: usize,
    /// Maximum block nesting depth.
    pub max_depth: usize,
}

impl Default for ProcGenConfig {
    fn default() -> Self {
        ProcGenConfig {
            target_tasks: 12,
            xor_prob: 0.2,
            and_prob: 0.1,
            or_prob: 0.05,
            loop_prob: 0.1,
            max_branch: 3,
            max_depth: 4,
        }
    }
}

impl ProcGenConfig {
    /// A purely sequential process of `n` tasks.
    pub fn sequential(n: usize) -> ProcGenConfig {
        ProcGenConfig {
            target_tasks: n,
            xor_prob: 0.0,
            and_prob: 0.0,
            or_prob: 0.0,
            loop_prob: 0.0,
            ..ProcGenConfig::default()
        }
    }
}

struct Gen<'a> {
    b: &'a mut ProcessBuilder,
    pool: PoolId,
    cfg: ProcGenConfig,
    counter: usize,
    tasks_left: isize,
}

impl Gen<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    fn task(&mut self) -> NodeId {
        self.tasks_left -= 1;
        let name = self.fresh("T");
        self.b.task(self.pool, name.as_str())
    }

    /// Generate a block and return its (entry, exit) nodes; the caller
    /// wires flows into entry and out of exit.
    fn block(&mut self, rng: &mut StdRng, depth: usize) -> (NodeId, NodeId) {
        // Segment count: 1–3 per block, never more than the remaining task
        // budget — so a purely sequential config yields exactly
        // `target_tasks` (gateway fan-out can still overshoot slightly).
        let cap = self.tasks_left.max(1) as usize;
        let segments = rng.gen_range(1..=3usize).min(cap);
        let mut entry: Option<NodeId> = None;
        let mut prev: Option<NodeId> = None;
        for _ in 0..segments {
            let (seg_in, seg_out) = self.segment(rng, depth);
            if let Some(p) = prev {
                self.b.flow(p, seg_in);
            }
            entry.get_or_insert(seg_in);
            prev = Some(seg_out);
        }
        (
            entry.expect("at least one segment"),
            prev.expect("at least one segment"),
        )
    }

    fn segment(&mut self, rng: &mut StdRng, depth: usize) -> (NodeId, NodeId) {
        let roll: f64 = rng.gen();
        let cfg = self.cfg.clone();
        let can_nest = depth < cfg.max_depth && self.tasks_left > 1;
        if can_nest && roll < cfg.xor_prob {
            self.gateway_block(rng, depth, BlockKind::Xor)
        } else if can_nest && roll < cfg.xor_prob + cfg.and_prob {
            self.gateway_block(rng, depth, BlockKind::And)
        } else if can_nest && roll < cfg.xor_prob + cfg.and_prob + cfg.or_prob {
            self.gateway_block(rng, depth, BlockKind::Or)
        } else if can_nest && roll < cfg.xor_prob + cfg.and_prob + cfg.or_prob + cfg.loop_prob {
            self.loop_block(rng, depth)
        } else {
            let t = self.task();
            (t, t)
        }
    }

    fn gateway_block(
        &mut self,
        rng: &mut StdRng,
        depth: usize,
        kind: BlockKind,
    ) -> (NodeId, NodeId) {
        let branches = rng.gen_range(2..=self.cfg.max_branch.max(2));
        let (split, join) = match kind {
            BlockKind::Xor => {
                let s = self.fresh("GX");
                let j = self.fresh("JX");
                (
                    self.b.xor(self.pool, s.as_str()),
                    self.b.xor(self.pool, j.as_str()),
                )
            }
            BlockKind::And => {
                let s = self.fresh("GA");
                let j = self.fresh("JA");
                (
                    self.b.and(self.pool, s.as_str()),
                    self.b.and(self.pool, j.as_str()),
                )
            }
            BlockKind::Or => {
                let s = self.fresh("GO");
                let j = self.fresh("JO");
                let split = self.b.or_split(self.pool, s.as_str());
                let join = self.b.or_join(self.pool, j.as_str());
                self.b.pair_or(split, join);
                (split, join)
            }
        };
        let branches = branches.min(bpmn::validate::MAX_OR_FANOUT);
        for _ in 0..branches {
            let (bin, bout) = self.block(rng, depth + 1);
            self.b.flow(split, bin);
            self.b.flow(bout, join);
        }
        (split, join)
    }

    fn loop_block(&mut self, rng: &mut StdRng, depth: usize) -> (NodeId, NodeId) {
        // entry merge (XOR join) → body → exit split (XOR) → back to merge.
        let merge_name = self.fresh("LM");
        let split_name = self.fresh("LS");
        let merge = self.b.xor(self.pool, merge_name.as_str());
        let split = self.b.xor(self.pool, split_name.as_str());
        // The body always starts with a task, keeping the cycle observable
        // (well-foundedness, §5).
        let first = self.task();
        self.b.flow(merge, first);
        let (bin, bout) = self.block(rng, depth + 1);
        self.b.flow(first, bin);
        self.b.flow(bout, split);
        self.b.flow(split, merge); // back edge
        (merge, split)
    }
}

enum BlockKind {
    Xor,
    And,
    Or,
}

/// Generate a process with the given shape, deterministically from `seed`.
pub fn generate(cfg: &ProcGenConfig, seed: u64) -> ProcessModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProcessBuilder::new(format!("generated_{seed}").as_str());
    let pool = b.pool("Worker");
    let start = b.start(pool, "S0");
    let end = b.end(pool, "E0");
    let mut gen = Gen {
        b: &mut b,
        pool,
        cfg: cfg.clone(),
        counter: 0,
        tasks_left: cfg.target_tasks as isize,
    };
    let mut entry: Option<NodeId> = None;
    let mut prev: Option<NodeId> = None;
    while gen.tasks_left > 0 {
        let (bin, bout) = gen.block(&mut rng, 0);
        if let Some(p) = prev {
            gen.b.flow(p, bin);
        }
        entry.get_or_insert(bin);
        prev = Some(bout);
    }
    b.flow(start, entry.expect("at least one block"));
    b.flow(prev.expect("at least one block"), end);
    b.build()
        .expect("generated processes are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmn::encode::encode;
    use bpmn::wellfounded::find_task_free_cycle;

    #[test]
    fn sequential_config_generates_exactly_n_tasks() {
        let m = generate(&ProcGenConfig::sequential(7), 42);
        assert_eq!(m.tasks().count(), 7);
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = ProcGenConfig::default();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a, b);
        let c = generate(&cfg, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_models_are_well_founded_and_encodable() {
        for seed in 0..20 {
            let m = generate(&ProcGenConfig::default(), seed);
            assert!(find_task_free_cycle(&m).is_none(), "seed {seed}");
            let enc = encode(&m);
            assert!(!enc.service.is_nil());
        }
    }

    #[test]
    fn loop_heavy_models_validate() {
        let cfg = ProcGenConfig {
            loop_prob: 0.5,
            target_tasks: 10,
            ..ProcGenConfig::default()
        };
        for seed in 0..10 {
            let m = generate(&cfg, seed);
            assert!(m.tasks().count() >= 10);
        }
    }

    #[test]
    fn or_blocks_respect_fanout_cap() {
        let cfg = ProcGenConfig {
            or_prob: 0.6,
            max_branch: 9,
            target_tasks: 20,
            ..ProcGenConfig::default()
        };
        // build() would reject fan-outs above the cap.
        for seed in 0..5 {
            let _ = generate(&cfg, seed);
        }
    }
}
