//! Hospital-scale workload (the §1 motivation).
//!
//! "At the Geneva University Hospitals, more than 20,000 records are opened
//! every day … it would be infeasible to verify every data usage manually."
//! [`generate_day`] synthesizes a day of hospital activity at that scale:
//! healthcare-treatment and clinical-trial cases with realistic per-task
//! action profiles, a configurable fraction of injected infringements, and
//! ground truth for measuring detection.

use crate::attacks::{self, Injection};
use crate::simulate::{simulate_case, ObjectTemplate, SimConfig, TaskProfiles};
use audit::time::Timestamp;
use audit::trail::AuditTrail;
use bpmn::encode::{encode, Encoded};
use bpmn::models::{clinical_trial, healthcare_treatment};
use cows::symbol::{sym, Symbol};
use policy::statement::Action;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Day-model parameters.
#[derive(Clone, Debug)]
pub struct HospitalConfig {
    /// Target number of log entries ("record opens") for the day.
    pub target_entries: usize,
    /// Fraction of clinical-trial (vs treatment) cases.
    pub trial_fraction: f64,
    /// Fraction of cases that receive an injected infringement.
    pub attack_fraction: f64,
    /// Probability a treatment case follows an error branch.
    pub error_prob: f64,
}

impl Default for HospitalConfig {
    /// The paper's scale: 20,000 record opens in a day.
    fn default() -> Self {
        HospitalConfig {
            target_entries: 20_000,
            trial_fraction: 0.05,
            attack_fraction: 0.02,
            error_prob: 0.1,
        }
    }
}

/// What actually happened in a generated case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseTruth {
    pub purpose: Symbol,
    /// `None` → the case's *process* is compliant.
    pub injected: Option<Injection>,
    /// A clinical-trial case whose patient never consented: invisible to
    /// Algorithm 1 (the process is followed!) but caught by the preventive
    /// Def. 3 layer — the paper's two mechanisms are complementary (§3.5).
    pub consent_withheld: bool,
}

/// A generated day: the merged trail plus per-case ground truth.
#[derive(Clone, Debug)]
pub struct HospitalDay {
    pub trail: AuditTrail,
    pub truth: HashMap<Symbol, CaseTruth>,
    /// Consents granted during generation: (patient, purpose). Trial
    /// patients consent unless their case is a consent-withheld attack.
    pub consents: Vec<(Symbol, Symbol)>,
}

impl HospitalDay {
    pub fn compliant_cases(&self) -> usize {
        self.truth.values().filter(|t| t.injected.is_none()).count()
    }

    pub fn attacked_cases(&self) -> usize {
        self.truth.values().filter(|t| t.injected.is_some()).count()
    }
}

/// Action/object profiles matching the Fig. 1 tasks (and the Fig. 3
/// policy, so compliant cases also pass the preventive check).
pub fn healthcare_profiles() -> TaskProfiles {
    let mut p = TaskProfiles::new();
    let rw_clinical = vec![
        (Action::Read, ObjectTemplate::SubjectPath("EPR/Clinical")),
        (Action::Write, ObjectTemplate::SubjectPath("EPR/Clinical")),
    ];
    for t in ["T02", "T03", "T05", "T07", "T08", "T09"] {
        p.set(t, rw_clinical.clone());
    }
    p.set(
        "T01",
        vec![
            (Action::Read, ObjectTemplate::SubjectPath("EPR/Clinical")),
            (
                Action::Read,
                ObjectTemplate::SubjectPath("EPR/Demographics"),
            ),
        ],
    );
    p.set(
        "T04",
        vec![(Action::Write, ObjectTemplate::SubjectPath("EPR/Clinical"))],
    );
    // Radiology: check, scan, export.
    p.set(
        "T10",
        vec![(Action::Read, ObjectTemplate::SubjectPath("EPR/Clinical"))],
    );
    p.set(
        "T11",
        vec![(Action::Execute, ObjectTemplate::Plain("ScanSoftware"))],
    );
    p.set(
        "T12",
        vec![(
            Action::Write,
            ObjectTemplate::SubjectPath("EPR/Clinical/Scan"),
        )],
    );
    // Lab: check, exam, export.
    p.set(
        "T13",
        vec![(Action::Read, ObjectTemplate::SubjectPath("EPR/Clinical"))],
    );
    p.set(
        "T14",
        vec![(Action::Execute, ObjectTemplate::Plain("LabAnalyzer"))],
    );
    p.set(
        "T15",
        vec![(
            Action::Write,
            ObjectTemplate::SubjectPath("EPR/Clinical/Tests"),
        )],
    );
    p
}

/// Profiles for the clinical-trial tasks of Fig. 2.
pub fn trial_profiles() -> TaskProfiles {
    let mut p = TaskProfiles::new();
    p.set(
        "T91",
        vec![(
            Action::Write,
            ObjectTemplate::Plain("ClinicalTrial/Criteria"),
        )],
    );
    p.set(
        "T92",
        vec![
            (Action::Read, ObjectTemplate::SubjectPath("EPR")),
            (
                Action::Write,
                ObjectTemplate::Plain("ClinicalTrial/ListOfSelCand"),
            ),
        ],
    );
    p.set(
        "T93",
        vec![(
            Action::Write,
            ObjectTemplate::Plain("ClinicalTrial/ListOfEnrCand"),
        )],
    );
    p.set(
        "T94",
        vec![(
            Action::Write,
            ObjectTemplate::Plain("ClinicalTrial/Measurements"),
        )],
    );
    p.set(
        "T95",
        vec![(
            Action::Write,
            ObjectTemplate::Plain("ClinicalTrial/Results"),
        )],
    );
    p
}

fn patient_name(rng: &mut StdRng) -> Symbol {
    sym(&format!("patient{:05}", rng.gen_range(0..100_000)))
}

/// Generate a day of hospital activity.
pub fn generate_day(cfg: &HospitalConfig, seed: u64) -> HospitalDay {
    let ht_model = healthcare_treatment();
    let ct_model = clinical_trial();
    let ht_encoded = encode(&ht_model);
    let ct_encoded = encode(&ct_model);
    generate_day_with(cfg, seed, &ht_encoded, &ct_encoded)
}

/// As [`generate_day`], reusing pre-encoded processes (for benches that
/// amortize the encoding).
pub fn generate_day_with(
    cfg: &HospitalConfig,
    seed: u64,
    ht_encoded: &Encoded,
    ct_encoded: &Encoded,
) -> HospitalDay {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trail = AuditTrail::new();
    let mut truth: HashMap<Symbol, CaseTruth> = HashMap::new();
    let mut consents: Vec<(Symbol, Symbol)> = Vec::new();
    let day_start: Timestamp = "201007060000".parse().expect("valid literal");

    let mut entries_so_far = 0usize;
    let mut case_no = 0usize;
    while entries_so_far < cfg.target_entries {
        case_no += 1;
        let is_trial = rng.gen_bool(cfg.trial_fraction);
        let (purpose, case, encoded, profiles) = if is_trial {
            (
                sym("clinicaltrial"),
                sym(&format!("CT-{case_no}")),
                ct_encoded,
                trial_profiles(),
            )
        } else {
            (
                sym("treatment"),
                sym(&format!("HT-{case_no}")),
                ht_encoded,
                healthcare_profiles(),
            )
        };
        let patient = patient_name(&mut rng);
        // Trial patients consent — unless this case is chosen as a
        // consent-withheld attack below.
        let mut consent_withheld = false;
        if is_trial {
            if rng.gen_bool(cfg.attack_fraction) {
                consent_withheld = true;
            } else {
                consents.push((patient, sym("clinicaltrial")));
            }
        }
        let mut sim = SimConfig::new(patient);
        sim.profiles = profiles;
        sim.error_prob = if is_trial { 0.0 } else { cfg.error_prob };
        // Spread case starts across the day.
        sim.start = day_start.plus_minutes(rng.gen_range(0..1440));
        sim.step_minutes = rng.gen_range(1..=9);
        sim.users = hospital_staff(&mut rng);
        let mut entries = simulate_case(encoded, case, &sim, &mut rng);

        let injected = if rng.gen_bool(cfg.attack_fraction) {
            let inj = match rng.gen_range(0..4) {
                0 => attacks::repurpose(&mut entries, sym("T92")),
                1 => {
                    let task = entries
                        .first()
                        .map(|e| e.task)
                        .unwrap_or_else(|| sym("T06"));
                    attacks::reuse_case(&mut entries, task, &mut rng)
                }
                2 => attacks::skip_task(&mut entries, &mut rng),
                _ => attacks::wrong_role(&mut entries, &mut rng),
            };
            match inj {
                Injection::NotApplicable => None,
                other => Some(other),
            }
        } else {
            None
        };

        entries_so_far += entries.len();
        for e in entries {
            trail.push(e);
        }
        truth.insert(
            case,
            CaseTruth {
                purpose,
                injected,
                consent_withheld,
            },
        );
    }
    HospitalDay {
        trail,
        truth,
        consents,
    }
}

/// A random staffing for one case: the four Fig. 1 roles plus the trial
/// physician.
fn hospital_staff(rng: &mut StdRng) -> HashMap<Symbol, Symbol> {
    let mut m = HashMap::new();
    let id = rng.gen_range(0..500);
    m.insert(sym("GP"), sym(&format!("gp{id:03}")));
    m.insert(sym("Cardiologist"), sym(&format!("cardio{:03}", id % 50)));
    m.insert(sym("Radiologist"), sym(&format!("radio{:03}", id % 40)));
    m.insert(sym("MedicalLabTech"), sym(&format!("lab{:03}", id % 60)));
    m.insert(sym("Physician"), sym(&format!("cardio{:03}", id % 50)));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_day() -> HospitalDay {
        generate_day(
            &HospitalConfig {
                target_entries: 400,
                attack_fraction: 0.2,
                ..HospitalConfig::default()
            },
            7,
        )
    }

    #[test]
    fn day_reaches_target_scale() {
        let day = small_day();
        assert!(day.trail.len() >= 400);
        // Case lengths are long-tailed, so a 400-entry day yields only a
        // handful of cases (seed 7 produces 9).
        assert!(day.truth.len() > 5);
        assert!(day.trail.is_chronological());
    }

    #[test]
    fn day_contains_both_purposes() {
        let day = generate_day(
            &HospitalConfig {
                target_entries: 1500,
                trial_fraction: 0.3,
                ..HospitalConfig::default()
            },
            9,
        );
        let purposes: std::collections::HashSet<Symbol> =
            day.truth.values().map(|t| t.purpose).collect();
        assert!(purposes.contains(&sym("treatment")));
        assert!(purposes.contains(&sym("clinicaltrial")));
    }

    #[test]
    fn trial_consents_are_tracked() {
        let day = generate_day(
            &HospitalConfig {
                target_entries: 2_000,
                trial_fraction: 0.4,
                attack_fraction: 0.3,
                ..HospitalConfig::default()
            },
            13,
        );
        let withheld = day.truth.values().filter(|t| t.consent_withheld).count();
        assert!(withheld > 0, "some trial cases must withhold consent");
        assert!(!day.consents.is_empty(), "most trial patients consent");
        // Consent bookkeeping only applies to trial cases.
        for t in day.truth.values() {
            if t.consent_withheld {
                assert_eq!(t.purpose, sym("clinicaltrial"));
            }
        }
    }

    #[test]
    fn attack_fraction_is_roughly_respected() {
        let day = small_day();
        assert!(day.attacked_cases() > 0);
        assert!(day.compliant_cases() > day.attacked_cases());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_day(
            &HospitalConfig {
                target_entries: 300,
                ..HospitalConfig::default()
            },
            3,
        );
        let b = generate_day(
            &HospitalConfig {
                target_entries: 300,
                ..HospitalConfig::default()
            },
            3,
        );
        assert_eq!(a.trail, b.trail);
    }
}
