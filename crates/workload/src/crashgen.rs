//! Seeded crash schedules for the kill-9 harness (`tests/crash.rs`).
//!
//! A [`CrashSchedule`] deterministically derives, from one seed, where in a
//! streaming run the harness yanks the process: after which submitted batch,
//! whether a checkpoint is requested first (so the kill lands on a warm
//! store) or not (cold-tail recovery), and how long to linger so SIGKILL
//! can land mid-drain rather than only at quiescent points. Same seed, same
//! schedule — a failing matrix entry replays exactly.
//!
//! The mixer is the same splitmix64 step the durable layer's fault plans
//! use, so the whole chaos surface shares one seeding idiom.

use purpose_control::durable::splitmix64;

/// The seed matrix CI drives by default (mirrors the chaos job's).
pub const DEFAULT_SEEDS: &[u64] = &[7, 42, 1337];

/// One deterministic kill plan for a streaming run fed in batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// The seed this schedule was derived from (for failure reports).
    pub seed: u64,
    /// SIGKILL lands after this many batches have been submitted
    /// (1-based; always < the total so there is a remainder to resubmit
    /// after restart whenever the run has more than one batch).
    pub kill_after_batch: usize,
    /// Request an explicit checkpoint right before the kill, so recovery
    /// starts from a warm store; when false the kill tests cold-tail
    /// recovery from whatever the durable layer already persisted.
    pub checkpoint_before_kill: bool,
    /// Linger this long after the trigger batch before killing, letting
    /// SIGKILL land inside drains and checkpoint writes, not only between
    /// them.
    pub kill_delay_ms: u64,
}

impl CrashSchedule {
    /// Derive the schedule for `seed` over a run of `batches` submissions.
    pub fn derive(seed: u64, batches: usize) -> CrashSchedule {
        let mut s = seed;
        let span = batches.saturating_sub(1).max(1) as u64;
        let kill_after_batch = (splitmix64(&mut s) % span + 1) as usize;
        let checkpoint_before_kill = splitmix64(&mut s).is_multiple_of(2);
        let kill_delay_ms = splitmix64(&mut s) % 40;
        CrashSchedule {
            seed,
            kill_after_batch,
            checkpoint_before_kill,
            kill_delay_ms,
        }
    }
}

/// The seed list a harness run should cover: `CRASH_SEED=<n>` pins one
/// seed (the CI matrix does this), otherwise the full [`DEFAULT_SEEDS`].
pub fn seed_matrix() -> Vec<u64> {
    match std::env::var("CRASH_SEED") {
        Ok(v) => match v.trim().parse() {
            Ok(seed) => vec![seed],
            Err(_) => DEFAULT_SEEDS.to_vec(),
        },
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// Split `total` items into `parts` contiguous batches with seed-derived
/// uneven cut points (every part non-empty when `total >= parts`).
/// Returns the exclusive end offset of each batch, ending in `total`.
pub fn batch_splits(seed: u64, total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    if total <= parts {
        return (1..=total.max(1)).collect();
    }
    let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut cuts: Vec<usize> = Vec::with_capacity(parts);
    // Walk the interior picking strictly increasing cuts that leave room
    // for the remaining parts; degenerate picks are clamped, not retried,
    // so derivation is branch-deterministic.
    let mut low = 1;
    for remaining in (1..parts).rev() {
        let high = total - remaining; // leave >= 1 item per later part
        let pick = low + (splitmix64(&mut s) as usize) % (high - low + 1);
        cuts.push(pick);
        low = pick + 1;
    }
    cuts.push(total);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_inside_the_run() {
        for &seed in DEFAULT_SEEDS {
            let a = CrashSchedule::derive(seed, 6);
            let b = CrashSchedule::derive(seed, 6);
            assert_eq!(a, b);
            assert!(a.kill_after_batch >= 1 && a.kill_after_batch < 6);
            assert!(a.kill_delay_ms < 40);
        }
        // Distinct seeds should not all collapse onto one kill point.
        let points: std::collections::BTreeSet<usize> = (0..16)
            .map(|seed| CrashSchedule::derive(seed, 6).kill_after_batch)
            .collect();
        assert!(points.len() > 1);
    }

    #[test]
    fn single_batch_runs_still_get_a_valid_kill_point() {
        let s = CrashSchedule::derive(42, 1);
        assert_eq!(s.kill_after_batch, 1);
    }

    #[test]
    fn batch_splits_partition_the_whole_run() {
        for &seed in DEFAULT_SEEDS {
            let cuts = batch_splits(seed, 1000, 5);
            assert_eq!(cuts.len(), 5);
            assert_eq!(*cuts.last().unwrap(), 1000);
            for w in cuts.windows(2) {
                assert!(w[0] < w[1], "batches must be non-empty and ordered");
            }
        }
        assert_eq!(batch_splits(7, 3, 5), vec![1, 2, 3]);
    }
}
