//! Infringement injectors.
//!
//! Each injector perturbs a compliant per-case trail into one of the misuse
//! patterns the paper discusses, returning what was injected so detection
//! rates can be measured against ground truth:
//!
//! * [`repurpose`] — §2/§4: actions that belong to a different purpose's
//!   process appear under the case (Bob's clinical-trial sweep logged as
//!   treatment);
//! * [`reuse_case`] — §4's mimicry discussion: a fresh access stamped with
//!   an old, already-completed case;
//! * [`skip_task`] — a required task's entries vanish (work performed
//!   off-process);
//! * [`wrong_role`] — an entry performed under a role the pool does not
//!   generalize;
//! * [`shuffle`] — two different-task entries swap their timestamps
//!   (out-of-order execution).

use audit::entry::LogEntry;
use cows::symbol::{sym, Symbol};
use policy::object::ObjectId;
use policy::statement::Action;
use rand::rngs::StdRng;
use rand::Rng;

/// What an injector did, for ground-truth bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Injection {
    Repurposed {
        foreign_task: Symbol,
    },
    ReusedCase {
        task: Symbol,
    },
    SkippedTask {
        task: Symbol,
    },
    WrongRole {
        index: usize,
        role: Symbol,
    },
    Shuffled {
        i: usize,
        j: usize,
    },
    /// The trail was too short or uniform to perturb.
    NotApplicable,
}

/// Append an action from a *different* process (default: the clinical-trial
/// task `T92`) under this case's label — the paper's re-purposing scenario.
pub fn repurpose(entries: &mut Vec<LogEntry>, foreign_task: Symbol) -> Injection {
    let Some(last) = entries.last().cloned() else {
        return Injection::NotApplicable;
    };
    entries.push(LogEntry {
        task: foreign_task,
        time: last.time.plus_minutes(5),
        action: Action::Write,
        object: Some(ObjectId::plain("ClinicalTrial/ListOfSelCand")),
        ..last
    });
    Injection::Repurposed { foreign_task }
}

/// Stamp a fresh access with this (completed) case — the mimicry variant
/// where an attacker reuses an old case id as the access reason.
pub fn reuse_case(entries: &mut Vec<LogEntry>, task: Symbol, rng: &mut StdRng) -> Injection {
    let Some(last) = entries.last().cloned() else {
        return Injection::NotApplicable;
    };
    entries.push(LogEntry {
        task,
        // Long after the case completed.
        time: last.time.plus_days(30 + rng.gen_range(0..30u64)),
        action: Action::Read,
        ..last
    });
    Injection::ReusedCase { task }
}

/// Remove every entry of one mid-trail task.
pub fn skip_task(entries: &mut Vec<LogEntry>, rng: &mut StdRng) -> Injection {
    // Candidate tasks: any task that is not the first task of the trail
    // (dropping a prefix may leave a still-valid shorter prefix; dropping a
    // mid-trail task always leaves a gap).
    let Some(first_task) = entries.first().map(|e| e.task) else {
        return Injection::NotApplicable;
    };
    let mut tasks: Vec<Symbol> = entries
        .iter()
        .map(|e| e.task)
        .filter(|&t| t != first_task)
        .collect();
    tasks.dedup();
    // Last task is also a poor candidate (dropping a suffix is valid).
    if tasks.len() < 2 {
        return Injection::NotApplicable;
    }
    tasks.pop();
    let task = tasks[rng.gen_range(0..tasks.len())];
    entries.retain(|e| e.task != task);
    Injection::SkippedTask { task }
}

/// Replace the role of one entry with an unrelated role.
pub fn wrong_role(entries: &mut [LogEntry], rng: &mut StdRng) -> Injection {
    if entries.is_empty() {
        return Injection::NotApplicable;
    }
    let index = rng.gen_range(0..entries.len());
    let role = sym("Janitor");
    entries[index].role = role;
    entries[index].user = sym("mallory");
    Injection::WrongRole { index, role }
}

/// Swap the timestamps of two entries belonging to different tasks.
pub fn shuffle(entries: &mut [LogEntry], rng: &mut StdRng) -> Injection {
    if entries.len() < 2 {
        return Injection::NotApplicable;
    }
    for _ in 0..32 {
        let i = rng.gen_range(0..entries.len());
        let j = rng.gen_range(0..entries.len());
        if i != j && entries[i].task != entries[j].task {
            let (a, b) = (entries[i].time, entries[j].time);
            entries[i].time = b;
            entries[j].time = a;
            return Injection::Shuffled {
                i: i.min(j),
                j: i.max(j),
            };
        }
    }
    Injection::NotApplicable
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_case, SimConfig};
    use audit::trail::AuditTrail;
    use bpmn::encode::encode;
    use bpmn::models::fig8_exclusive;
    use policy::hierarchy::RoleHierarchy;
    use purpose_control::replay::{check_case, CheckOptions};
    use rand::SeedableRng;

    fn simulated() -> Vec<LogEntry> {
        let model = fig8_exclusive();
        let encoded = encode(&model);
        let mut rng = StdRng::seed_from_u64(11);
        simulate_case(&encoded, "c", &SimConfig::new("Jane"), &mut rng)
    }

    fn is_compliant(entries: &[LogEntry]) -> bool {
        let encoded = encode(&fig8_exclusive());
        let sorted = AuditTrail::from_entries(entries.to_vec());
        let refs: Vec<&LogEntry> = sorted.entries().iter().collect();
        check_case(
            &encoded,
            &RoleHierarchy::new(),
            &refs,
            &CheckOptions::default(),
        )
        .unwrap()
        .verdict
        .is_compliant()
    }

    #[test]
    fn repurposing_is_detected() {
        let mut entries = simulated();
        assert!(is_compliant(&entries));
        let inj = repurpose(&mut entries, sym("T92"));
        assert!(matches!(inj, Injection::Repurposed { .. }));
        assert!(!is_compliant(&entries));
    }

    #[test]
    fn case_reuse_is_detected_on_completed_case() {
        let mut entries = simulated();
        let mut rng = StdRng::seed_from_u64(5);
        // Re-access the first task after the case has completed.
        let first = entries[0].task;
        let inj = reuse_case(&mut entries, first, &mut rng);
        assert!(matches!(inj, Injection::ReusedCase { .. }));
        assert!(!is_compliant(&entries));
    }

    #[test]
    fn wrong_role_is_detected() {
        let mut entries = simulated();
        let mut rng = StdRng::seed_from_u64(6);
        let inj = wrong_role(&mut entries, &mut rng);
        assert!(matches!(inj, Injection::WrongRole { .. }));
        assert!(!is_compliant(&entries));
    }

    #[test]
    fn empty_trails_are_not_applicable() {
        let mut empty: Vec<LogEntry> = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(repurpose(&mut empty, sym("X")), Injection::NotApplicable);
        assert_eq!(skip_task(&mut empty, &mut rng), Injection::NotApplicable);
        assert_eq!(wrong_role(&mut empty, &mut rng), Injection::NotApplicable);
        assert_eq!(shuffle(&mut empty, &mut rng), Injection::NotApplicable);
    }
}
