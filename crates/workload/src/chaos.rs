//! Chaos injectors: seeded, deterministic corruption of *rendered* trails.
//!
//! [`crate::attacks`] models semantic misuse inside well-formed trails;
//! this module models the other failure family — transport- and
//! storage-level damage to the log document itself (§3.4 assumes trails can
//! be tampered with, §7 that they are often partial): flipped bits,
//! truncated and mangled lines, duplicated and reordered records, skewed
//! clocks, and hash-chain tampering. Every injector is driven by a seeded
//! [`StdRng`], so a corruption scenario is reproducible from `(kind, hits,
//! seed)` alone — the property the chaos suite and the CI seed matrix rely
//! on.
//!
//! Injectors return a [`ChaosReport`] naming the hit lines and the cases
//! recorded on them: the *potentially affected* set. The chaos suite does
//! not trust it blindly — it recomputes the truly-unaffected cases by
//! diffing per-case projections — but it is the right thing to print when a
//! run needs explaining.

use audit::chain::ChainedTrail;
use audit::trail::AuditTrail;
use cows::symbol::{sym, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A class of text-level corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosKind {
    /// Flip one bit of an alphanumeric byte on a line.
    BitFlip,
    /// Cut a line short mid-record.
    TruncateLine,
    /// Delete one whitespace-separated column from a line.
    DropColumn,
    /// Write a line twice.
    DuplicateEntry,
    /// Swap two differently-timed lines in storage order (the parsed
    /// multiset is unchanged — only physical order is damaged).
    ShuffleLines,
    /// Push one entry's timestamp days into the future (a skewed collector
    /// clock; the line stays well-formed).
    ClockSkew,
}

/// All text-level injectors, for exhaustive sweeps.
pub const TEXT_INJECTORS: [ChaosKind; 6] = [
    ChaosKind::BitFlip,
    ChaosKind::TruncateLine,
    ChaosKind::DropColumn,
    ChaosKind::DuplicateEntry,
    ChaosKind::ShuffleLines,
    ChaosKind::ClockSkew,
];

impl ChaosKind {
    pub fn label(&self) -> &'static str {
        match self {
            ChaosKind::BitFlip => "bit-flip",
            ChaosKind::TruncateLine => "truncate-line",
            ChaosKind::DropColumn => "drop-column",
            ChaosKind::DuplicateEntry => "duplicate-entry",
            ChaosKind::ShuffleLines => "shuffle-lines",
            ChaosKind::ClockSkew => "clock-skew",
        }
    }
}

/// What an injector touched.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// 1-based line numbers that were corrupted (for
    /// [`tamper_chain`], the 1-based entry positions of the tampered
    /// suffix start).
    pub hit_lines: Vec<usize>,
    /// Cases recorded on the hit lines — the potentially affected set.
    pub cases_on_hit_lines: BTreeSet<Symbol>,
}

fn case_of_line(line: &str) -> Option<Symbol> {
    line.split_whitespace().nth(5).map(sym)
}

fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Corrupt up to `hits` lines of a rendered trail document with one class
/// of damage. Deterministic in `(kind, hits, seed)`; comment and blank
/// lines are never targeted.
pub fn inject_text(text: &str, kind: ChaosKind, hits: usize, seed: u64) -> (String, ChaosReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let candidates: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .map(|(i, _)| i)
        .collect();
    let mut report = ChaosReport::default();
    if candidates.is_empty() || hits == 0 {
        return (text.to_string(), report);
    }

    if kind == ChaosKind::ShuffleLines {
        // Swap pairs of differently-timed records; same parsed multiset.
        for _ in 0..hits {
            for _ in 0..32 {
                let i = candidates[rng.gen_range(0..candidates.len())];
                let j = candidates[rng.gen_range(0..candidates.len())];
                let (ti, tj) = (
                    lines[i].split_whitespace().nth(6).map(str::to_string),
                    lines[j].split_whitespace().nth(6).map(str::to_string),
                );
                if i != j && ti != tj {
                    report.hit_lines.push(i + 1);
                    report.hit_lines.push(j + 1);
                    report.cases_on_hit_lines.extend(case_of_line(&lines[i]));
                    report.cases_on_hit_lines.extend(case_of_line(&lines[j]));
                    lines.swap(i, j);
                    break;
                }
            }
        }
        report.hit_lines.sort_unstable();
        report.hit_lines.dedup();
        let mut out = lines.join("\n");
        out.push('\n');
        return (out, report);
    }

    // Per-line damage: pick distinct target lines, then apply in
    // descending order so DuplicateEntry insertions don't shift later
    // targets.
    let want = hits.min(candidates.len());
    let mut chosen: BTreeSet<usize> = BTreeSet::new();
    let mut tries = 0;
    while chosen.len() < want && tries < 32 * want + 64 {
        chosen.insert(candidates[rng.gen_range(0..candidates.len())]);
        tries += 1;
    }
    for &idx in chosen.iter().rev() {
        report.cases_on_hit_lines.extend(case_of_line(&lines[idx]));
        match kind {
            ChaosKind::BitFlip => {
                let mut bytes = lines[idx].clone().into_bytes();
                if bytes.is_empty() {
                    continue;
                }
                let start = rng.gen_range(0..bytes.len());
                if let Some(p) = (0..bytes.len())
                    .map(|o| (start + o) % bytes.len())
                    .find(|&p| bytes[p].is_ascii_alphanumeric())
                {
                    bytes[p] ^= 0x02;
                    lines[idx] = String::from_utf8(bytes).expect("ascii flip stays utf8");
                }
            }
            ChaosKind::TruncateLine => {
                let len = lines[idx].len();
                if len > 1 {
                    let cut = floor_char_boundary(&lines[idx], rng.gen_range(1..len));
                    lines[idx].truncate(cut.max(1));
                }
            }
            ChaosKind::DropColumn => {
                let mut cols: Vec<&str> = lines[idx].split_whitespace().collect();
                if !cols.is_empty() {
                    cols.remove(rng.gen_range(0..cols.len()));
                    lines[idx] = cols.join(" ");
                }
            }
            ChaosKind::DuplicateEntry => {
                let copy = lines[idx].clone();
                lines.insert(idx + 1, copy);
            }
            ChaosKind::ClockSkew => {
                let cols: Vec<String> = lines[idx].split_whitespace().map(str::to_string).collect();
                if cols.len() == 8 {
                    if let Ok(t) = cols[6].parse::<audit::time::Timestamp>() {
                        let skewed = t.plus_days(rng.gen_range(1..30u64));
                        let mut cols = cols;
                        cols[6] = skewed.to_string();
                        lines[idx] = cols.join(" ");
                    }
                }
            }
            ChaosKind::ShuffleLines => unreachable!("handled above"),
        }
        report.hit_lines.push(idx + 1);
    }
    report.hit_lines.sort_unstable();
    let mut out = lines.join("\n");
    out.push('\n');
    (out, report)
}

/// Commit `trail` to a hash chain, then tamper one mid-trail entry in
/// storage (without re-keying digests) — the §3.4 integrity-breach
/// scenario. The report's `cases_on_hit_lines` holds every case with an
/// entry at or after the broken link, i.e. the cases that lose entries when
/// [`audit::salvage::salvage_chained`] quarantines the suffix.
pub fn tamper_chain(trail: &AuditTrail, seed: u64) -> (ChainedTrail, ChaosReport) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chained = ChainedTrail::commit(trail.clone());
    if trail.len() < 2 {
        return (chained, ChaosReport::default());
    }
    // Mid-trail hit: leaves both a non-empty intact prefix and a non-empty
    // quarantined suffix.
    let idx = rng.gen_range(trail.len() / 4..(3 * trail.len()) / 4);
    let mut entries = trail.entries().to_vec();
    entries[idx].task = sym("TAMPERED");
    *chained.tamper() = AuditTrail::from_entries(entries);
    let report = ChaosReport {
        hit_lines: vec![idx + 1],
        cases_on_hit_lines: trail.entries()[idx..].iter().map(|e| e.case).collect(),
    };
    (chained, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit::codec::{format_trail, parse_trail};
    use audit::entry::LogEntry;
    use audit::salvage::{parse_trail_salvage, salvage_chained};
    use audit::time::Timestamp;
    use policy::statement::Action;

    fn sample_trail() -> AuditTrail {
        let mut entries = Vec::new();
        for i in 0..20u64 {
            entries.push(LogEntry::success(
                "John",
                "GP",
                Action::Read,
                None,
                format!("T{:02}", i % 5).as_str(),
                format!("HT-{}", i / 5).as_str(),
                Timestamp(1000 + i),
            ));
        }
        AuditTrail::from_entries(entries)
    }

    #[test]
    fn injectors_are_deterministic_in_seed() {
        let text = format_trail(&sample_trail());
        for kind in TEXT_INJECTORS {
            let (a, ra) = inject_text(&text, kind, 3, 42);
            let (b, rb) = inject_text(&text, kind, 3, 42);
            assert_eq!(a, b, "{kind:?} not deterministic");
            assert_eq!(ra, rb);
            let (c, _) = inject_text(&text, kind, 3, 43);
            assert_ne!(a, c, "{kind:?} ignores the seed");
        }
    }

    #[test]
    fn injectors_report_hits_and_cases() {
        let text = format_trail(&sample_trail());
        for kind in TEXT_INJECTORS {
            let (corrupt, report) = inject_text(&text, kind, 3, 7);
            assert!(!report.hit_lines.is_empty(), "{kind:?} hit nothing");
            assert!(
                !report.cases_on_hit_lines.is_empty(),
                "{kind:?} reported no cases"
            );
            assert_ne!(corrupt, text, "{kind:?} left the text unchanged");
        }
    }

    #[test]
    fn shuffle_preserves_parsed_multiset() {
        let text = format_trail(&sample_trail());
        let (corrupt, _) = inject_text(&text, ChaosKind::ShuffleLines, 3, 11);
        // Physical order differs, parsed (sorted) trail is identical.
        let clean = parse_trail(&text).unwrap();
        let (salvaged, q) = parse_trail_salvage(&corrupt);
        assert_eq!(clean, salvaged);
        assert!(q.lines.is_empty());
        assert!(!q.out_of_order.is_empty(), "disorder must be recorded");
    }

    #[test]
    fn duplicate_lines_are_quarantined_as_duplicates() {
        let text = format_trail(&sample_trail());
        let (corrupt, report) = inject_text(&text, ChaosKind::DuplicateEntry, 3, 13);
        let (salvaged, q) = parse_trail_salvage(&corrupt);
        assert_eq!(salvaged, parse_trail(&text).unwrap());
        assert_eq!(q.lines.len(), report.hit_lines.len());
        assert!(q
            .lines
            .iter()
            .all(|l| l.reason.label() == "duplicate-entry"));
    }

    #[test]
    fn drop_column_always_quarantines() {
        let text = format_trail(&sample_trail());
        let (corrupt, report) = inject_text(&text, ChaosKind::DropColumn, 4, 17);
        let (_, q) = parse_trail_salvage(&corrupt);
        assert_eq!(q.lines.len(), report.hit_lines.len());
        assert!(q
            .lines
            .iter()
            .all(|l| l.reason.label() == "bad-column-count"));
    }

    #[test]
    fn chain_tamper_splits_prefix_and_suffix() {
        let trail = sample_trail();
        let (chained, report) = tamper_chain(&trail, 99);
        assert!(chained.verify().is_err());
        let (salvaged, q) = salvage_chained(&chained);
        let first_bad = report.hit_lines[0] - 1;
        assert_eq!(salvaged.len(), first_bad);
        assert_eq!(q.lines.len(), trail.len() - first_bad);
        assert!(!salvaged.is_empty(), "prefix must survive a mid-trail hit");
    }
}
