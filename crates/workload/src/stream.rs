//! Interleaved streaming workloads for the live monitor.
//!
//! [`crate::hospital::generate_day`] emits its trail case-block by
//! case-block — fine for batch replay, but a live monitor is defined by
//! *interleaving*: thousands of cases in flight at once, each delivering
//! its next entry whenever its clock says so. [`interleave`] re-orders a
//! day's trail into arrival order (stable by timestamp, so every case's
//! own entries stay in sequence — the only order the per-case sessions
//! need), and [`peak_concurrency`] measures how many cases are open at
//! the worst moment, which is exactly the population the monitor's
//! `max_open_cases` bound has to survive.

use audit::entry::LogEntry;
use audit::trail::AuditTrail;
use cows::symbol::Symbol;
use std::collections::HashMap;

/// Re-order a trail into arrival order: stable sort by timestamp.
/// Per-case relative order is preserved (simulated case entries are
/// non-decreasing in time, and ties keep their original order).
pub fn interleave(trail: &AuditTrail) -> Vec<LogEntry> {
    let mut entries: Vec<LogEntry> = trail.entries().to_vec();
    entries.sort_by_key(|e| e.time);
    entries
}

/// Maximum number of cases simultaneously "open" in an entry stream — a
/// case is open from its first entry to its last. This is the resident-set
/// pressure a live monitor faces without eviction.
pub fn peak_concurrency(entries: &[LogEntry]) -> usize {
    let mut first: HashMap<Symbol, usize> = HashMap::new();
    let mut last: HashMap<Symbol, usize> = HashMap::new();
    for (i, e) in entries.iter().enumerate() {
        first.entry(e.case).or_insert(i);
        last.insert(e.case, i);
    }
    let mut delta = vec![0i64; entries.len() + 1];
    for (case, &f) in &first {
        delta[f] += 1;
        delta[last[case] + 1] -= 1;
    }
    let mut open = 0i64;
    let mut peak = 0i64;
    for d in delta {
        open += d;
        peak = peak.max(open);
    }
    peak as usize
}

/// Number of distinct cases in an entry stream.
pub fn case_count(entries: &[LogEntry]) -> usize {
    entries
        .iter()
        .map(|e| e.case)
        .collect::<std::collections::HashSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hospital::{generate_day, HospitalConfig};

    #[test]
    fn interleaving_preserves_per_case_order() {
        let day = generate_day(
            &HospitalConfig {
                target_entries: 1_000,
                ..HospitalConfig::default()
            },
            11,
        );
        let stream = interleave(&day.trail);
        assert_eq!(stream.len(), day.trail.len());
        // Arrival order is non-decreasing in time…
        for w in stream.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // …and each case sees exactly its original entry sequence.
        for case in day.trail.cases() {
            let original: Vec<&LogEntry> = day.trail.project_case(case);
            let streamed: Vec<&LogEntry> = stream.iter().filter(|e| e.case == case).collect();
            assert_eq!(original, streamed, "case {case} reordered");
        }
    }

    #[test]
    fn interleaved_day_is_genuinely_concurrent() {
        let day = generate_day(
            &HospitalConfig {
                target_entries: 2_000,
                ..HospitalConfig::default()
            },
            13,
        );
        let stream = interleave(&day.trail);
        let peak = peak_concurrency(&stream);
        // Case-blocked trails have peak 1; an interleaved day must keep
        // many cases in flight at once. (Thresholds are loose: RNG stubs
        // skew the case-size distribution.)
        assert!(peak > 5, "peak concurrency only {peak}");
        assert!(case_count(&stream) > 50);
    }
}
