//! Compliant-trail simulation.
//!
//! The paper evaluates on hospital logs we cannot obtain (DocuLive at the
//! Geneva University Hospitals, §1); this module synthesizes trails with
//! exactly the Def. 4 schema by random-walking the *same* COWS encoding
//! that Algorithm 1 replays. Soundness of the generator therefore follows
//! from Theorem 2: every simulated trail is, by construction, a valid
//! execution of the process.

use audit::entry::{LogEntry, TaskStatus};
use audit::time::Timestamp;
use bpmn::encode::Encoded;
use cows::observe::{Observability, Observation};
use cows::semantics::transitions_shared;
use cows::symbol::{sym, Symbol};
use policy::object::ObjectId;
use policy::statement::Action;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// What a task does when it runs: the actions logged and the object they
/// touch.
#[derive(Clone, Debug)]
pub enum ObjectTemplate {
    /// `[patient]<path>` — a per-case data subject's resource.
    SubjectPath(&'static str),
    /// A subject-less resource.
    Plain(&'static str),
    /// No object (pure task event).
    None,
}

/// Per-task action/object profiles used when expanding a task start into
/// 1..n log entries.
#[derive(Clone, Debug, Default)]
pub struct TaskProfiles {
    map: HashMap<Symbol, Vec<(Action, ObjectTemplate)>>,
}

impl TaskProfiles {
    pub fn new() -> TaskProfiles {
        TaskProfiles::default()
    }

    pub fn set(&mut self, task: impl Into<Symbol>, actions: Vec<(Action, ObjectTemplate)>) {
        self.map.insert(task.into(), actions);
    }

    fn actions_for(&self, task: Symbol) -> &[(Action, ObjectTemplate)] {
        const DEFAULT: &[(Action, ObjectTemplate)] = &[
            (Action::Read, ObjectTemplate::SubjectPath("EPR/Clinical")),
            (Action::Write, ObjectTemplate::SubjectPath("EPR/Clinical")),
        ];
        self.map.get(&task).map(Vec::as_slice).unwrap_or(DEFAULT)
    }
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The case's data subject.
    pub patient: Symbol,
    /// Users by role; unknown roles fall back to `"user_<role>"`.
    pub users: HashMap<Symbol, Symbol>,
    /// Log entries emitted per task start (inclusive range).
    pub min_actions: usize,
    pub max_actions: usize,
    /// Start time and per-action spacing.
    pub start: Timestamp,
    pub step_minutes: u64,
    /// Probability of following a `sys·Err` branch when one is available.
    pub error_prob: f64,
    /// Safety bound on walk steps.
    pub max_steps: usize,
    pub profiles: TaskProfiles,
}

impl SimConfig {
    pub fn new(patient: impl Into<Symbol>) -> SimConfig {
        SimConfig {
            patient: patient.into(),
            users: HashMap::new(),
            min_actions: 1,
            max_actions: 3,
            start: Timestamp(6_000_000),
            step_minutes: 7,
            error_prob: 0.0,
            max_steps: 10_000,
            profiles: TaskProfiles::new(),
        }
    }

    pub fn with_user(mut self, role: impl Into<Symbol>, user: impl Into<Symbol>) -> SimConfig {
        self.users.insert(role.into(), user.into());
        self
    }

    fn user_for(&self, role: Symbol) -> Symbol {
        self.users
            .get(&role)
            .copied()
            .unwrap_or_else(|| sym(&format!("user_{role}")))
    }
}

/// Simulate one complete execution of the process as the log entries of
/// case `case`.
///
/// The walk picks uniformly among enabled transitions (biasing `sys·Err`
/// communications by `error_prob`) until the process quiesces or
/// `max_steps` is reached.
pub fn simulate_case(
    encoded: &Encoded,
    case: impl Into<Symbol>,
    cfg: &SimConfig,
    rng: &mut StdRng,
) -> Vec<LogEntry> {
    let case = case.into();
    let mut entries: Vec<LogEntry> = Vec::new();
    let mut state = cows::normalize(encoded.service.clone());
    let mut now = cfg.start;

    for _ in 0..cfg.max_steps {
        let ts = transitions_shared(&state);
        if ts.is_empty() {
            break;
        }
        // Partition into error and ordinary steps so error likelihood is
        // controllable.
        let err_steps: Vec<usize> = (0..ts.len())
            .filter(|&i| {
                matches!(
                    encoded.observability.observe(&ts[i].0),
                    Some(Observation::Error)
                )
            })
            .collect();
        let pick = if !err_steps.is_empty() && rng.gen_bool(cfg.error_prob) {
            err_steps[rng.gen_range(0..err_steps.len())]
        } else {
            let ordinary: Vec<usize> = (0..ts.len()).filter(|i| !err_steps.contains(i)).collect();
            if ordinary.is_empty() {
                err_steps[rng.gen_range(0..err_steps.len())]
            } else {
                ordinary[rng.gen_range(0..ordinary.len())]
            }
        };
        let (label, next) = &ts[pick];
        match encoded.observability.observe(label) {
            Some(Observation::Task { role, task }) => {
                let n = rng.gen_range(cfg.min_actions..=cfg.max_actions);
                let actions = cfg.profiles.actions_for(task);
                for _ in 0..n {
                    let (action, template) = &actions[rng.gen_range(0..actions.len())];
                    let object = match template {
                        ObjectTemplate::SubjectPath(p) => {
                            Some(ObjectId::of_subject(cfg.patient, p))
                        }
                        ObjectTemplate::Plain(p) => Some(ObjectId::plain(p)),
                        ObjectTemplate::None => None,
                    };
                    now = now.plus_minutes(cfg.step_minutes);
                    entries.push(LogEntry {
                        user: cfg.user_for(role),
                        role,
                        action: *action,
                        object,
                        task,
                        case,
                        time: now,
                        status: TaskStatus::Success,
                    });
                }
            }
            Some(Observation::Error) => {
                // The failing task is named by the completion annotation.
                let task = label
                    .completed_tasks()
                    .first()
                    .map(|e| e.op)
                    .unwrap_or_else(|| sym("unknown"));
                let role = label
                    .completed_tasks()
                    .first()
                    .map(|e| e.partner)
                    .unwrap_or_else(|| sym("unknown"));
                now = now.plus_minutes(cfg.step_minutes);
                entries.push(LogEntry {
                    user: cfg.user_for(role),
                    role,
                    action: Action::Cancel,
                    object: None,
                    task,
                    case,
                    time: now,
                    status: TaskStatus::Failure,
                });
            }
            None => {}
        }
        state = next.clone();
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procgen::{generate, ProcGenConfig};
    use bpmn::encode::encode;
    use bpmn::models::{fig8_exclusive, fig9_error, healthcare_treatment};
    use policy::hierarchy::RoleHierarchy;
    use purpose_control::replay::{check_case, CheckOptions};
    use rand::SeedableRng;

    fn verify_compliant(model: &bpmn::ProcessModel, entries: &[LogEntry]) {
        let encoded = encode(model);
        let refs: Vec<&LogEntry> = entries.iter().collect();
        let out = check_case(
            &encoded,
            &RoleHierarchy::new(),
            &refs,
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(
            out.verdict.is_compliant(),
            "simulated trail must replay: {:?}\n{:?}",
            out.verdict,
            entries.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn simulated_fig8_trails_replay_cleanly() {
        let model = fig8_exclusive();
        let encoded = encode(&model);
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let entries = simulate_case(&encoded, "c", &SimConfig::new("Jane"), &mut rng);
            assert!(!entries.is_empty());
            verify_compliant(&model, &entries);
        }
    }

    #[test]
    fn simulated_error_paths_replay_cleanly() {
        let model = fig9_error();
        let encoded = encode(&model);
        let mut cfg = SimConfig::new("Jane");
        cfg.error_prob = 1.0; // always fail when possible
        let mut rng = StdRng::seed_from_u64(1);
        let entries = simulate_case(&encoded, "c", &cfg, &mut rng);
        assert!(entries.iter().any(|e| e.status == TaskStatus::Failure));
        verify_compliant(&model, &entries);
    }

    #[test]
    fn simulated_healthcare_trails_replay_cleanly() {
        let model = healthcare_treatment();
        let encoded = encode(&model);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = SimConfig::new("Jane");
            let entries = simulate_case(&encoded, "HT-x", &cfg, &mut rng);
            assert!(entries.len() >= 4, "seed {seed}: {}", entries.len());
            verify_compliant(&model, &entries);
        }
    }

    #[test]
    fn simulated_generated_processes_replay_cleanly() {
        for seed in 0..8 {
            let model = generate(&ProcGenConfig::default(), seed);
            let encoded = encode(&model);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let entries = simulate_case(&encoded, "g", &SimConfig::new("P"), &mut rng);
            verify_compliant(&model, &entries);
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let model = fig8_exclusive();
        let encoded = encode(&model);
        let mut rng = StdRng::seed_from_u64(3);
        let entries = simulate_case(&encoded, "c", &SimConfig::new("J"), &mut rng);
        assert!(entries.windows(2).all(|w| w[0].time <= w[1].time));
    }
}
