//! Duplicate-heavy prefix workload — the replay-trie stressor.
//!
//! Real audit trails are template-shaped: most cases of a process follow
//! one of a handful of archetypal paths (the same tasks, by the same
//! roles, in the same order), and only the incidentals — case name,
//! staffing, patient, timestamps — vary. [`generate_dupheavy`] synthesizes
//! such a day: a small pool of archetype walks is simulated once, then a
//! configurable fraction of cases (90% by default) *stamps* one of those
//! walks verbatim modulo incidentals, while the rest are fresh random
//! walks. A small slice of the stamped cases receives an injected
//! deviation, so the deviant path stays exercised too.
//!
//! Under [`purpose-control`'s trie engine] the stamped cases replay almost
//! entirely from the transition cache (the memoization key is the
//! configuration frontier plus the entry's role/task/status — exactly what
//! is shared here); the automaton engine re-walks every edge per case.
//! The P17 bench measures that gap; the equivalence tests pin that the
//! verdicts do not move.

use crate::attacks::{self, Injection};
use crate::hospital::healthcare_profiles;
use crate::simulate::{simulate_case, SimConfig};
use audit::entry::LogEntry;
use audit::time::Timestamp;
use audit::trail::AuditTrail;
use bpmn::encode::{encode, Encoded};
use bpmn::models::healthcare_treatment;
use cows::symbol::{sym, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Parameters of the duplicate-heavy day.
#[derive(Clone, Debug)]
pub struct DupHeavyConfig {
    /// Number of cases to generate.
    pub cases: usize,
    /// Size of the archetype pool the stamped cases draw from.
    pub archetypes: usize,
    /// Fraction of cases stamped from an archetype (the rest are fresh
    /// random walks).
    pub duplicate_fraction: f64,
    /// Fraction of cases given an injected deviation.
    pub deviant_fraction: f64,
    /// Probability a *fresh* case follows an error branch.
    pub error_prob: f64,
}

impl Default for DupHeavyConfig {
    fn default() -> Self {
        DupHeavyConfig {
            cases: 2_000,
            archetypes: 4,
            duplicate_fraction: 0.9,
            deviant_fraction: 0.02,
            error_prob: 0.1,
        }
    }
}

/// A generated duplicate-heavy day.
#[derive(Clone, Debug)]
pub struct DupHeavyDay {
    /// The merged, chronological trail.
    pub trail: AuditTrail,
    /// Cases that received an injected deviation.
    pub deviant: HashMap<Symbol, Injection>,
    /// How many cases were stamped from an archetype.
    pub stamped: usize,
}

/// Generate a duplicate-heavy day of healthcare-treatment cases
/// (case names `DH-1…DH-n`, prefix-mappable to the treatment purpose).
pub fn generate_dupheavy(cfg: &DupHeavyConfig, seed: u64) -> DupHeavyDay {
    let encoded = encode(&healthcare_treatment());
    generate_dupheavy_with(cfg, seed, &encoded)
}

/// As [`generate_dupheavy`], reusing a pre-encoded process.
pub fn generate_dupheavy_with(cfg: &DupHeavyConfig, seed: u64, encoded: &Encoded) -> DupHeavyDay {
    let mut rng = StdRng::seed_from_u64(seed);
    let day_start: Timestamp = "201007060000".parse().expect("valid literal");

    // Simulate the archetype pool once: success-only walks, so a stamped
    // case deviates only when we inject a deviation into it.
    let archetypes: Vec<Vec<LogEntry>> = (0..cfg.archetypes.max(1))
        .map(|a| {
            let mut sim = SimConfig::new(sym("Template"));
            sim.profiles = healthcare_profiles();
            sim.error_prob = 0.0;
            sim.start = day_start;
            sim.step_minutes = 5;
            let mut arng = StdRng::seed_from_u64(seed.wrapping_add(a as u64).wrapping_mul(0x9e37));
            simulate_case(encoded, sym(&format!("ARCH-{a}")), &sim, &mut arng)
        })
        .collect();

    let mut trail = AuditTrail::new();
    let mut deviant: HashMap<Symbol, Injection> = HashMap::new();
    let mut stamped = 0usize;
    for i in 1..=cfg.cases {
        let case = sym(&format!("DH-{i}"));
        let mut entries = if rng.gen_bool(cfg.duplicate_fraction) {
            stamped += 1;
            let template = &archetypes[rng.gen_range(0..archetypes.len())];
            stamp(template, case, &mut rng, day_start)
        } else {
            let mut sim = SimConfig::new(patient(&mut rng));
            sim.profiles = healthcare_profiles();
            sim.error_prob = cfg.error_prob;
            sim.start = day_start.plus_minutes(rng.gen_range(0..1440));
            sim.step_minutes = rng.gen_range(1..=9);
            simulate_case(encoded, case, &sim, &mut rng)
        };
        if rng.gen_bool(cfg.deviant_fraction) {
            let inj = match rng.gen_range(0..2) {
                0 => attacks::skip_task(&mut entries, &mut rng),
                _ => attacks::wrong_role(&mut entries, &mut rng),
            };
            if inj != Injection::NotApplicable {
                deviant.insert(case, inj);
            }
        }
        for e in entries {
            trail.push(e);
        }
    }
    DupHeavyDay {
        trail,
        deviant,
        stamped,
    }
}

/// Copy an archetype's walk for a new case, varying only the incidentals:
/// case name, data subject, per-role users, start time and step spacing.
/// The (role, task, status) sequence — everything Algorithm 1 replays —
/// is preserved verbatim.
fn stamp(
    template: &[LogEntry],
    case: Symbol,
    rng: &mut StdRng,
    day_start: Timestamp,
) -> Vec<LogEntry> {
    let subject = patient(rng);
    let start = day_start.plus_minutes(rng.gen_range(0..1440));
    let step = rng.gen_range(1..=9);
    let staff_id = rng.gen_range(0..500u32);
    let mut now = start;
    template
        .iter()
        .map(|e| {
            now = now.plus_minutes(step);
            let mut object = e.object.clone();
            if let Some(o) = &mut object {
                if o.subject.is_some() {
                    o.subject = Some(subject);
                }
            }
            LogEntry {
                user: sym(&format!("{}{staff_id:03}", e.role.as_str().to_lowercase())),
                role: e.role,
                action: e.action,
                object,
                task: e.task,
                case,
                time: now,
                status: e.status,
            }
        })
        .collect()
}

fn patient(rng: &mut StdRng) -> Symbol {
    sym(&format!("Patient{:04}", rng.gen_range(0..8000)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamped_cases_share_the_archetype_replay_sequence() {
        let cfg = DupHeavyConfig {
            cases: 200,
            ..DupHeavyConfig::default()
        };
        let day = generate_dupheavy(&cfg, 7);
        assert!(
            day.stamped >= 160,
            "expected ~90% stamped, got {}",
            day.stamped
        );
        assert!(day.trail.is_chronological());

        // The stamped cases must collapse to at most `archetypes` distinct
        // (role, task, status) sequences — that sharing is the point.
        let mut sequences: HashMap<Vec<(Symbol, Symbol, bool)>, usize> = HashMap::new();
        for case in day.trail.cases() {
            if day.deviant.contains_key(&case) {
                continue;
            }
            let seq: Vec<(Symbol, Symbol, bool)> = day
                .trail
                .project_case(case)
                .iter()
                .map(|e| {
                    (
                        e.role,
                        e.task,
                        e.status == audit::entry::TaskStatus::Failure,
                    )
                })
                .collect();
            *sequences.entry(seq).or_default() += 1;
        }
        let shared: usize = sequences.values().filter(|&&n| n > 1).sum();
        assert!(
            shared >= day.stamped.saturating_sub(day.deviant.len()) / 2,
            "stamped cases do not share sequences: {} shared of {} stamped",
            shared,
            day.stamped
        );
    }

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = DupHeavyConfig {
            cases: 50,
            ..DupHeavyConfig::default()
        };
        let a = generate_dupheavy(&cfg, 11);
        let b = generate_dupheavy(&cfg, 11);
        assert_eq!(a.trail.entries(), b.trail.entries());
        assert_eq!(a.stamped, b.stamped);
    }
}
