//! # Synthetic workloads for purpose control
//!
//! The paper evaluates on hospital systems we cannot obtain; this crate
//! synthesizes equivalent workloads (see `DESIGN.md` §5):
//!
//! * [`procgen`] — random well-founded BPMN processes for scalability
//!   sweeps;
//! * [`simulate`] — compliant Def. 4 trails produced by random-walking the
//!   same COWS encoding Algorithm 1 replays (valid by construction);
//! * [`attacks`] — infringement injectors for the misuse patterns of
//!   §2/§4 (re-purposing, case reuse/mimicry, task skipping, wrong role,
//!   reordering);
//! * [`hospital`] — the §1 Geneva-scale day model (20,000 record opens)
//!   with ground truth;
//! * [`chaos`] — seeded transport/storage-level corruption of rendered
//!   trails (bit flips, truncation, duplication, shuffles, clock skew,
//!   chain tampering), driving the degraded-mode chaos suite;
//! * [`crashgen`] — seeded kill-9 schedules (which batch, warm or cold,
//!   how far into the drain) for the crash-injection harness.

pub mod attacks;
pub mod chaos;
pub mod crashgen;
pub mod dupheavy;
pub mod hospital;
pub mod procgen;
pub mod simulate;
pub mod stream;

pub use attacks::Injection;
pub use chaos::{inject_text, tamper_chain, ChaosKind, ChaosReport, TEXT_INJECTORS};
pub use crashgen::{batch_splits, seed_matrix, CrashSchedule};
pub use dupheavy::{generate_dupheavy, DupHeavyConfig, DupHeavyDay};
pub use hospital::{generate_day, HospitalConfig, HospitalDay};
pub use procgen::{generate, ProcGenConfig};
pub use simulate::{simulate_case, SimConfig, TaskProfiles};
