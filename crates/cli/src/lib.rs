//! # purposectl — the command-line purpose-control auditor
//!
//! Glues the text formats together into a deployable tool:
//!
//! ```text
//! purposectl validate <process.bpmn>
//! purposectl explore  <process.bpmn> [--dot]
//! purposectl simulate <process.bpmn> --cases N [--seed S] [--prefix C-]
//! purposectl check    <process.bpmn> --trail <file> --case <name> [--trace] [--lenient K]
//! purposectl audit    --trail <file> [--policy <file>]
//!                     --process <purpose>=<file> … --map <prefix>=<purpose> …
//!                     [--threads N] [--object OBJ] [--max-minutes M]
//!                     [--salvage] [--quarantine-out <file>]
//!                     [--case-deadline-ms N] [--case-step-budget N]
//!                     [--metrics-out <file>] [--prom-out <file>]
//!                     [--trace-out <file>] [--explain <case>] [--verbose]
//! purposectl watch    <trail-file> --process <purpose>=<file> …
//!                     [--follow] [--checkpoint <file>] [--shards N]
//! ```
//!
//! The library surface ([`run`]) takes argv-style arguments and a writer,
//! so every command is unit-testable without spawning processes.

use audit::codec::{format_trail, parse_trail};
use audit::salvage::{parse_trail_salvage_traced, Quarantine};
use audit::tail::TailReader;
use audit::trail::AuditTrail;
use bpmn::encode::{encode, Encoded};
use bpmn::parse::parse_process;
use bpmn::ProcessModel;
use cows::lts::{explore, ExploreLimits};
use obs::{ObsEvent, Recorder};
use policy::parse::parse_policy;
use policy::samples::hospital_roles;
use policy::{Policy, PolicyContext};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry, RegisteredProcess};
use purpose_control::lenient::{check_case_lenient, LenientOptions};
use purpose_control::parallel::audit_parallel;
use purpose_control::replay::{check_case, CheckOptions, Engine};
use purpose_control::startup::StartupStats;
use purpose_control::{atomic_write_sync, LiveConfig, LiveEvent, ShardedMonitor, SyncPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use workload::simulate::{simulate_case, SimConfig};

/// CLI failure: message plus the exit code `main` should use.
#[derive(Debug)]
pub struct CliError {
    pub message: String,
    pub exit_code: i32,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn fail(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        exit_code: 2,
    }
}

const USAGE: &str = "\
purposectl — purpose control for audit trails

USAGE:
  purposectl stats    --trail <file>
  purposectl validate <process-file>
  purposectl explore  <process-file> [--dot]
  purposectl simulate <process-file> --cases <N> [--seed <S>] [--prefix <P>]
  purposectl check    <process-file> --trail <file> --case <name> [--trace] [--lenient <K>]
                      [--engine <direct|automaton|trie>]
                      [--automaton-cache <dir>] [--no-automaton-cache]
  purposectl audit    --trail <file> [--policy <file>]
                      --process <purpose>=<file>... [--map <prefix>=<purpose>...]
                      [--threads <N>] [--object <obj>] [--max-minutes <M>]
                      [--engine <direct|automaton|trie>]
                      [--automaton-cache <dir>] [--no-automaton-cache]
                      [--salvage] [--quarantine-out <file>]
                      [--case-deadline-ms <N>] [--case-step-budget <N>]
                      [--metrics-out <file>] [--prom-out <file>]
                      [--trace-out <file>] [--explain <case>] [--verbose]
                      [--durability <always|batched[:N]|never>]
  purposectl watch    <trail-file>
                      --process <purpose>=<file>... [--map <prefix>=<purpose>...]
                      [--policy <file>] [--follow] [--poll-ms <N>]
                      [--checkpoint <file>] [--shards <N>]
                      [--max-open-cases <N>] [--max-entries-per-case <N>]
                      [--idle-minutes <M>] [--spill-dir <dir>]
                      [--spill-mem-kib <N>]
                      [--durability <always|batched[:N]|never>]
                      [--engine <direct|automaton|trie>] [--metrics-out <file>]
  purposectl serve    --tenants <name,name,...>
                      --process <purpose>=<file>... [--map <prefix>=<purpose>...]
                      [--policy <file>] [--addr <ip:port>] [--shards <N>]
                      [--watermark <entries>] [--checkpoint-dir <dir>]
                      [--max-open-cases <N>] [--max-entries-per-case <N>]
                      [--max-body-kib <N>] [--io-timeout <secs>]
                      [--durability <always|batched[:N]|never>]
                      [--engine <direct|automaton|trie>]
                      [--trace-sample <0.0..1.0>] [--trace-slow-ms <N>]
                      [--trace-out <file>] [--access-log <file>]
                      [--flight-dir <dir>]
  purposectl trace    --file <spans.jsonl> (<trace-id> | --slowest <N>)

Observability: --metrics-out / --prom-out export the run's metrics
(case outcomes, cache and automaton counters, trail shape) as JSON /
Prometheus text. --trace-out writes one deterministic JSONL evidence line
per replayed case: the configuration path Algorithm 1 walked, with the
WeakNext frontier size per step and the exact entry that triggered
sys-Err. --explain <case> renders that path human-readably for one case.
--verbose additionally prints the structured replay event stream.

Degraded mode: --salvage keeps auditing a damaged trail instead of aborting
on the first malformed line — bad lines are quarantined with typed reasons
(bad column count/action/time/status, duplicates), out-of-order arrivals
are reported, and every case whose entries survived intact gets exactly the
verdict a clean run would give. --quarantine-out writes the full quarantine
report to a file. --case-deadline-ms / --case-step-budget bound one case's
wall-clock / exploration work; a case over budget is reported inconclusive
without touching any other case's outcome.

Automaton snapshots: check/audit persist the compiled replay automaton as
`<process-file>.pcas` (in --automaton-cache <dir> if given, else beside the
process file) and start warm from it on the next run. Stale or corrupt
snapshots self-invalidate: loading falls back to cold compilation with the
reason printed, never a wrong verdict. --no-automaton-cache disables both
loading and saving; --engine direct never touches snapshots.

Live monitoring: watch tails an append-only trail file and replays every
entry as it lands, raising alarms the moment a case deviates instead of at
end-of-day. Torn final lines are deferred to the next poll, complete but
corrupt lines are quarantined (salvage semantics). Memory stays bounded:
beyond --max-open-cases the least-recently-active session is evicted
(spilled to a compressed in-memory tier of --spill-mem-kib KiB, overflowing
into an append-only spill log under --spill-dir when given), rehydrated when
its case speaks again; alarmed cases retire to compact records and
--idle-minutes sweeps out stale sessions. --shards routes cases across N independent monitors by stable
case hash. --follow keeps polling every --poll-ms milliseconds until
SIGTERM/SIGINT; on exit (or at end of input without --follow) the monitor
writes --checkpoint, and the next watch with the same flags resumes from
the recorded byte offset with identical session state. A stale or corrupt
checkpoint falls back to a cold start with the reason printed.

Durability: every persistent artifact (spill log, watch/serve checkpoints,
metric/trace/quarantine exports) is written crash-atomically — temp file,
fsync, rename, directory fsync — under the --durability policy: `always`
fsyncs every spill append, `batched[:N]` (default, N=16) groups appends per
fsync, `never` leaves flushing to the OS. Whole-file replacements sync on
`always` and `batched`, skip syncing on `never`. On a torn tail (crash mid
append) the next open scans the log, keeps every fully-written record and
truncates the rest, counted in `durable_torn_tail_truncations`. A full disk
(ENOSPC) degrades per the salvage playbook: the victim case stays resident
and correct, `durable_enospc_degradations` is counted, no verdict is lost.

Serving: serve hosts one bounded live monitor per tenant behind a raw
HTTP/1.1 surface (POST /v1/<tenant>/entries to submit trail batches with
salvage semantics, GET /v1/<tenant>/cases/<id> and /v1/<tenant>/verdicts
for verdicts, GET /metrics for tenant-labeled Prometheus, POST
/admin/checkpoint). Submits past --watermark queued entries are refused
whole with 429 + Retry-After, so accepted entries are never dropped or
reordered. --addr with port 0 picks an ephemeral port; the bound address
is printed as `serving on <addr>`. SIGTERM/SIGINT drain every tenant
queue and checkpoint to --checkpoint-dir/<tenant>.ckpt; the next serve
with the same tenant set resumes warm (fail-open: orphan, unreadable or
incompatible checkpoints are reported and ignored, never fatal).
--io-timeout bounds each socket read/write; a client that stalls
mid-request gets 408 instead of pinning a worker (slow-loris guard).

Tracing & postmortems: --trace-sample enables request tracing — every
request gets a trace id (correlated in --access-log, one JSON line per
request) and per-stage spans (accept, admission, queue_wait, replay,
spill, rehydrate, verdict) feed the stage_latency_us_* histograms with
p50/p95/p99 in both expositions. The tail sampler keeps the given
fraction of traces plus every slow (>= --trace-slow-ms), alarmed,
quarantined or errored request, appending kept span trees to
--trace-out as JSONL (crash-atomic, --durability policy). Inspect with
`purposectl trace --file <spans.jsonl> <trace-id>` or `--slowest N`,
or live via GET /debug/spans. --flight-dir arms the crash flight
recorder: a bounded in-memory ring of recent events (span opens/closes,
queue depths, offset commits, degradations) dumped to
<dir>/flight.jsonl on panic, SIGUSR1, ENOSPC/EIO degradation, every
~500ms, and at shutdown — GET /debug/flight shows the live ring.
";

/// Minimal flag scanner: positional args plus `--flag value` / `--flag`.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag_all(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn flag_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| fail(format!("--{name}: `{v}` is not a valid number"))),
        }
    }
}

/// Parse `--engine` (default: the compiled automaton; `direct` keeps the
/// per-case `WeakNext` recomputation for ablation and debugging; `trie`
/// adds the cross-case memoizing replay trie on top of the automaton).
fn engine_flag(args: &Args) -> Result<Engine, CliError> {
    match args.flag("engine") {
        None => Ok(Engine::default()),
        Some("direct") => Ok(Engine::Direct),
        Some("automaton") => Ok(Engine::Automaton),
        Some("trie") => Ok(Engine::Trie),
        Some(other) => Err(fail(format!(
            "--engine: expected `direct`, `automaton` or `trie`, got `{other}`"
        ))),
    }
}

/// Parse `--durability` into the fsync policy every persistent artifact of
/// the run is written under (spill log, checkpoints, report exports).
/// Default: `batched` — group-sync appends, full write→fsync→rename→dir-fsync
/// on whole-file replacement.
fn durability_flag(args: &Args) -> Result<SyncPolicy, CliError> {
    match args.flag("durability") {
        None => Ok(SyncPolicy::default()),
        Some(v) => SyncPolicy::parse(v).map_err(|e| fail(format!("--durability: {e}"))),
    }
}

/// Write an export artifact crash-atomically under the run's `--durability`
/// policy: readers see the old file or the new one, never a torn mix.
fn write_export(path: &str, bytes: &[u8], policy: SyncPolicy, what: &str) -> Result<(), CliError> {
    atomic_write_sync(Path::new(path), bytes, policy)
        .map(|_| ())
        .map_err(|e| fail(format!("cannot write {what} `{path}`: {e}")))
}

/// Where the automaton snapshot for `process_path` lives, honoring
/// `--automaton-cache <dir>` and `--no-automaton-cache`. `None` disables
/// snapshot persistence entirely; `--engine direct` callers must also skip
/// it (the direct engine never touches the automaton).
fn automaton_cache_file(args: &Args, process_path: &str) -> Option<PathBuf> {
    if args.has("no-automaton-cache") {
        return None;
    }
    let dir = args.flag("automaton-cache").map(Path::new);
    // Builtin (`@name`) processes have no file to sit beside; they only
    // get a snapshot when an explicit cache directory names where.
    if process_path.starts_with('@') && dir.is_none() {
        return None;
    }
    let file_stem = process_path.strip_prefix('@').unwrap_or(process_path);
    Some(Encoded::snapshot_path(Path::new(file_stem), dir))
}

/// Attempt a warm start from `cache` (fail-open: any load failure is just a
/// logged cold start). Returns the startup stats plus the number of
/// expanded states right after the load — the baseline `save_if_grown`
/// compares against on exit.
fn warm_start(encoded: &Encoded, cache: Option<&Path>) -> (StartupStats, usize) {
    let stats = match cache {
        // A missing snapshot is the ordinary first run, not a fallback.
        Some(path) if path.exists() => StartupStats::from_load(encoded.load_snapshot(path)),
        _ => StartupStats::cold(),
    };
    (stats, encoded.automaton.stats().expanded)
}

/// Re-save the snapshot if replay expanded states beyond what the load
/// carried. Save failures are reported but never affect the exit code —
/// the verdict is already computed.
fn save_if_grown(encoded: &Encoded, cache: Option<&Path>, baseline: usize, diag: &Recorder) {
    let Some(path) = cache else { return };
    if encoded.automaton.stats().expanded <= baseline {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match encoded.save_snapshot(path) {
        Ok(()) => {
            diag.emit(|| ObsEvent::SnapshotSaved {
                path: path.display().to_string(),
            });
        }
        Err(e) => {
            diag.emit(|| ObsEvent::Diagnostic {
                detail: format!("automaton: snapshot not saved: {e}"),
            });
        }
    }
}

/// Drain `recorder` and render every buffered event through its `Display`
/// form — the single rendering path for all CLI diagnostics. Lifecycle
/// events (startup, salvage, snapshots) and `--verbose` replay events both
/// flow through here; nothing in the CLI writes diagnostic lines directly.
fn render_events(recorder: &Recorder, out: &mut dyn Write) {
    for timed in recorder.drain() {
        writeln!(out, "{}", timed.event).ok();
    }
}

/// Load a process model: a file path, or `@name` for one of the built-in
/// paper models (the Fig. 1 healthcare process uses message starts and
/// OR-join gateways the textual format cannot express, so serving it
/// requires the compiled-in constructor).
fn load_process(path: &str) -> Result<ProcessModel, CliError> {
    if let Some(builtin) = path.strip_prefix('@') {
        return match builtin {
            "healthcare_treatment" => Ok(bpmn::models::healthcare_treatment()),
            "clinical_trial" => Ok(bpmn::models::clinical_trial()),
            other => Err(fail(format!(
                "unknown builtin process `@{other}` (available: @healthcare_treatment, @clinical_trial)"
            ))),
        };
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| fail(format!("cannot read process file `{path}`: {e}")))?;
    parse_process(&text).map_err(|e| fail(format!("{path}: {e}")))
}

fn load_trail(path: &str) -> Result<AuditTrail, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| fail(format!("cannot read trail file `{path}`: {e}")))?;
    parse_trail(&text).map_err(|e| fail(format!("{path}: {e}")))
}

/// Load a trail in degraded mode: malformed lines are quarantined with
/// typed reasons instead of aborting the audit. Quarantine diagnostics are
/// emitted as structured events on `diag`.
fn load_trail_salvage(path: &str, diag: &Recorder) -> Result<(AuditTrail, Quarantine), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| fail(format!("cannot read trail file `{path}`: {e}")))?;
    Ok(parse_trail_salvage_traced(&text, diag))
}

fn load_policy(path: &str) -> Result<Policy, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| fail(format!("cannot read policy file `{path}`: {e}")))?;
    parse_policy(&text).map_err(|e| fail(format!("{path}: {e}")))
}

/// Run the CLI. `argv` excludes the program name.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    let Some(command) = argv.first() else {
        writeln!(out, "{USAGE}").ok();
        return Ok(2);
    };
    let args = Args::parse(&argv[1..]);
    match command.as_str() {
        "stats" => cmd_stats(&args, out),
        "validate" => cmd_validate(&args, out),
        "explore" => cmd_explore(&args, out),
        "simulate" => cmd_simulate(&args, out),
        "check" => cmd_check(&args, out),
        "audit" => cmd_audit(&args, out),
        "watch" => cmd_watch(&args, out),
        "serve" => cmd_serve(&args, out),
        "trace" => cmd_trace(&args, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").ok();
            Ok(0)
        }
        other => Err(fail(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

fn positional_process(args: &Args) -> Result<ProcessModel, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| fail("missing <process-file> argument"))?;
    load_process(path)
}

fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    let trail = load_trail(args.flag("trail").ok_or_else(|| fail("missing --trail"))?)?;
    write!(out, "{}", audit::trail_stats(&trail)).ok();
    Ok(0)
}

fn cmd_validate(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    let model = positional_process(args)?;
    writeln!(
        out,
        "ok: process `{}` — {} pools, {} tasks, {} flows, well-founded",
        model.name(),
        model.pools().len(),
        model.tasks().count(),
        model.flows().len()
    )
    .ok();
    Ok(0)
}

fn cmd_explore(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    let model = positional_process(args)?;
    let encoded = encode(&model);
    let lts = explore(&encoded.service, ExploreLimits::default())
        .map_err(|e| fail(format!("exploration failed: {e}")))?;
    if args.has("dot") {
        write!(out, "{}", lts.to_dot(&encoded.observability)).ok();
    } else {
        writeln!(
            out,
            "LTS of `{}`: {} states, {} transitions, {} terminal",
            model.name(),
            lts.state_count(),
            lts.edge_count(),
            lts.terminal_states().len()
        )
        .ok();
        for sid in 0..lts.state_count() {
            for (label, next) in lts.edges_from(sid) {
                writeln!(out, "  St{sid} --{label}--> St{next}").ok();
            }
        }
    }
    Ok(0)
}

fn cmd_simulate(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    let model = positional_process(args)?;
    let encoded = encode(&model);
    let cases: usize = args.flag_num("cases", 1)?;
    let seed: u64 = args.flag_num("seed", 42)?;
    let prefix = args.flag("prefix").unwrap_or("C-");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trail = AuditTrail::new();
    for i in 1..=cases {
        let mut cfg = SimConfig::new(format!("subject{i:04}").as_str());
        cfg.start = audit::Timestamp(6_000_000 + i as u64 * 600);
        let entries = simulate_case(&encoded, format!("{prefix}{i}").as_str(), &cfg, &mut rng);
        for e in entries {
            trail.push(e);
        }
    }
    write!(out, "{}", format_trail(&trail)).ok();
    Ok(0)
}

fn cmd_check(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    let process_path = args
        .positional
        .first()
        .ok_or_else(|| fail("missing <process-file> argument"))?
        .clone();
    let model = load_process(&process_path)?;
    let encoded = encode(&model);
    let trail = load_trail(args.flag("trail").ok_or_else(|| fail("missing --trail"))?)?;
    let case = cows::sym(args.flag("case").ok_or_else(|| fail("missing --case"))?);
    let entries = trail.project_case(case);
    if entries.is_empty() {
        return Err(fail(format!("trail has no entries for case `{case}`")));
    }
    let hierarchy = hospital_roles();
    let lenient: usize = args.flag_num("lenient", 0)?;
    let opts = CheckOptions {
        record_trace: args.has("trace"),
        max_case_minutes: args
            .flag("max-minutes")
            .map(|v| v.parse().unwrap_or(u64::MAX)),
        engine: engine_flag(args)?,
        ..CheckOptions::default()
    };

    // Warm-start lifecycle: load before replay, re-save after if replay
    // expanded states the snapshot didn't carry. The direct engine never
    // touches the automaton, so snapshots are skipped entirely there.
    let cache = match opts.engine {
        Engine::Direct => None,
        _ => automaton_cache_file(args, &process_path),
    };
    let diag = Recorder::new();
    let (startup, expanded_at_start) = warm_start(&encoded, cache.as_deref());
    if cache.is_some() {
        diag.emit(|| ObsEvent::Startup {
            purpose: None,
            detail: startup.to_string(),
        });
    }
    render_events(&diag, out);

    if lenient > 0 {
        let res = check_case_lenient(
            &encoded,
            &hierarchy,
            &entries,
            &LenientOptions {
                base: opts,
                max_silent: lenient,
            },
        )
        .map_err(|e| fail(format!("replay failed: {e}")))?;
        save_if_grown(&encoded, cache.as_deref(), expanded_at_start, &diag);
        render_events(&diag, out);
        writeln!(out, "case {case}: {:?}", res.verdict).ok();
        if !res.assumed.is_empty() {
            writeln!(out, "assumed silent activities: {:?}", res.assumed).ok();
        }
        return Ok(i32::from(!res.verdict.is_compliant()));
    }

    let res = check_case(&encoded, &hierarchy, &entries, &opts)
        .map_err(|e| fail(format!("replay failed: {e}")))?;
    save_if_grown(&encoded, cache.as_deref(), expanded_at_start, &diag);
    render_events(&diag, out);
    for step in &res.steps {
        let e = entries[step.entry_index];
        writeln!(
            out,
            "  entry {:2} {} {} -> {} configuration(s) {:?}",
            step.entry_index, e.role, e.task, step.configurations, step.token_tasks
        )
        .ok();
    }
    writeln!(out, "case {case}: {:?}", res.verdict).ok();
    Ok(i32::from(!res.verdict.is_compliant()))
}

/// Everything `audit` and `watch` share: the engine-configured auditor
/// plus the handles the snapshot lifecycle needs after the run.
struct AuditorSetup {
    auditor: Auditor,
    /// `Auditor::new` consumes the registry, but the compiled automaton is
    /// shared behind `Arc`s, so warm-starting before construction and
    /// re-saving after the run works through these handles.
    snapshots: Vec<(Arc<RegisteredProcess>, PathBuf, usize)>,
    startups: Vec<StartupStats>,
}

/// Build the process registry, case map, policy, and engine from the
/// common `--process/--map/--policy/--engine` flags.
fn build_auditor(args: &Args, diag: &Recorder) -> Result<AuditorSetup, CliError> {
    let mut registry = ProcessRegistry::new();
    let processes = args.flag_all("process");
    if processes.is_empty() {
        return Err(fail("at least one --process <purpose>=<file> is required"));
    }
    let engine = engine_flag(args)?;
    let mut snapshots: Vec<(Arc<RegisteredProcess>, PathBuf, usize)> = Vec::new();
    let mut startups: Vec<StartupStats> = Vec::new();
    for spec in processes {
        let (purpose, path) = spec
            .split_once('=')
            .ok_or_else(|| fail(format!("--process `{spec}`: expected <purpose>=<file>")))?;
        registry.register(purpose, load_process(path)?);
        let cache = match engine {
            Engine::Direct => None,
            _ => automaton_cache_file(args, path),
        };
        if let (Some(cache), Some(rp)) = (cache, registry.process_for(cows::sym(purpose))) {
            let (startup, expanded_at_start) = warm_start(&rp.encoded, Some(&cache));
            let purpose = purpose.to_string();
            diag.emit(|| ObsEvent::Startup {
                purpose: Some(purpose),
                detail: startup.to_string(),
            });
            startups.push(startup);
            snapshots.push((rp.clone(), cache, expanded_at_start));
        }
    }
    for spec in args.flag_all("map") {
        let (prefix, purpose) = spec
            .split_once('=')
            .ok_or_else(|| fail(format!("--map `{spec}`: expected <prefix>=<purpose>")))?;
        registry.add_case_prefix(prefix, purpose);
    }
    let policy = match args.flag("policy") {
        Some(path) => load_policy(path)?,
        None => Policy::new(),
    };
    let context = PolicyContext::new(hospital_roles());
    let mut auditor = Auditor::new(registry, policy, context);
    auditor.options.engine = engine;
    Ok(AuditorSetup {
        auditor,
        snapshots,
        startups,
    })
}

fn cmd_audit(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    let trail_path = args.flag("trail").ok_or_else(|| fail("missing --trail"))?;
    let durability = durability_flag(args)?;
    let salvage = args.has("salvage");
    if args.flag("quarantine-out").is_some() && !salvage {
        return Err(fail("--quarantine-out requires --salvage"));
    }
    // Lifecycle recorder: startup, salvage, and snapshot diagnostics all
    // become structured events, rendered at the same points the old ad-hoc
    // writeln!s sat so the visible output is unchanged.
    let diag = Recorder::new();
    let (trail, quarantine) = if salvage {
        let (trail, q) = load_trail_salvage(trail_path, &diag)?;
        (trail, Some(q))
    } else {
        (load_trail(trail_path)?, None)
    };
    if let Some(q) = &quarantine {
        if q.is_clean() {
            // The traced parser stays silent on a clean parse; the CLI still
            // confirms that degraded mode was active.
            diag.emit(|| ObsEvent::Degraded {
                detail: q.to_string(),
            });
        }
        if let Some(path) = args.flag("quarantine-out") {
            write_export(path, q.render().as_bytes(), durability, "quarantine report")?;
            diag.emit(|| ObsEvent::QuarantineReport {
                path: path.to_string(),
            });
        }
    }
    render_events(&diag, out);
    let AuditorSetup {
        mut auditor,
        snapshots,
        startups,
    } = build_auditor(args, &diag)?;
    render_events(&diag, out);

    // Observability surface: metrics registry, evidence traces, verbose
    // replay event stream.
    let verbose = args.has("verbose");
    let trace_out = args.flag("trace-out");
    let explain = args.flag("explain");
    let metrics = (args.flag("metrics-out").is_some() || args.flag("prom-out").is_some())
        .then(|| Arc::new(obs::Registry::new()));
    if let Some(registry) = &metrics {
        purpose_control::register_audit_metrics(registry);
        audit::trail_stats(&trail).export_into(registry);
    }
    auditor.metrics = metrics.clone();
    auditor.options.record_evidence = trace_out.is_some() || explain.is_some();
    if verbose {
        auditor.recorder = Recorder::new();
        cows::semantics::set_cache_recorder(auditor.recorder.clone());
    }
    if let Some(m) = args.flag("max-minutes") {
        auditor.options.max_case_minutes =
            Some(m.parse().map_err(|_| fail("--max-minutes: not a number"))?);
    }
    if let Some(ms) = args.flag("case-deadline-ms") {
        auditor.options.case_deadline_ms = Some(
            ms.parse()
                .map_err(|_| fail("--case-deadline-ms: not a number"))?,
        );
    }
    if let Some(n) = args.flag("case-step-budget") {
        auditor.options.max_explored = Some(
            n.parse()
                .map_err(|_| fail("--case-step-budget: not a number"))?,
        );
    }

    let threads: usize = args.flag_num("threads", 1)?;
    let report = if let Some(obj) = args.flag("object") {
        let object: policy::ObjectId = obj.parse().map_err(|e| fail(format!("--object: {e}")))?;
        auditor.audit_object(&trail, &object)
    } else if threads > 1 {
        audit_parallel(&auditor, &trail, threads)
    } else {
        auditor.audit(&trail)
    };

    for (rp, cache, expanded_at_start) in &snapshots {
        save_if_grown(&rp.encoded, Some(cache), *expanded_at_start, &diag);
    }
    render_events(&diag, out);
    if verbose {
        // Replay detail events (case lifecycle, per-entry steps, automaton
        // expansions, cache evictions) share the lifecycle rendering path.
        render_events(&auditor.recorder, out);
        cows::semantics::set_cache_recorder(Recorder::noop());
    }
    write!(out, "{report}").ok();
    for case in &report.cases {
        let line = match &case.outcome {
            CaseOutcome::Compliant { can_complete } => format!(
                "compliant ({})",
                if *can_complete {
                    "complete"
                } else {
                    "in progress"
                }
            ),
            CaseOutcome::Infringement {
                infringement,
                severity,
            } => format!(
                "INFRINGEMENT at entry {} (severity {:.2})",
                infringement.entry_index, severity.score
            ),
            CaseOutcome::Unresolved(e) => format!("unresolved: {e}"),
            CaseOutcome::Failed(e) => format!("failed: {e}"),
            CaseOutcome::Inconclusive { reason } => format!("inconclusive: {reason}"),
        };
        writeln!(
            out,
            "  {:<8} [{} entries] {line}",
            case.case.to_string(),
            case.entries
        )
        .ok();
    }

    if let Some(name) = explain {
        let result = report
            .cases
            .iter()
            .find(|c| c.case.to_string() == name)
            .ok_or_else(|| fail(format!("--explain: case `{name}` not found in this audit")))?;
        match auditor.case_evidence(&trail, result) {
            Some(ev) => write!(out, "{}", ev.render_explain()).ok(),
            None => writeln!(
                out,
                "case {name}: no evidence trace (outcome: {})",
                purpose_control::auditor::outcome_label(&result.outcome)
            )
            .ok(),
        };
    }
    if let Some(path) = trace_out {
        let mut jsonl = String::new();
        for case in &report.cases {
            if let Some(ev) = auditor.case_evidence(&trail, case) {
                jsonl.push_str(&ev.to_json_line());
                jsonl.push('\n');
            }
        }
        write_export(path, jsonl.as_bytes(), durability, "trace file")?;
    }
    if let Some(registry) = &metrics {
        for purpose in auditor.registry.purposes() {
            if let Some(rp) = auditor.registry.process_for(purpose) {
                rp.encoded.automaton.stats().export_into(registry);
                rp.trie.stats().export_into(registry);
            }
        }
        for startup in &startups {
            startup.export_into(registry);
        }
        cows::semantics::cache_stats().export_into(registry);
        registry.set_counter(
            "recorder_events_dropped",
            auditor.recorder.dropped() + diag.dropped(),
        );
        if let Some(path) = args.flag("metrics-out") {
            write_export(
                path,
                registry.to_json().as_bytes(),
                durability,
                "metrics file",
            )?;
        }
        if let Some(path) = args.flag("prom-out") {
            write_export(
                path,
                registry.to_prometheus().as_bytes(),
                durability,
                "metrics file",
            )?;
        }
    }
    Ok(i32::from(report.infringing_cases() > 0))
}

/// Cooperative shutdown for `watch --follow`: SIGTERM/SIGINT set a flag
/// the poll loop checks between polls, so the monitor always checkpoints
/// before exiting. The handler only stores an atomic — async-signal-safe.
#[cfg(unix)]
mod shutdown {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);
    static USR1: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_usr1(_signum: i32) {
        USR1.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    /// SIGUSR1 = "dump the flight recorder now" (handled by the serve
    /// poll loop; the handler only flips a flag, as signal rules demand).
    pub fn install_usr1() {
        #[cfg(target_os = "linux")]
        const SIGUSR1: i32 = 10;
        #[cfg(not(target_os = "linux"))]
        const SIGUSR1: i32 = 30;
        unsafe {
            signal(SIGUSR1, on_usr1);
        }
    }

    pub fn requested() -> bool {
        STOP.load(Ordering::SeqCst)
    }

    /// One-shot read of a pending SIGUSR1 (swap-style: each delivery is
    /// honored exactly once).
    pub fn usr1_requested() -> bool {
        USR1.swap(false, Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod shutdown {
    pub fn install() {}
    pub fn install_usr1() {}
    pub fn requested() -> bool {
        false
    }
    pub fn usr1_requested() -> bool {
        false
    }
}

fn cmd_watch(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    let trail_path = args
        .positional
        .first()
        .ok_or_else(|| fail("missing <trail-file> argument"))?
        .clone();
    let diag = Recorder::new();
    let AuditorSetup {
        auditor, snapshots, ..
    } = build_auditor(args, &diag)?;

    let defaults = LiveConfig::default();
    let config = LiveConfig {
        max_open_cases: args.flag_num("max-open-cases", defaults.max_open_cases)?,
        max_entries_per_case: args
            .flag_num("max-entries-per-case", defaults.max_entries_per_case)?,
        idle_eviction: match args.flag("idle-minutes") {
            None => defaults.idle_eviction,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| fail(format!("--idle-minutes: `{v}` is not a valid number")))?,
            ),
        },
        spill_dir: args.flag("spill-dir").map(PathBuf::from),
        mem_spill_bytes: args
            .flag_num("spill-mem-kib", defaults.mem_spill_bytes / 1024)?
            .saturating_mul(1024),
        eviction_debounce: defaults.eviction_debounce,
        durability: durability_flag(args)?,
    };
    let durability = config.durability;
    let shards: usize = args.flag_num("shards", 1)?;
    let checkpoint_path = args.flag("checkpoint").map(PathBuf::from);

    // Resume from a previous run's checkpoint when one exists. Like the
    // automaton snapshots this is fail-open: a stale or unreadable
    // checkpoint means a cold start with the reason printed — replaying
    // the whole trail again is always correct, just slower.
    let (mut monitor, start_offset) = match checkpoint_path.as_deref().filter(|p| p.exists()) {
        Some(path) => {
            let outcome = std::fs::read(path)
                .map_err(|e| format!("{e}"))
                .and_then(|bytes| {
                    ShardedMonitor::restore(auditor.clone(), &config, shards, &bytes)
                        .map_err(|e| format!("{e}"))
                });
            match outcome {
                Ok((monitor, offset)) => {
                    let detail = format!(
                        "watch: resumed from checkpoint `{}` at byte offset {offset} ({} cases tracked)",
                        path.display(),
                        monitor.tracked_cases(),
                    );
                    diag.emit(|| ObsEvent::Diagnostic { detail });
                    (monitor, offset)
                }
                Err(reason) => {
                    let detail = format!(
                        "watch: checkpoint `{}` not usable ({reason}); starting cold",
                        path.display()
                    );
                    diag.emit(|| ObsEvent::Diagnostic { detail });
                    (ShardedMonitor::new(auditor, &config, shards), 0)
                }
            }
        }
        None => (ShardedMonitor::new(auditor, &config, shards), 0),
    };

    let follow = args.has("follow");
    let poll_ms: u64 = args.flag_num("poll-ms", 200)?;
    shutdown::install();
    let mut reader = TailReader::with_offset(&trail_path, start_offset);
    render_events(&diag, out);

    loop {
        let before = reader.offset();
        let chunk = reader
            .poll()
            .map_err(|e| fail(format!("cannot tail `{trail_path}`: {e}")))?;
        if chunk.truncated {
            diag.emit(|| ObsEvent::Diagnostic {
                detail: "watch: trail truncated or rotated; restarting from byte 0".to_string(),
            });
        }
        if !chunk.quarantine.is_clean() {
            diag.emit(|| ObsEvent::Degraded {
                detail: chunk.quarantine.to_string(),
            });
        }
        let events = monitor
            .ingest(chunk.trail.entries())
            .map_err(|e| fail(format!("live replay failed: {e}")))?;
        render_events(&diag, out);
        for ev in &events {
            if let LiveEvent::Alarm {
                case,
                infringement,
                severity,
            } = ev
            {
                writeln!(
                    out,
                    "ALARM {case} at case entry {} (severity {:.2})",
                    infringement.entry_index, severity.score
                )
                .ok();
            }
        }
        let progressed = reader.offset() != before;
        if progressed {
            // Completed cases retire; a case whose completion check errors
            // stays tracked and is reported without stopping the stream.
            let (_retired, errors) = monitor.retire_completed();
            for (case, e) in errors {
                writeln!(out, "case {case}: completion check failed: {e}").ok();
            }
            monitor
                .maintain()
                .map_err(|e| fail(format!("idle sweep failed: {e}")))?;
        }
        if shutdown::requested() {
            break;
        }
        if !progressed {
            if !follow {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(poll_ms));
        }
    }

    if let Some(path) = &checkpoint_path {
        let bytes = monitor
            .checkpoint(reader.offset())
            .map_err(|e| fail(format!("cannot checkpoint monitor state: {e}")))?;
        atomic_write_sync(path, &bytes, durability)
            .map_err(|e| fail(format!("cannot write checkpoint `{}`: {e}", path.display())))?;
        writeln!(
            out,
            "checkpoint: {} cases tracked at byte offset {} -> {}",
            monitor.tracked_cases(),
            reader.offset(),
            path.display()
        )
        .ok();
    }
    for (rp, cache, expanded_at_start) in &snapshots {
        save_if_grown(&rp.encoded, Some(cache), *expanded_at_start, &diag);
    }
    render_events(&diag, out);

    if let Some(path) = args.flag("metrics-out") {
        let registry = obs::Registry::new();
        purpose_control::register_audit_metrics(&registry);
        monitor.flush_metrics(&registry);
        write_export(
            path,
            registry.to_json().as_bytes(),
            durability,
            "metrics file",
        )?;
    }

    let stats = monitor.stats();
    writeln!(
        out,
        "watched {} entries, {} open / {} tracked cases: {} alarms, {} after-alarm, \
         {} unresolved, {} retired, {} evictions, {} rehydrations",
        stats.entries,
        monitor.open_cases(),
        monitor.tracked_cases(),
        stats.alarms,
        stats.after_alarm,
        stats.unresolved,
        stats.retired,
        stats.evictions,
        stats.rehydrations
    )
    .ok();
    writeln!(
        out,
        "spill: {} tier hits, {} disk demotions, {} log bytes, {} compactions, \
         {} evictions avoided, {} cap rebalances",
        stats.spill_tier_hits,
        stats.spill_disk_demotions,
        stats.spill_log_bytes,
        stats.spill_compactions,
        stats.evictions_avoided,
        stats.cap_rebalances
    )
    .ok();
    Ok(i32::from(!monitor.alarms().is_empty()))
}

/// `(span, parent, stage, start_us, dur_us, case)` for one loaded span.
type LoadedSpan = (String, Option<String>, String, u64, u64, Option<String>);

/// One trace loaded back from a spans JSONL file (`--trace-out`).
struct LoadedTrace {
    trace: String,
    dur_us: u64,
    kept: String,
    spans: Vec<LoadedSpan>,
}

fn load_spans_file(path: &str) -> Result<Vec<LoadedTrace>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| fail(format!("cannot read spans file `{path}`: {e}")))?;
    let mut traces = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = obs::parse_json(line)
            .map_err(|e| fail(format!("{path}:{}: not a span tree: {e}", lineno + 1)))?;
        let field =
            |v: &obs::JsonValue, k: &str| v.get(k).and_then(|x| x.as_str()).map(String::from);
        let num =
            |v: &obs::JsonValue, k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0) as u64;
        let spans = doc
            .get("spans")
            .and_then(|s| s.as_array())
            .map(|items| {
                items
                    .iter()
                    .map(|s| {
                        (
                            field(s, "span").unwrap_or_default(),
                            field(s, "parent"),
                            field(s, "stage").unwrap_or_default(),
                            num(s, "start_us"),
                            num(s, "dur_us"),
                            field(s, "case"),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        traces.push(LoadedTrace {
            trace: field(&doc, "trace")
                .ok_or_else(|| fail(format!("{path}:{}: missing trace id", lineno + 1)))?,
            dur_us: num(&doc, "dur_us"),
            kept: field(&doc, "kept").unwrap_or_default(),
            spans,
        });
    }
    Ok(traces)
}

/// Render one trace as an indented span tree (children under parents,
/// siblings by start time). Orphan spans — a parent id that closed into a
/// different trace or never closed — are listed explicitly: the e2e suite
/// asserts there are none.
fn render_trace(t: &LoadedTrace, out: &mut dyn Write) {
    writeln!(
        out,
        "trace {} dur={}us kept={} spans={}",
        t.trace,
        t.dur_us,
        t.kept,
        t.spans.len()
    )
    .ok();
    let ids: std::collections::BTreeSet<&str> = t.spans.iter().map(|s| s.0.as_str()).collect();
    let mut by_start: Vec<usize> = (0..t.spans.len()).collect();
    by_start.sort_by_key(|&i| t.spans[i].3);
    fn render_children(
        t: &LoadedTrace,
        order: &[usize],
        parent: Option<&str>,
        depth: usize,
        out: &mut dyn Write,
    ) {
        for &i in order {
            let (span, p, stage, start_us, dur_us, case) = &t.spans[i];
            if p.as_deref() != parent {
                continue;
            }
            let case = case
                .as_deref()
                .map(|c| format!(" case={c}"))
                .unwrap_or_default();
            writeln!(
                out,
                "{:indent$}{stage} +{start_us}us {dur_us}us{case}",
                "",
                indent = 2 + depth * 2
            )
            .ok();
            render_children(t, order, Some(span), depth + 1, out);
        }
    }
    render_children(t, &by_start, None, 0, out);
    for &i in &by_start {
        let (_, parent, stage, ..) = &t.spans[i];
        if let Some(p) = parent {
            if !ids.contains(p.as_str()) {
                writeln!(out, "  ORPHAN {stage} (parent {p} not in trace)").ok();
            }
        }
    }
}

fn cmd_trace(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    let file = args
        .flag("file")
        .ok_or_else(|| fail("missing --file <spans.jsonl> (the serve --trace-out file)"))?;
    let traces = load_spans_file(file)?;
    if let Some(id) = args.positional.first() {
        let matched: Vec<&LoadedTrace> = traces.iter().filter(|t| &t.trace == id).collect();
        if matched.is_empty() {
            return Err(fail(format!("trace `{id}` not found in {file}")));
        }
        for t in matched {
            render_trace(t, out);
        }
        return Ok(0);
    }
    let slowest: usize = args.flag_num("slowest", 0)?;
    if slowest == 0 {
        return Err(fail("pass a <trace-id> or --slowest <N>"));
    }
    let mut by_dur: Vec<&LoadedTrace> = traces.iter().collect();
    by_dur.sort_by_key(|t| std::cmp::Reverse(t.dur_us));
    writeln!(out, "{} traces in {file}", by_dur.len()).ok();
    for t in by_dur.into_iter().take(slowest) {
        render_trace(t, out);
    }
    Ok(0)
}

/// Appends kept span trees as JSONL through the durable write path
/// (`core::durable`), so a crash mid-append is recoverable and the fsync
/// cadence follows the same `--durability` policy as every other artifact.
struct SpanWriter {
    file: Option<purpose_control::durable::DurableFile>,
    offset: u64,
}

impl SpanWriter {
    fn open(path: Option<&Path>, policy: SyncPolicy) -> Result<SpanWriter, CliError> {
        let file = match path {
            None => None,
            Some(path) => {
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| fail(format!("--trace-out {}: {e}", parent.display())))?;
                }
                Some(
                    purpose_control::durable::DurableFile::create(path, policy)
                        .map_err(|e| fail(format!("--trace-out {}: {e}", path.display())))?,
                )
            }
        };
        Ok(SpanWriter { file, offset: 0 })
    }

    fn append(&mut self, trees: &[obs::TraceTree]) -> Result<(), CliError> {
        let Some(file) = &mut self.file else {
            return Ok(());
        };
        for tree in trees {
            let mut line = tree.to_json_line();
            line.push('\n');
            file.write_at(self.offset, line.as_bytes())
                .map_err(|e| fail(format!("trace out: {e}")))?;
            self.offset += line.len() as u64;
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), CliError> {
        if let Some(file) = &mut self.file {
            file.sync().map_err(|e| fail(format!("trace out: {e}")))?;
        }
        Ok(())
    }
}

fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<i32, CliError> {
    let tenants_flag = args
        .flag("tenants")
        .ok_or_else(|| fail("missing --tenants <name,name,...>"))?;
    let tenant_names: Vec<&str> = tenants_flag
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect();
    if tenant_names.is_empty() {
        return Err(fail("--tenants: at least one tenant name is required"));
    }
    if tenant_names.iter().any(|t| {
        !t.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    }) {
        return Err(fail(
            "--tenants: names must be alphanumeric (plus `-`/`_`) — they become URL segments and checkpoint file names",
        ));
    }

    let diag = Recorder::new();
    // One shared process catalog; each tenant gets its own monitor over a
    // clone of the auditor (the compiled automata stay shared via Arc, so
    // N tenants warm-start from the same snapshot load).
    let AuditorSetup {
        auditor, snapshots, ..
    } = build_auditor(args, &diag)?;
    render_events(&diag, out);

    let defaults = LiveConfig::default();
    let live = LiveConfig {
        max_open_cases: args.flag_num("max-open-cases", defaults.max_open_cases)?,
        max_entries_per_case: args
            .flag_num("max-entries-per-case", defaults.max_entries_per_case)?,
        durability: durability_flag(args)?,
        ..LiveConfig::default()
    };
    // Tracing is on when either --trace-sample or --trace-out is given:
    // sample 0.0 still keeps slow and alarmed/quarantined traces (the
    // tail sampler's always-keep classes).
    let trace_sample: f64 = args.flag_num("trace-sample", 0.0)?;
    if !(0.0..=1.0).contains(&trace_sample) {
        return Err(fail("--trace-sample: must be in 0.0..=1.0"));
    }
    let trace_slow_ms: u64 = args.flag_num("trace-slow-ms", 100)?;
    let trace_out = args.flag("trace-out").map(PathBuf::from);
    let tracer = if args.has("trace-sample") || trace_out.is_some() {
        obs::Tracer::sampled(trace_sample, trace_slow_ms.saturating_mul(1000))
    } else {
        obs::Tracer::noop()
    };
    if let Some(dir) = args.flag("flight-dir") {
        obs::flight::install(
            Some(std::path::Path::new(dir)),
            obs::flight::DEFAULT_WINDOW_SECS,
            obs::flight::DEFAULT_CAPACITY,
        );
        obs::flight::install_panic_hook();
        obs::flight::record(|| ObsEvent::Diagnostic {
            detail: format!("serve: flight recorder armed, dumps to {dir}/flight.jsonl"),
        });
    }

    let default_limits = serve::http::Limits::default();
    let config = serve::ServeConfig {
        addr: args.flag("addr").unwrap_or("127.0.0.1:0").to_string(),
        watermark: args.flag_num("watermark", 100_000u64)?,
        checkpoint_dir: args.flag("checkpoint-dir").map(PathBuf::from),
        shards: args.flag_num("shards", 4)?,
        live,
        limits: serve::http::Limits {
            max_body_bytes: args
                .flag_num("max-body-kib", default_limits.max_body_bytes / 1024)?
                .saturating_mul(1024),
            io_timeout: std::time::Duration::from_secs(
                args.flag_num("io-timeout", default_limits.io_timeout.as_secs())?,
            ),
            ..default_limits
        },
        tracer: tracer.clone(),
        access_log: args.flag("access-log").map(PathBuf::from),
    };
    let durability = config.live.durability;

    let specs = tenant_names
        .iter()
        .map(|name| serve::TenantSpec {
            name: name.to_string(),
            auditor: auditor.clone(),
        })
        .collect();
    let server = serve::Server::start(specs, config).map_err(|e| fail(format!("serve: {e}")))?;
    for issue in server.restore_issues() {
        writeln!(out, "serve: {issue}").ok();
    }
    // The harness and any process supervisor discover the ephemeral port
    // from this exact line; keep its shape stable.
    writeln!(out, "serving on {}", server.addr()).ok();
    out.flush().ok();

    shutdown::install();
    shutdown::install_usr1();
    let mut spans = SpanWriter::open(trace_out.as_deref(), durability)?;
    let mut ticks: u64 = 0;
    while !shutdown::requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
        ticks += 1;
        spans.append(&tracer.drain())?;
        let dumped_on_signal = shutdown::usr1_requested();
        if dumped_on_signal {
            match obs::flight::dump("SIGUSR1") {
                Some(path) => writeln!(out, "serve: flight dump -> {}", path.display()).ok(),
                None => writeln!(out, "serve: SIGUSR1 but no --flight-dir configured").ok(),
            };
            out.flush().ok();
        }
        // Persist the black box every ~500ms: a SIGKILL cannot run a dump,
        // so the last periodic dump is the postmortem it leaves behind. A
        // tick that just honored SIGUSR1 skips the periodic rewrite so the
        // operator-requested dump stays on disk at least one full period.
        if !dumped_on_signal && ticks.is_multiple_of(10) && obs::flight::installed() {
            obs::flight::dump("periodic");
        }
    }
    writeln!(out, "serve: shutdown requested; draining").ok();
    let report = server.shutdown().map_err(|e| fail(format!("serve: {e}")))?;
    spans.append(&tracer.drain())?;
    spans.close()?;
    if obs::flight::installed() {
        obs::flight::dump("shutdown");
    }
    for (tenant, offset, path) in &report.checkpoints {
        match path {
            Some(path) => writeln!(
                out,
                "serve: tenant {tenant} checkpointed at offset {offset} -> {}",
                path.display()
            )
            .ok(),
            None => writeln!(out, "serve: tenant {tenant} drained at offset {offset}").ok(),
        };
    }
    for tenant in &report.failed {
        writeln!(out, "serve: tenant {tenant}: worker failed before drain").ok();
    }
    for (rp, cache, expanded_at_start) in &snapshots {
        save_if_grown(&rp.encoded, Some(cache), *expanded_at_start, &diag);
    }
    render_events(&diag, out);
    Ok(i32::from(!report.failed.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORDER: &str = "\
process order_fulfillment
pool Clerk
  start Start
  task Receive
  task Pick
  task Ship
  end Done
flows
  Start -> Receive -> Pick -> Ship -> Done
";

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn run_capture(v: &[&str]) -> (i32, String) {
        let mut buf = Vec::new();
        let code = run(&args(v), &mut buf).unwrap();
        (code, String::from_utf8(buf).unwrap())
    }

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("purposectl-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn no_args_prints_usage() {
        let (code, out) = run_capture(&[]);
        assert_eq!(code, 2);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let mut buf = Vec::new();
        let err = run(&args(&["frobnicate"]), &mut buf).unwrap_err();
        assert!(err.message.contains("unknown command"));
    }

    #[test]
    fn validate_ok() {
        let p = write_temp("order.bpmn", ORDER);
        let (code, out) = run_capture(&["validate", &p]);
        assert_eq!(code, 0);
        assert!(out.contains("ok: process `order_fulfillment`"));
        assert!(out.contains("3 tasks"));
    }

    #[test]
    fn validate_rejects_bad_model() {
        let p = write_temp(
            "bad.bpmn",
            "process p\npool A\n  task T\n  end E\nflows\n  T -> E\n",
        );
        let mut buf = Vec::new();
        let err = run(&args(&["validate", &p]), &mut buf).unwrap_err();
        assert!(err.message.contains("no start event"));
    }

    #[test]
    fn explore_lists_transitions() {
        let p = write_temp("order2.bpmn", ORDER);
        let (code, out) = run_capture(&["explore", &p]);
        assert_eq!(code, 0);
        assert!(out.contains("Clerk.Receive"));
    }

    #[test]
    fn explore_dot_output() {
        let p = write_temp("order3.bpmn", ORDER);
        let (code, out) = run_capture(&["explore", &p, "--dot"]);
        assert_eq!(code, 0);
        assert!(out.starts_with("digraph lts {"));
    }

    #[test]
    fn simulate_then_check_round_trip() {
        let p = write_temp("order4.bpmn", ORDER);
        let (code, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "2", "--seed", "7", "--prefix", "ORD-",
        ]);
        assert_eq!(code, 0);
        let t = write_temp("order4.trail", &trail_text);
        let (code, out) = run_capture(&["check", &p, "--trail", &t, "--case", "ORD-1"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("Compliant"));
    }

    #[test]
    fn check_detects_infringements_with_exit_code() {
        let p = write_temp("order5.bpmn", ORDER);
        let t = write_temp(
            "bad.trail",
            "carol Clerk read [A]Order Ship ORD-9 202607060900 success\n",
        );
        let (code, out) = run_capture(&["check", &p, "--trail", &t, "--case", "ORD-9"]);
        assert_eq!(code, 1);
        assert!(out.contains("Infringement"));
    }

    #[test]
    fn check_lenient_bridges_gaps() {
        let p = write_temp("order6.bpmn", ORDER);
        // Pick unlogged.
        let t = write_temp(
            "gap.trail",
            "carol Clerk read [A]Order Receive ORD-1 202607060900 success\n\
             carol Clerk read [A]Order Ship ORD-1 202607060910 success\n",
        );
        let (strict, _) = run_capture(&["check", &p, "--trail", &t, "--case", "ORD-1"]);
        assert_eq!(strict, 1);
        let (code, out) = run_capture(&[
            "check",
            &p,
            "--trail",
            &t,
            "--case",
            "ORD-1",
            "--lenient",
            "1",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("assumed silent activities"));
        assert!(out.contains("Clerk.Pick"));
    }

    #[test]
    fn audit_full_pipeline() {
        let p = write_temp("order7.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "3", "--seed", "1", "--prefix", "ORD-",
        ]);
        let t = write_temp("order7.trail", &trail_text);
        let pol = write_temp(
            "order.policy",
            "allow role:Clerk read [*]Order for fulfillment\n\
             allow role:Clerk write [*]Order for fulfillment\n",
        );
        let (code, out) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--policy",
            &pol,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("3 compliant"));
    }

    #[test]
    fn audit_flags_infringements() {
        let p = write_temp("order8.bpmn", ORDER);
        let t = write_temp(
            "order8.trail",
            "carol Clerk read [A]Order Ship ORD-1 202607060900 success\n",
        );
        let (code, out) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
        ]);
        assert_eq!(code, 1);
        assert!(out.contains("INFRINGEMENT"));
    }

    #[test]
    fn watch_tails_a_static_trail_and_reports_alarms() {
        let p = write_temp("order20.bpmn", ORDER);
        // ORD-1 starts correctly and stays open; ORD-2 ships first — a
        // live deviation the monitor must flag at its very first entry.
        let t = write_temp(
            "order20.trail",
            "carol Clerk read [A]Order Receive ORD-1 202607060900 success\n\
             carol Clerk read [A]Order Ship ORD-2 202607060901 success\n",
        );
        let (code, out) = run_capture(&[
            "watch",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("ALARM ORD-2"), "{out}");
        assert!(!out.contains("ALARM ORD-1"), "{out}");
        assert!(out.contains("watched 2 entries"), "{out}");
        assert!(out.contains("1 alarms"), "{out}");
    }

    #[test]
    fn watch_checkpoints_and_resumes_without_duplicate_alarms() {
        let p = write_temp("order21.bpmn", ORDER);
        let dir = std::env::temp_dir().join("purposectl-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let t = dir.join(format!("order21-{pid}.trail"));
        let ck = dir.join(format!("order21-{pid}.ckpt"));
        let _ = std::fs::remove_file(&ck);
        std::fs::write(
            &t,
            "carol Clerk read [A]Order Ship ORD-9 202607060900 success\n",
        )
        .unwrap();
        let argv = args(&[
            "watch",
            &t.to_string_lossy(),
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--checkpoint",
            &ck.to_string_lossy(),
            "--shards",
            "2",
        ]);
        let mut buf = Vec::new();
        let code = run(&argv, &mut buf).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("ALARM ORD-9"), "{out}");
        assert!(ck.exists(), "checkpoint written at EOF");

        // Append a post-alarm entry plus a fresh compliant case and run
        // again: the restored monitor must pick up at the recorded byte
        // offset and must not re-raise the old alarm.
        let mut f = std::fs::OpenOptions::new().append(true).open(&t).unwrap();
        use std::io::Write as _;
        f.write_all(
            b"carol Clerk read [A]Order Ship ORD-9 202607060905 success\n\
              carol Clerk read [A]Order Receive ORD-10 202607060906 success\n",
        )
        .unwrap();
        drop(f);
        let mut buf = Vec::new();
        let code = run(&argv, &mut buf).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert_eq!(code, 1, "restored alarm still sets the exit code: {out}");
        assert!(out.contains("resumed from checkpoint"), "{out}");
        assert!(!out.contains("ALARM ORD-9"), "no duplicate alarm: {out}");
        assert!(out.contains("1 after-alarm"), "{out}");
        let _ = std::fs::remove_file(&t);
        let _ = std::fs::remove_file(&ck);
    }

    #[test]
    fn watch_metrics_export_counts_the_stream() {
        let p = write_temp("order22.bpmn", ORDER);
        let t = write_temp(
            "order22.trail",
            "carol Clerk read [A]Order Receive ORD-1 202607060900 success\n\
             carol Clerk read [A]Order Pick ORD-1 202607060905 success\n",
        );
        let mfile = write_temp("order22.metrics.json", "");
        let (code, out) = run_capture(&[
            "watch",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--metrics-out",
            &mfile,
        ]);
        assert_eq!(code, 0, "{out}");
        let json = std::fs::read_to_string(&mfile).unwrap();
        assert!(json.contains("\"live_entries_total\": 2"), "{json}");
        assert!(json.contains("\"live_alarms_total\": 0"), "{json}");
        assert!(json.contains("\"live_open_cases\""), "{json}");
    }

    #[test]
    fn audit_salvage_survives_corruption_and_preserves_unaffected_verdicts() {
        let p = write_temp("order13.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "3", "--seed", "9", "--prefix", "ORD-",
        ]);
        let t = write_temp("order13.trail", &trail_text);
        let base = |trail: &str| {
            args(&[
                "audit",
                "--trail",
                trail,
                "--process",
                &format!("fulfillment={p}"),
                "--map",
                "ORD-=fulfillment",
            ])
        };
        let mut buf = Vec::new();
        let clean_code = run(&base(&t), &mut buf).unwrap();
        let clean_out = String::from_utf8(buf).unwrap();
        assert_eq!(clean_code, 0, "{clean_out}");

        // Corrupt every ORD-2 line (extra column) and append a junk line.
        let mut corrupted: String = trail_text
            .lines()
            .map(|l| {
                if l.contains(" ORD-2 ") {
                    format!("{l} stray-column\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        corrupted.push_str("this is not an audit record\n");
        let t2 = write_temp("order13-corrupt.trail", &corrupted);

        // Strict mode aborts on the damage...
        let mut buf = Vec::new();
        let err = run(&base(&t2), &mut buf).unwrap_err();
        assert!(
            err.message.contains("expected 8 columns"),
            "{}",
            err.message
        );

        // ...salvage mode audits what survived.
        let qfile = write_temp("order13.quarantine", "");
        let mut argv = base(&t2);
        argv.extend(args(&["--salvage", "--quarantine-out", &qfile]));
        let mut buf = Vec::new();
        let code = run(&argv, &mut buf).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("degraded mode:"), "{out}");
        assert!(out.contains("bad-column-count"), "{out}");
        assert!(out.contains("quarantine report written to"), "{out}");

        // Unaffected cases render byte-identically to the clean run; the
        // fully corrupted case vanishes rather than getting a fake verdict.
        let case_line = |text: &str, case: &str| {
            text.lines()
                .find(|l| l.trim_start().starts_with(&format!("{case} ")))
                .map(str::to_string)
        };
        for case in ["ORD-1", "ORD-3"] {
            let clean = case_line(&clean_out, case)
                .unwrap_or_else(|| panic!("no {case} line in clean output"));
            let salvaged =
                case_line(&out, case).unwrap_or_else(|| panic!("no {case} line in salvage output"));
            assert_eq!(clean, salvaged, "verdict drifted for unaffected {case}");
        }
        assert!(case_line(&out, "ORD-2").is_none(), "{out}");

        let report = std::fs::read_to_string(&qfile).unwrap();
        assert!(report.contains("bad-column-count"), "{report}");
    }

    #[test]
    fn audit_quarantine_out_requires_salvage() {
        let p = write_temp("order14.bpmn", ORDER);
        let t = write_temp(
            "order14.trail",
            "carol Clerk read [A]Order Receive ORD-1 202607060900 success\n",
        );
        let mut buf = Vec::new();
        let err = run(
            &args(&[
                "audit",
                "--trail",
                &t,
                "--process",
                &format!("fulfillment={p}"),
                "--quarantine-out",
                "/tmp/ignored",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.message.contains("--quarantine-out requires --salvage"));
    }

    #[test]
    fn audit_case_budget_flags_accept_clean_runs() {
        let p = write_temp("order15.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "2", "--seed", "4", "--prefix", "ORD-",
        ]);
        let t = write_temp("order15.trail", &trail_text);
        let (code, out) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--case-deadline-ms",
            "60000",
            "--case-step-budget",
            "1000000",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 compliant"), "{out}");
    }

    #[test]
    fn audit_metrics_exports_json_and_prometheus() {
        let p = write_temp("order16.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "2", "--seed", "5", "--prefix", "ORD-",
        ]);
        let t = write_temp("order16.trail", &trail_text);
        let mfile = write_temp("order16.metrics.json", "");
        let pfile = write_temp("order16.metrics.prom", "");
        let (code, _) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--metrics-out",
            &mfile,
            "--prom-out",
            &pfile,
        ]);
        assert_eq!(code, 0);
        let json = std::fs::read_to_string(&mfile).unwrap();
        assert!(json.contains("\"audit_cases_total\": 2"), "{json}");
        assert!(json.contains("\"audit_cases_compliant\": 2"), "{json}");
        assert!(json.contains("\"audit_cases_infringing\": 0"), "{json}");
        assert!(json.contains("\"trail_cases\": 2"), "{json}");
        assert!(json.contains("\"case_entries\""), "{json}");
        let prom = std::fs::read_to_string(&pfile).unwrap();
        assert!(prom.contains("purposectl_audit_cases_total 2"), "{prom}");
        assert!(
            prom.contains("# TYPE purposectl_case_entries histogram"),
            "{prom}"
        );
        assert!(prom.contains("purposectl_case_entries_count 2"), "{prom}");
    }

    #[test]
    fn audit_trace_out_and_explain_render_the_violation_path() {
        let p = write_temp("order17.bpmn", ORDER);
        // Ship before Receive: deviates at entry 0.
        let t = write_temp(
            "order17.trail",
            "carol Clerk read [A]Order Ship ORD-1 202607060900 success\n",
        );
        let tr1 = write_temp("order17.a.jsonl", "");
        let tr2 = write_temp("order17.b.jsonl", "");
        let base = |trace: &str| {
            args(&[
                "audit",
                "--trail",
                &t,
                "--process",
                &format!("fulfillment={p}"),
                "--map",
                "ORD-=fulfillment",
                "--trace-out",
                trace,
                "--explain",
                "ORD-1",
            ])
        };
        let mut buf = Vec::new();
        let code = run(&base(&tr1), &mut buf).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert_eq!(code, 1, "{out}");
        // --explain renders the replayed path ending at the deviation.
        assert!(
            out.contains("case ORD-1 [purpose fulfillment] — infringement"),
            "{out}"
        );
        assert!(out.contains("=> sys·Err at entry #0"), "{out}");
        assert!(out.contains("expected one of:"), "{out}");
        // The JSONL trace carries the same path...
        let trace = std::fs::read_to_string(&tr1).unwrap();
        assert!(trace.contains("\"case\":\"ORD-1\""), "{trace}");
        assert!(trace.contains("\"verdict\":\"infringement\""), "{trace}");
        assert!(trace.contains("\"kind\":\"process-deviation\""), "{trace}");
        // ...and is deterministic across runs.
        let mut buf = Vec::new();
        run(&base(&tr2), &mut buf).unwrap();
        assert_eq!(trace, std::fs::read_to_string(&tr2).unwrap());
    }

    #[test]
    fn audit_explain_unknown_case_errors() {
        let p = write_temp("order18.bpmn", ORDER);
        let t = write_temp(
            "order18.trail",
            "carol Clerk read [A]Order Receive ORD-1 202607060900 success\n",
        );
        let mut buf = Vec::new();
        let err = run(
            &args(&[
                "audit",
                "--trail",
                &t,
                "--process",
                &format!("fulfillment={p}"),
                "--map",
                "ORD-=fulfillment",
                "--explain",
                "ORD-9",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.message.contains("not found"), "{}", err.message);
    }

    #[test]
    fn audit_verbose_streams_replay_events() {
        let p = write_temp("order19.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "1", "--seed", "6", "--prefix", "ORD-",
        ]);
        let t = write_temp("order19.trail", &trail_text);
        let (code, out) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--verbose",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("case ORD-1: replay start"), "{out}");
        assert!(out.contains("case ORD-1: entry 0 "), "{out}");
        assert!(out.contains("(frontier "), "{out}");
        assert!(out.contains("case ORD-1: compliant"), "{out}");
    }

    #[test]
    fn stats_subcommand() {
        let p = write_temp("order10.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "2", "--seed", "3", "--prefix", "ORD-",
        ]);
        let t = write_temp("order10.trail", &trail_text);
        let (code, out) = run_capture(&["stats", "--trail", &t]);
        assert_eq!(code, 0);
        assert!(out.contains("2 cases"));
        assert!(out.contains("by task:"));
    }

    #[test]
    fn audit_parallel_threads_flag() {
        let p = write_temp("order11.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "4", "--seed", "2", "--prefix", "ORD-",
        ]);
        let t = write_temp("order11.trail", &trail_text);
        let (code, out) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--threads",
            "4",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("4 compliant"));
    }

    #[test]
    fn audit_max_minutes_flags_stale_cases() {
        let p = write_temp("order12.bpmn", ORDER);
        // A process-valid case spread over two days.
        let t = write_temp(
            "order12.trail",
            "carol Clerk read [A]Order Receive ORD-1 202607060900 success
             carol Clerk read [A]Order Pick ORD-1 202607080900 success
",
        );
        let (fast, _) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
        ]);
        assert_eq!(fast, 0, "without a window the case is compliant");
        let (code, out) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--max-minutes",
            "60",
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("INFRINGEMENT"));
    }

    #[test]
    fn check_engine_flag_selects_and_validates() {
        let p = write_temp("order13.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "1", "--seed", "5", "--prefix", "ORD-",
        ]);
        let t = write_temp("order13.trail", &trail_text);
        for engine in ["direct", "automaton"] {
            let (code, out) = run_capture(&[
                "check", &p, "--trail", &t, "--case", "ORD-1", "--engine", engine,
            ]);
            assert_eq!(code, 0, "{out}");
            assert!(out.contains("Compliant"));
        }
        let mut buf = Vec::new();
        let err = run(
            &args(&[
                "check", &p, "--trail", &t, "--case", "ORD-1", "--engine", "magic",
            ]),
            &mut buf,
        )
        .unwrap_err();
        assert!(err.message.contains("--engine"));
    }

    /// A fresh directory so snapshot tests never share cache files with
    /// each other or with other tests' process files.
    fn temp_cache_dir(name: &str) -> String {
        let dir = std::env::temp_dir()
            .join("purposectl-tests")
            .join(format!("cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn check_saves_then_warm_starts_from_snapshot() {
        let p = write_temp("order14.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "1", "--seed", "5", "--prefix", "ORD-",
        ]);
        let t = write_temp("order14.trail", &trail_text);
        let cache = temp_cache_dir("warm");

        let (code, out) = run_capture(&[
            "check",
            &p,
            "--trail",
            &t,
            "--case",
            "ORD-1",
            "--automaton-cache",
            &cache,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("automaton: cold start"), "{out}");
        assert!(out.contains("snapshot saved"), "{out}");
        let pcas = std::fs::read_dir(&cache)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .find(|n| n.ends_with(".pcas"))
            .expect("a .pcas file in the cache dir");
        assert!(pcas.ends_with(".bpmn.pcas"));

        let (code2, out2) = run_capture(&[
            "check",
            &p,
            "--trail",
            &t,
            "--case",
            "ORD-1",
            "--automaton-cache",
            &cache,
        ]);
        assert_eq!(code2, 0, "{out2}");
        assert!(out2.contains("automaton: warm start"), "{out2}");
        // Nothing new expanded, so nothing re-saved.
        assert!(!out2.contains("snapshot saved"), "{out2}");
        assert!(out2.contains("Compliant"));
    }

    #[test]
    fn no_automaton_cache_disables_persistence() {
        let p = write_temp("order15.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "1", "--seed", "5", "--prefix", "ORD-",
        ]);
        let t = write_temp("order15.trail", &trail_text);
        let cache = temp_cache_dir("off");
        let (code, out) = run_capture(&[
            "check",
            &p,
            "--trail",
            &t,
            "--case",
            "ORD-1",
            "--automaton-cache",
            &cache,
            "--no-automaton-cache",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("automaton:"), "{out}");
        assert_eq!(std::fs::read_dir(&cache).unwrap().count(), 0);
    }

    #[test]
    fn direct_engine_skips_snapshots() {
        let p = write_temp("order16.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "1", "--seed", "5", "--prefix", "ORD-",
        ]);
        let t = write_temp("order16.trail", &trail_text);
        let cache = temp_cache_dir("direct");
        let (code, out) = run_capture(&[
            "check",
            &p,
            "--trail",
            &t,
            "--case",
            "ORD-1",
            "--engine",
            "direct",
            "--automaton-cache",
            &cache,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(!out.contains("automaton:"), "{out}");
        assert_eq!(std::fs::read_dir(&cache).unwrap().count(), 0);
    }

    #[test]
    fn corrupt_snapshot_falls_back_cold_with_reason_and_same_verdict() {
        let p = write_temp("order17.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "1", "--seed", "5", "--prefix", "ORD-",
        ]);
        let t = write_temp("order17.trail", &trail_text);
        let cache = temp_cache_dir("corrupt");
        run_capture(&[
            "check",
            &p,
            "--trail",
            &t,
            "--case",
            "ORD-1",
            "--automaton-cache",
            &cache,
        ]);
        // Flip a payload byte in the saved snapshot.
        let pcas = std::fs::read_dir(&cache)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|q| q.extension().is_some_and(|x| x == "pcas"))
            .unwrap();
        let mut bytes = std::fs::read(&pcas).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&pcas, bytes).unwrap();

        let (code, out) = run_capture(&[
            "check",
            &p,
            "--trail",
            &t,
            "--case",
            "ORD-1",
            "--automaton-cache",
            &cache,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("automaton: cold start"), "{out}");
        assert!(out.contains("corrupted"), "{out}");
        assert!(out.contains("Compliant"), "{out}");
        // The cold run re-expanded everything and overwrote the bad file.
        assert!(out.contains("snapshot saved"), "{out}");
    }

    #[test]
    fn audit_warm_starts_per_registered_process() {
        let p = write_temp("order18.bpmn", ORDER);
        let (_, trail_text) = run_capture(&[
            "simulate", &p, "--cases", "2", "--seed", "2", "--prefix", "ORD-",
        ]);
        let t = write_temp("order18.trail", &trail_text);
        let cache = temp_cache_dir("audit");
        let (code, out) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--automaton-cache",
            &cache,
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("automaton[fulfillment]: cold start"), "{out}");
        assert!(out.contains("snapshot saved"), "{out}");
        let (code2, out2) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--automaton-cache",
            &cache,
        ]);
        assert_eq!(code2, 0, "{out2}");
        assert!(
            out2.contains("automaton[fulfillment]: warm start"),
            "{out2}"
        );
        assert!(out2.contains("2 compliant"), "{out2}");
    }

    #[test]
    fn audit_object_scoping() {
        let p = write_temp("order9.bpmn", ORDER);
        let t = write_temp(
            "order9.trail",
            "carol Clerk read [Acme]Order Ship ORD-1 202607060900 success\n\
             carol Clerk read [Globex]Order Ship ORD-2 202607060905 success\n",
        );
        let (_, out) = run_capture(&[
            "audit",
            "--trail",
            &t,
            "--process",
            &format!("fulfillment={p}"),
            "--map",
            "ORD-=fulfillment",
            "--object",
            "[Acme]Order",
        ]);
        assert!(out.contains("ORD-1"));
        assert!(!out.contains("ORD-2"));
    }
}
