//! Thin binary wrapper over [`purposectl::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::io::stdout();
    match purposectl::run(&argv, &mut out) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("purposectl: {e}");
            std::process::exit(e.exit_code);
        }
    }
}
