//! P4 — §1 "at the Geneva University Hospitals, more than 20,000 records
//! are opened every day … it would be infeasible to verify every data
//! usage manually".
//!
//! Measures auditing one synthetic day at that scale (generation is done
//! once outside the timing loop). The relevant output is wall-clock per
//! day and entries/second — the quantity that decides whether the paper's
//! "we expect [it] scales to real applications" holds.

use bench::hospital_auditor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use purpose_control::parallel::audit_parallel;
use std::hint::black_box;
use workload::hospital::{generate_day, HospitalConfig};

fn bench_hospital_day(c: &mut Criterion) {
    let auditor = hospital_auditor();
    let mut g = c.benchmark_group("hospital_day");
    g.sample_size(10);
    for entries in [2_000usize, 20_000] {
        let day = generate_day(
            &HospitalConfig {
                target_entries: entries,
                ..HospitalConfig::default()
            },
            42,
        );
        g.throughput(Throughput::Elements(day.trail.len() as u64));
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        g.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| black_box(audit_parallel(&auditor, &day.trail, threads)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hospital_day);
criterion_main!(benches);
