//! P5 — the Petri-net token-replay baseline (§6, Rozinat & van der
//! Aalst [13]).
//!
//! Compares the cost of token replay against Algorithm 1 on the same
//! translatable process. Token replay is cheaper per event — it works on a
//! coarser abstraction (task labels on a net, no roles, no COWS states) —
//! which is exactly the trade §6 describes: speed bought with blindness to
//! fine-grained violations and OR-gateway processes.

use bench::{replay, sequential_workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use petri::conformance::{task_log, token_replay, ReplayOptions};
use petri::translate::translate;
use std::hint::black_box;

fn bench_petri(c: &mut Criterion) {
    let mut g = c.benchmark_group("petri_baseline");
    for n in [5usize, 20, 80] {
        let (encoded, entries) = sequential_workload(n, 3);
        let model = workload::procgen::generate(&workload::ProcGenConfig::sequential(n), 3);
        let net = translate(&model).expect("sequential processes translate");
        let refs: Vec<&audit::LogEntry> = entries.iter().collect();
        let log = task_log(&refs);

        g.bench_with_input(BenchmarkId::new("token_replay", n), &n, |b, _| {
            b.iter(|| black_box(token_replay(&net, &log, &ReplayOptions::default())))
        });
        g.bench_with_input(BenchmarkId::new("algorithm1", n), &n, |b, _| {
            b.iter(|| black_box(replay(&encoded, &entries)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_petri);
criterion_main!(benches);
