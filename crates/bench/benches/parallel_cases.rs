//! P3 — §7 "the analysis of process instances is independent from each
//! other, allowing for massive parallelization".
//!
//! Audits a fixed hospital-day trail with 1, 2, 4 and 8 worker threads;
//! the expected shape is near-linear speedup until the core count.

use bench::hospital_auditor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use purpose_control::parallel::check_cases_parallel;
use std::hint::black_box;
use workload::hospital::{generate_day, HospitalConfig};

fn bench_parallel(c: &mut Criterion) {
    let auditor = hospital_auditor();
    let day = generate_day(
        &HospitalConfig {
            target_entries: 2_000,
            attack_fraction: 0.05,
            ..HospitalConfig::default()
        },
        42,
    );
    let cases: Vec<cows::Symbol> = day.trail.cases().into_iter().collect();

    let mut g = c.benchmark_group("parallel_cases");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cases.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(check_cases_parallel(&auditor, &day.trail, &cases, threads)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
