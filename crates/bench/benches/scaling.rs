//! P2 — §7 "we expect that the audit process is tractable and scales to
//! real applications".
//!
//! Two sweeps: replay time as a function of (a) trail length on a fixed
//! loop process — expected linear; (b) process size (number of tasks) on a
//! single full execution — expected low-polynomial (the per-entry cost is
//! one `WeakNext`, whose τ-search scales with the encoded service size).

use bench::{loop_process, loop_trail, replay, sequential_workload, structured_workload};
use bpmn::encode::encode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_trail_length(c: &mut Criterion) {
    let encoded = encode(&loop_process());
    let mut g = c.benchmark_group("scaling_trail_len");
    g.sample_size(20);
    for k in [10usize, 100, 1_000, 10_000] {
        let entries = loop_trail(k);
        g.throughput(Throughput::Elements(entries.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(replay(&encoded, &entries)))
        });
    }
    g.finish();
}

fn bench_process_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("scaling_process_size");
    g.sample_size(20);
    // n capped at 40 here (structured processes pay for τ-interleavings);
    // the `report` binary measures n = 80 once.
    for n in [5usize, 10, 20, 40] {
        let (encoded, entries) = sequential_workload(n, 7);
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| black_box(replay(&encoded, &entries)))
        });
        let (encoded, entries) = structured_workload(n, 7);
        g.bench_with_input(BenchmarkId::new("structured", n), &n, |b, _| {
            b.iter(|| black_box(replay(&encoded, &entries)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trail_length, bench_process_size);
criterion_main!(benches);
