//! F4/F6 — replaying the paper's running example.
//!
//! Measures Algorithm 1 on the Fig. 4 trail: the compliant 16-entry HT-1
//! case, the 1-entry HT-11 infringement, the CT-1 trial case, and the full
//! object-scoped investigation of Jane's EPR.

use audit::samples::figure4_trail;
use bench::hospital_auditor;
use criterion::{criterion_group, criterion_main, Criterion};
use policy::object::ObjectId;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let auditor = hospital_auditor();
    let trail = figure4_trail();
    let mut g = c.benchmark_group("fig4");

    g.bench_function("replay_HT1_compliant", |b| {
        b.iter(|| black_box(auditor.check_one_case(&trail, cows::sym("HT-1"))))
    });
    g.bench_function("replay_HT11_infringement", |b| {
        b.iter(|| black_box(auditor.check_one_case(&trail, cows::sym("HT-11"))))
    });
    g.bench_function("replay_CT1_trial", |b| {
        b.iter(|| black_box(auditor.check_one_case(&trail, cows::sym("CT-1"))))
    });
    g.bench_function("investigate_janes_epr", |b| {
        let jane = ObjectId::of_subject("Jane", "EPR");
        b.iter(|| black_box(auditor.audit_object(&trail, &jane)))
    });
    g.bench_function("preventive_pass", |b| {
        b.iter(|| black_box(auditor.preventive_check(&trail)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
