//! P7 — time-to-verdict per misuse pattern (§2/§4).
//!
//! Replays a compliant healthcare case and one variant per injector.
//! Infringing replays are often *faster* than compliant ones — the
//! algorithm stops at the first inexplicable entry — so detection adds no
//! latency over normal auditing; the mimicry discussion of §4 rests on
//! this being cheap enough to run on everything.

use audit::entry::LogEntry;
use bench::replay;
use bpmn::encode::encode;
use bpmn::models::healthcare_treatment;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use workload::attacks;
use workload::simulate::{simulate_case, SimConfig};

fn bench_attacks(c: &mut Criterion) {
    let model = healthcare_treatment();
    let encoded = encode(&model);
    let mut rng = StdRng::seed_from_u64(99);
    let base = simulate_case(&encoded, "HT-1", &SimConfig::new("Jane"), &mut rng);

    let variants: Vec<(&str, Vec<LogEntry>)> = {
        let mut v = Vec::new();
        v.push(("compliant", base.clone()));
        let mut t = base.clone();
        attacks::repurpose(&mut t, cows::sym("T92"));
        v.push(("repurposed", t));
        let mut t = base.clone();
        let first = t[0].task;
        attacks::reuse_case(&mut t, first, &mut StdRng::seed_from_u64(1));
        v.push(("case_reuse", t));
        let mut t = base.clone();
        attacks::wrong_role(&mut t, &mut StdRng::seed_from_u64(2));
        v.push(("wrong_role", t));
        let mut t = base.clone();
        attacks::skip_task(&mut t, &mut StdRng::seed_from_u64(3));
        v.push(("skip_task", t));
        v
    };

    let mut g = c.benchmark_group("attack_detection");
    for (name, entries) in &variants {
        g.bench_function(*name, |b| b.iter(|| black_box(replay(&encoded, entries))));
    }
    g.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
