//! The tentpole ablation: Algorithm 1 driven by the compiled
//! [`ProcessAutomaton`] versus the direct per-case `WeakNext` recomputation.
//!
//! The workload is the repeated-same-process shape the automaton targets:
//! 100 simulated `HT-*` cases of the running example's treatment process,
//! all replayed against one shared encoding. The direct engine rewrites
//! COWS terms for every case; the automaton engine compiles each state once
//! and afterwards walks integer edges.

use audit::entry::LogEntry;
use bpmn::encode::encode;
use bpmn::models::healthcare_treatment;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use policy::hierarchy::RoleHierarchy;
use purpose_control::replay::{check_case, CheckOptions, Engine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use workload::simulate::{simulate_case, SimConfig};

const CASES: usize = 100;

fn bench_engines(c: &mut Criterion) {
    let encoded = encode(&healthcare_treatment());
    let mut rng = StdRng::seed_from_u64(7);
    let cases: Vec<Vec<LogEntry>> = (1..=CASES)
        .map(|i| {
            let mut cfg = SimConfig::new(format!("subject{i:03}").as_str());
            cfg.start = audit::Timestamp(6_000_000 + i as u64 * 600);
            simulate_case(&encoded, format!("HT-{i}").as_str(), &cfg, &mut rng)
        })
        .collect();
    let hierarchy = RoleHierarchy::new();

    let mut g = c.benchmark_group("automaton_vs_direct");
    g.throughput(Throughput::Elements(CASES as u64));
    for (name, engine) in [("direct", Engine::Direct), ("automaton", Engine::Automaton)] {
        let opts = CheckOptions {
            engine,
            ..CheckOptions::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut compliant = 0usize;
                for entries in &cases {
                    let refs: Vec<&LogEntry> = entries.iter().collect();
                    let out = check_case(&encoded, &hierarchy, &refs, &opts)
                        .expect("replay machinery succeeds");
                    if out.verdict.is_compliant() {
                        compliant += 1;
                    }
                }
                black_box(compliant)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
