//! Ablation of the memoized step function (`DESIGN.md` §3.5).
//!
//! Measures `cows::semantics::transitions_shared` (the global sharded memo
//! used by everything) against `transitions_uncached` (recompute every
//! time) over the state set an actual HT-1 replay visits. The memo is the
//! design choice that made the 20,000-entry hospital day feasible; this
//! bench keeps that claim honest.

use bpmn::encode::encode;
use bpmn::models::healthcare_treatment;
use cows::lts::{explore, ExploreLimits};
use cows::semantics::{transitions_shared, transitions_uncached};
use cows::Service;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn visited_states(n: usize) -> Vec<Service> {
    let encoded = encode(&healthcare_treatment());
    let lts = explore(&encoded.service, ExploreLimits::default()).expect("finite LTS");
    (0..lts.state_count().min(n))
        .map(|i| lts.state(i).clone())
        .collect()
}

fn bench_cache(c: &mut Criterion) {
    let states = visited_states(64);
    let mut g = c.benchmark_group("cache_ablation");
    g.bench_function("memoized", |b| {
        b.iter(|| {
            for s in &states {
                black_box(transitions_shared(s));
            }
        })
    });
    g.bench_function("uncached", |b| {
        b.iter(|| {
            for s in &states {
                black_box(transitions_uncached(s));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
