//! P1 — Algorithm 1 vs the naïve trace enumeration (§1).
//!
//! On a process with a loop, the naïve approach must enumerate every
//! unrolling up to the trail length — exponential-to-infinite work — while
//! Algorithm 1 replays in time linear in the trail. The shape to verify:
//! replay stays flat, naïve blows past it within a handful of iterations.

use bench::{loop_process, loop_trail, replay};
use bpmn::encode::encode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use policy::hierarchy::RoleHierarchy;
use purpose_control::naive::{naive_check, NaiveLimits};
use std::hint::black_box;

fn bench_naive_vs_replay(c: &mut Criterion) {
    let encoded = encode(&loop_process());
    let hierarchy = RoleHierarchy::new();
    let mut g = c.benchmark_group("naive_vs_replay");
    g.sample_size(10);

    // k capped at 12 here (~200 ms per naïve run); the `report` binary
    // pushes to k = 20 where the naïve side exhausts a 3M-trace budget.
    for k in [1usize, 2, 4, 8, 12] {
        let entries = loop_trail(k);
        g.bench_with_input(BenchmarkId::new("replay", k), &k, |b, _| {
            b.iter(|| black_box(replay(&encoded, &entries)))
        });
        // The naïve enumeration is capped; past the cap it errors out —
        // measured as the cost of discovering the blow-up.
        let refs: Vec<&audit::LogEntry> = entries.iter().collect();
        g.bench_with_input(BenchmarkId::new("naive", k), &k, |b, _| {
            b.iter(|| {
                black_box(naive_check(
                    &encoded,
                    &hierarchy,
                    &refs,
                    &NaiveLimits {
                        max_traces: 200_000,
                        ..NaiveLimits::default()
                    },
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_naive_vs_replay);
criterion_main!(benches);
