//! P13 codec micro-bench — the churn envelope (`PCLE`) against the
//! durable case checkpoint (`PCLC`) on the same populated session.
//!
//! Eviction cost under an undersized resident cap is dominated by
//! serialization; the churn format exists so that cost is interner
//! indices and varints instead of term serialization. This bench pins
//! the encode/decode gap the tiered spill path relies on.

use bench::spill_codec_fixtures;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use purpose_control::checkpoint::{decode_case, encode_case};
use purpose_control::churn::{decode_churn, encode_churn};
use std::hint::black_box;

fn bench_spill_codec(c: &mut Criterion) {
    let (churn, durable) = spill_codec_fixtures();
    let pcle = encode_churn(&churn);
    let pclc = encode_case(&durable);

    let mut g = c.benchmark_group("spill_codec");
    g.throughput(Throughput::Bytes(pcle.len() as u64));
    g.bench_function(BenchmarkId::new("encode", "pcle"), |b| {
        b.iter(|| black_box(encode_churn(black_box(&churn))))
    });
    g.bench_function(BenchmarkId::new("decode", "pcle"), |b| {
        b.iter(|| black_box(decode_churn(black_box(&pcle)).unwrap()))
    });
    // Rehydration pays envelope decode alone (the entry window stays in
    // wire form); this variant materializes the window too — the
    // like-for-like comparison against PCLC decode.
    g.bench_function(BenchmarkId::new("decode", "pcle-full"), |b| {
        b.iter(|| {
            let c = decode_churn(black_box(&pcle)).unwrap();
            black_box(c.entries.decode(c.case).unwrap())
        })
    });
    g.throughput(Throughput::Bytes(pclc.len() as u64));
    g.bench_function(BenchmarkId::new("encode", "pclc"), |b| {
        b.iter(|| black_box(encode_case(black_box(&durable))))
    });
    g.bench_function(BenchmarkId::new("decode", "pclc"), |b| {
        b.iter(|| black_box(decode_case(black_box(&pclc)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_spill_codec);
criterion_main!(benches);
