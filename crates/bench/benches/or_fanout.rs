//! P6 — ablation: configuration growth under inclusive (OR) gateways.
//!
//! Def. 6's configuration sets are the price of the OR gateway: "the set of
//! reachable states includes states that allow the execution of every
//! possible combination of alternatives" (§4). The encoding enumerates
//! 2^n − 1 branch subsets, so replay cost grows exponentially in the
//! fan-out — this bench quantifies the constant the paper leaves implicit,
//! and justifies the validator's fan-out cap.

use bench::{or_diamond, replay};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_or_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("or_fanout");
    g.sample_size(10);
    for fanout in [1usize, 2, 3, 4] {
        let (encoded, entries) = or_diamond(fanout);
        g.bench_with_input(BenchmarkId::from_parameter(fanout), &fanout, |b, _| {
            b.iter(|| black_box(replay(&encoded, &entries)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_or_fanout);
criterion_main!(benches);
