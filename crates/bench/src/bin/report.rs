//! Regenerate every experiment series of `EXPERIMENTS.md` in one run.
//!
//! Criterion gives rigorous timings; this binary gives the *tables* — the
//! rows and series a reader compares against the paper's claims. Timings
//! here are medians of a few repetitions, good to ~10%.
//!
//! ```text
//! cargo run --release -p bench --bin report [--quick]
//! ```

use audit::samples::figure4_trail;
use bench::{
    hospital_auditor, loop_process, loop_trail, or_diamond, replay, sequential_workload,
    structured_workload, to_trail,
};
use bpmn::encode::encode;
use bpmn::models::healthcare_treatment;
use cows::sym;
use cows::weaknext::{weak_next, WeakNextLimits};
use petri::conformance::{task_log, token_replay, ReplayOptions};
use petri::translate::translate;
use policy::hierarchy::RoleHierarchy;
use policy::samples::hospital_roles;
use purpose_control::auditor::CaseOutcome;
use purpose_control::naive::{naive_check, NaiveLimits};
use purpose_control::parallel::audit_parallel;
use purpose_control::replay::{
    check_case, check_case_with, CaseCheck, CheckOptions, Engine, Verdict,
};
use purpose_control::{LiveConfig, ReplayTrie, ShardedMonitor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{client, ServeConfig, Server, TenantSpec};
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::attacks;
use workload::hospital::{generate_day, HospitalConfig};
use workload::simulate::{simulate_case, SimConfig};

fn median_time<F: FnMut()>(mut f: F, reps: usize) -> Duration {
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn fmt_dur(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_micros() >= 1000 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{}us", d.as_micros())
    }
}

fn p1_naive_vs_replay(quick: bool) {
    println!("## P1 — Algorithm 1 vs naive trace enumeration (§1)");
    println!(
        "{:>4} | {:>12} | {:>14} | {:>12}",
        "k", "replay", "naive", "naive traces"
    );
    println!("-----|--------------|----------------|-------------");
    let encoded = encode(&loop_process());
    let h = RoleHierarchy::new();
    let ks: &[usize] = if quick {
        &[1, 4, 8, 12]
    } else {
        &[1, 2, 4, 8, 12, 16, 20]
    };
    for &k in ks {
        let entries = loop_trail(k);
        let refs: Vec<&audit::LogEntry> = entries.iter().collect();
        let rt = median_time(
            || {
                replay(&encoded, &entries);
            },
            3,
        );
        let limits = NaiveLimits {
            max_traces: 3_000_000,
            ..NaiveLimits::default()
        };
        let mut traces = String::new();
        let nt = median_time(
            || match naive_check(&encoded, &h, &refs, &limits) {
                Ok(n) => traces = n.traces_enumerated.to_string(),
                Err(_) => traces = ">3000000 (budget hit)".to_string(),
            },
            1,
        );
        println!(
            "{k:>4} | {:>12} | {:>14} | {traces:>12}",
            fmt_dur(rt),
            fmt_dur(nt)
        );
    }
    println!();
}

fn p2_scaling(quick: bool) {
    println!("## P2 — replay scaling (§7 tractability)");
    println!("trail length sweep (branching loop process):");
    println!("{:>8} | {:>12} | {:>14}", "entries", "replay", "entries/s");
    let encoded = encode(&loop_process());
    let lens: &[usize] = if quick {
        &[10, 100, 1_000]
    } else {
        &[10, 100, 1_000, 10_000]
    };
    for &k in lens {
        let entries = loop_trail(k);
        let t = median_time(
            || {
                replay(&encoded, &entries);
            },
            3,
        );
        println!(
            "{:>8} | {:>12} | {:>14.0}",
            entries.len(),
            fmt_dur(t),
            entries.len() as f64 / t.as_secs_f64()
        );
    }
    println!("\nprocess size sweep (one full execution each):");
    println!(
        "{:>6} | {:>14} | {:>14}",
        "tasks", "sequential", "structured"
    );
    let sizes: &[usize] = if quick {
        &[5, 20, 40]
    } else {
        &[5, 10, 20, 40, 80]
    };
    for &n in sizes {
        let (enc_s, ent_s) = sequential_workload(n, 7);
        let ts = median_time(
            || {
                replay(&enc_s, &ent_s);
            },
            3,
        );
        let (enc_x, ent_x) = structured_workload(n, 7);
        let tx = median_time(
            || {
                replay(&enc_x, &ent_x);
            },
            3,
        );
        println!("{n:>6} | {:>14} | {:>14}", fmt_dur(ts), fmt_dur(tx));
    }
    println!();
}

fn p3_parallel(quick: bool) {
    println!("## P3 — parallelization across cases (§7)");
    let auditor = hospital_auditor();
    let day = generate_day(
        &HospitalConfig {
            target_entries: if quick { 1_000 } else { 4_000 },
            attack_fraction: 0.05,
            ..HospitalConfig::default()
        },
        42,
    );
    println!(
        "trail: {} entries, {} cases",
        day.trail.len(),
        day.truth.len()
    );
    println!("{:>8} | {:>12} | {:>8}", "threads", "wall", "speedup");
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let t = median_time(
            || {
                audit_parallel(&auditor, &day.trail, threads);
            },
            3,
        );
        let b = *base.get_or_insert(t.as_secs_f64());
        println!(
            "{threads:>8} | {:>12} | {:>7.2}x",
            fmt_dur(t),
            b / t.as_secs_f64()
        );
    }
    println!();
}

fn p4_hospital_day(quick: bool) {
    println!("## P4 — a Geneva-scale day (§1: 20,000 record opens)");
    let auditor = hospital_auditor();
    let entries = if quick { 2_000 } else { 20_000 };
    let day = generate_day(
        &HospitalConfig {
            target_entries: entries,
            ..HospitalConfig::default()
        },
        42,
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let t0 = Instant::now();
    let report = audit_parallel(&auditor, &day.trail, threads);
    let took = t0.elapsed();
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for case in &report.cases {
        let attacked = day
            .truth
            .get(&case.case)
            .map(|t| t.injected.is_some())
            .unwrap_or(false);
        let flagged = matches!(case.outcome, CaseOutcome::Infringement { .. });
        match (attacked, flagged) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            _ => {}
        }
    }
    println!(
        "audited {} entries / {} cases in {} with {threads} threads ({:.0} entries/s)",
        day.trail.len(),
        report.cases.len(),
        fmt_dur(took),
        day.trail.len() as f64 / took.as_secs_f64()
    );
    println!("detection: {tp} caught, {fn_} missed (prefix-surviving edits), {fp} false alarms");
    println!();
}

fn p5_petri() {
    println!("## P5 — Petri-net conformance baseline limits (§6)");
    // (a) The Fig. 1 process cannot even be translated.
    match translate(&healthcare_treatment()) {
        Err(e) => println!("Fig. 1 translation: REJECTED — {e}"),
        Ok(_) => println!("Fig. 1 translation: unexpectedly succeeded"),
    }
    // (b) A wrong-role infringement is invisible to task-level replay.
    let model = workload::procgen::generate(&workload::ProcGenConfig::sequential(5), 3);
    let encoded = encode(&model);
    let net = translate(&model).expect("sequential processes translate");
    let mut rng = StdRng::seed_from_u64(9);
    let mut entries = simulate_case(&encoded, "c", &SimConfig::new("P"), &mut rng);
    attacks::wrong_role(&mut entries, &mut StdRng::seed_from_u64(1));
    let refs: Vec<&audit::LogEntry> = entries.iter().collect();
    let fitness = token_replay(&net, &task_log(&refs), &ReplayOptions::default());
    let verdict = replay(&encoded, &entries);
    println!(
        "wrong-role trail: token-replay fitness {:.3} ({}), Algorithm 1 verdict {}",
        fitness.fitness(),
        if fitness.is_perfect() {
            "perfect — violation invisible"
        } else {
            "imperfect"
        },
        if verdict.verdict.is_compliant() {
            "compliant"
        } else {
            "INFRINGEMENT"
        }
    );
    // (c) A re-purposing trail gets graded, not rejected.
    let mut entries2 = simulate_case(&encoded, "c", &SimConfig::new("P"), &mut rng);
    attacks::repurpose(&mut entries2, sym("T92"));
    let refs2: Vec<&audit::LogEntry> = entries2.iter().collect();
    let fitness2 = token_replay(&net, &task_log(&refs2), &ReplayOptions::default());
    let verdict2 = replay(&encoded, &entries2);
    println!(
        "re-purposed trail: token-replay fitness {:.3} (degree of fit), Algorithm 1 verdict {}",
        fitness2.fitness(),
        if verdict2.verdict.is_compliant() {
            "compliant"
        } else {
            "INFRINGEMENT (exact)"
        }
    );
    println!();
}

fn p6_or_fanout() {
    println!("## P6 — OR-gateway configuration growth (ablation)");
    println!(
        "{:>7} | {:>18} | {:>12} | {:>10}",
        "fanout", "WeakNext states", "peak configs", "replay"
    );
    for fanout in 1..=5usize {
        let (encoded, entries) = or_diamond(fanout);
        // Successors right after the head task (the OR choice point).
        let m0 = encoded.initial();
        let after_head = weak_next(&m0, &encoded.observability, WeakNextLimits::default())
            .unwrap()
            .remove(0)
            .state;
        let succ = weak_next(
            &after_head,
            &encoded.observability,
            WeakNextLimits::default(),
        )
        .unwrap()
        .len();
        let out = replay(&encoded, &entries);
        let t = median_time(
            || {
                replay(&encoded, &entries);
            },
            3,
        );
        println!(
            "{fanout:>7} | {succ:>18} | {:>12} | {:>10}",
            out.peak_configurations,
            fmt_dur(t)
        );
    }
    println!();
}

fn p7_attack_detection() {
    println!("## P7 — detection per misuse pattern (§2/§4)");
    let model = healthcare_treatment();
    let encoded = encode(&model);
    let trials = 40usize;
    let kinds: [&str; 4] = ["repurpose", "reuse_case", "skip_task", "wrong_role"];
    println!("{:>12} | {:>9} | {:>9}", "attack", "injected", "detected");
    for kind in kinds {
        let (mut injected, mut detected) = (0usize, 0usize);
        for seed in 0..trials as u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut entries = simulate_case(&encoded, "c", &SimConfig::new("P"), &mut rng);
            let inj = match kind {
                "repurpose" => attacks::repurpose(&mut entries, sym("T92")),
                "reuse_case" => {
                    let first = entries
                        .first()
                        .map(|e| e.task)
                        .unwrap_or_else(|| sym("T01"));
                    attacks::reuse_case(&mut entries, first, &mut rng)
                }
                "skip_task" => attacks::skip_task(&mut entries, &mut rng),
                _ => attacks::wrong_role(&mut entries, &mut rng),
            };
            if inj == workload::Injection::NotApplicable {
                continue;
            }
            injected += 1;
            let sorted = to_trail(&entries);
            let refs: Vec<&audit::LogEntry> = sorted.entries().iter().collect();
            let out = purpose_control::replay::check_case(
                &encoded,
                &RoleHierarchy::new(),
                &refs,
                &purpose_control::replay::CheckOptions::default(),
            )
            .unwrap();
            if !out.verdict.is_compliant() {
                detected += 1;
            }
        }
        println!("{kind:>12} | {injected:>9} | {detected:>9}");
    }
    println!();
}

fn p8_engine_ablation(quick: bool) -> String {
    println!("## P8 — replay engine ablation (compiled automaton vs direct WeakNext)");
    // The transitions memo is process-global; every earlier section has
    // already pushed hits and misses into it. Snapshot it here and report
    // deltas so this section's numbers describe this section's work.
    let cache_baseline = cows::semantics::cache_stats();
    let encoded = encode(&healthcare_treatment());
    let n = if quick { 20usize } else { 100 };
    let mut rng = StdRng::seed_from_u64(7);
    let cases: Vec<Vec<audit::LogEntry>> = (1..=n)
        .map(|i| {
            let mut cfg = SimConfig::new(format!("subject{i:03}").as_str());
            cfg.start = audit::Timestamp(6_000_000 + i as u64 * 600);
            simulate_case(&encoded, format!("HT-{i}").as_str(), &cfg, &mut rng)
        })
        .collect();
    let h = RoleHierarchy::new();
    let run_all = |engine: Engine| {
        let opts = CheckOptions {
            engine,
            ..CheckOptions::default()
        };
        for entries in &cases {
            let refs: Vec<&audit::LogEntry> = entries.iter().collect();
            check_case(&encoded, &h, &refs, &opts).expect("replay machinery succeeds");
        }
    };
    let td = median_time(|| run_all(Engine::Direct), 3);
    let ta = median_time(|| run_all(Engine::Automaton), 3);
    let (cps_d, cps_a) = (n as f64 / td.as_secs_f64(), n as f64 / ta.as_secs_f64());
    println!("{:>10} | {:>12} | {:>12}", "engine", "100 cases", "cases/s");
    println!("{:>10} | {:>12} | {:>12.0}", "direct", fmt_dur(td), cps_d);
    println!(
        "{:>10} | {:>12} | {:>12.0}",
        "automaton",
        fmt_dur(ta),
        cps_a
    );
    let auto = encoded.automaton.stats();
    let cache = cows::semantics::cache_stats().since(&cache_baseline);
    let edge_total = auto.edge_hits + auto.edge_misses;
    let cache_total = cache.hits + cache.misses;
    println!(
        "automaton: {} states ({} expanded), edge hit rate {:.4}; \
         transitions memo: hit rate {:.4}, {} evictions",
        auto.states,
        auto.expanded,
        auto.edge_hits as f64 / edge_total.max(1) as f64,
        cache.hits as f64 / cache_total.max(1) as f64,
        cache.evictions
    );
    // Machine-readable summary for the acceptance gate (hand-rolled JSON —
    // the workspace deliberately has no serde_json). Returned as a fragment;
    // `main` assembles BENCH_replay.json from every section that has one.
    let json = format!(
        "{{\n  \
           \"benchmark\": \"replay_engine_ablation\",\n  \
           \"process\": \"healthcare_treatment\",\n  \
           \"cases\": {n},\n  \
           \"direct\": {{ \"seconds\": {:.6}, \"cases_per_sec\": {:.1} }},\n  \
           \"automaton\": {{ \"seconds\": {:.6}, \"cases_per_sec\": {:.1}, \
             \"states\": {}, \"expanded\": {}, \"edge_hits\": {}, \
             \"edge_misses\": {}, \"edge_hit_rate\": {:.4} }},\n  \
           \"speedup\": {:.2},\n  \
           \"transitions_cache\": {{ \"hits\": {}, \"misses\": {}, \
             \"evictions\": {}, \"entries\": {}, \"hit_rate\": {:.4} }}\n}}\n",
        td.as_secs_f64(),
        cps_d,
        ta.as_secs_f64(),
        cps_a,
        auto.states,
        auto.expanded,
        auto.edge_hits,
        auto.edge_misses,
        auto.edge_hits as f64 / edge_total.max(1) as f64,
        cps_a / cps_d,
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.entries,
        cache.hits as f64 / cache_total.max(1) as f64,
    );
    println!();
    json
}

/// Replay every case of the Fig. 4 trail — what `purposectl check` does on
/// the paper's running example. Returns the number of compliant cases.
fn p9_check_all(enc: &bpmn::encode::Encoded, trail: &audit::AuditTrail) -> usize {
    let h = hospital_roles();
    let opts = CheckOptions::default();
    let mut compliant = 0usize;
    for case in trail.cases() {
        let entries = trail.project_case(case);
        let check = check_case(enc, &h, &entries, &opts).expect("replay machinery succeeds");
        if check.verdict.is_compliant() {
            compliant += 1;
        }
    }
    compliant
}

/// Child-process hook for P9: one true cold or warm `check` run in a fresh
/// process — fresh symbol interner, fresh transitions memo — printing the
/// elapsed seconds on stdout. Spawned by `p9_snapshot_warm_start`. The
/// cold run saves the snapshot (as a caching CLI run would); the warm run
/// loads it and must replay without a single `weak_next` expansion.
fn p9_child(mode: &str, snapshot: &str) {
    let model = healthcare_treatment();
    let trail = figure4_trail();
    let scratch = format!("{snapshot}.cold-out");
    let t = Instant::now();
    let enc = encode(&model);
    if mode == "warm" {
        enc.load_snapshot(std::path::Path::new(snapshot))
            .expect("snapshot loads in child");
    }
    let compliant = p9_check_all(&enc, &trail);
    if mode == "cold" {
        enc.save_snapshot(std::path::Path::new(&scratch))
            .expect("cold child saves its cache");
    }
    let elapsed = t.elapsed();
    let _ = std::fs::remove_file(&scratch);
    assert!(compliant > 0, "Fig. 4 must keep its compliant cases");
    if mode == "warm" {
        let stats = enc.automaton.stats();
        assert_eq!(stats.edge_misses, 0, "warm child must never run weak_next");
    }
    println!("{:.9}", elapsed.as_secs_f64());
}

fn p9_snapshot_warm_start(quick: bool) -> String {
    println!("## P9 — snapshot warm start (cold vs warm `check` of the Fig. 4 trail)");
    // One full `purposectl check` of the paper's running example, cold vs
    // warm. Cold compiles the observable LTS through weak_next and saves
    // the snapshot; warm loads the snapshot and replays on integer edges
    // alone. Each measurement runs in a fresh child process so the symbol
    // interner and the global transitions memo start genuinely cold —
    // repeating in-process would hand the "cold" runs a warm memo and
    // understate the gap a short-lived CLI run actually sees.
    let model = healthcare_treatment();
    let enc = encode(&model);
    let trail = figure4_trail();
    assert!(p9_check_all(&enc, &trail) > 0);
    let snapshot = std::env::temp_dir().join("purposectl-bench-p9.pcas");
    enc.save_snapshot(&snapshot).expect("snapshot saved");
    let snapshot_bytes = enc.snapshot_bytes().len();
    let snapshot_states = enc.automaton.stats().states;

    let exe = std::env::current_exe().expect("own executable path");
    let run = |mode: &str| -> f64 {
        let out = std::process::Command::new(&exe)
            .arg("--p9-child")
            .arg(mode)
            .arg(&snapshot)
            .output()
            .expect("p9 child spawns");
        assert!(
            out.status.success(),
            "p9 {mode} child failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .trim()
            .parse()
            .expect("child prints elapsed seconds")
    };
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        xs[xs.len() / 2]
    };
    let reps = if quick { 5 } else { 9 };
    let cold = median((0..reps).map(|_| run("cold")).collect());
    let warm = median((0..reps).map(|_| run("warm")).collect());
    let _ = std::fs::remove_file(&snapshot);
    let speedup = cold / warm;
    println!("{:>8} | {:>12} | {:>10}", "start", "full check", "speedup");
    println!(
        "{:>8} | {:>12} | {:>10}",
        "cold",
        fmt_dur(Duration::from_secs_f64(cold)),
        "1.00x"
    );
    println!(
        "{:>8} | {:>12} | {:>9.2}x",
        "warm",
        fmt_dur(Duration::from_secs_f64(warm)),
        speedup
    );
    println!(
        "snapshot: {snapshot_bytes} bytes, {snapshot_states} states; \
         {} entries / {} cases checked per start",
        trail.len(),
        trail.cases().len()
    );
    println!();
    format!(
        "{{\n  \
           \"benchmark\": \"snapshot_warm_start\",\n  \
           \"process\": \"healthcare_treatment\",\n  \
           \"trail\": \"figure4\",\n  \
           \"entries_per_start\": {},\n  \
           \"cases_per_start\": {},\n  \
           \"snapshot_bytes\": {snapshot_bytes},\n  \
           \"snapshot_states\": {snapshot_states},\n  \
           \"cold\": {{ \"seconds\": {cold:.6} }},\n  \
           \"warm\": {{ \"seconds\": {warm:.6} }},\n  \
           \"speedup\": {speedup:.2}\n}}",
        trail.len(),
        trail.cases().len(),
    )
}

fn p10_degraded_mode(quick: bool) -> String {
    use audit::codec::{format_trail, parse_trail};
    use audit::salvage::{parse_trail_salvage, salvage_chained};
    use std::collections::BTreeMap;
    use workload::{inject_text, tamper_chain, TEXT_INJECTORS};

    println!("## P10 — degraded-mode auditing (salvage overhead + chaos survival)");
    let hospital = |target_entries: usize, seed: u64| {
        generate_day(
            &HospitalConfig {
                target_entries,
                trial_fraction: 0.1,
                attack_fraction: 0.2,
                error_prob: 0.1,
            },
            seed,
        )
        .trail
    };
    let auditor = hospital_auditor();
    let threads = 4;

    // Overhead on a *clean* trail at the paper's §1 scale (20,000 record
    // opens/day): ingestion alone, then the full parse-and-audit pipeline
    // an operator actually pays for.
    let big = hospital(if quick { 2_000 } else { 20_000 }, 424242);
    let big_text = format_trail(&big);
    let reps = 3;
    let parse_strict = median_time(
        || {
            parse_trail(&big_text).expect("clean text parses");
        },
        reps,
    );
    let parse_salvage = median_time(
        || {
            let _ = parse_trail_salvage(&big_text);
        },
        reps,
    );
    let strict = median_time(
        || {
            let t = parse_trail(&big_text).expect("clean text parses");
            audit_parallel(&auditor, &t, threads);
        },
        reps,
    );
    let salvage = median_time(
        || {
            let (t, q) = parse_trail_salvage(&big_text);
            assert!(q.is_clean(), "clean workload must not quarantine");
            audit_parallel(&auditor, &t, threads);
        },
        reps,
    );
    let pct = |s: Duration, v: Duration| (v.as_secs_f64() / s.as_secs_f64() - 1.0) * 100.0;
    let overhead = pct(strict, salvage);
    println!(
        "{:>14} | {:>10} | {:>10} | {:>9}   ({} entries, {} cases)",
        "stage (clean)",
        "strict",
        "salvage",
        "overhead",
        big.len(),
        big.cases().len()
    );
    println!(
        "{:>14} | {:>10} | {:>10} | {:>8.1}%",
        "parse only",
        fmt_dur(parse_strict),
        fmt_dur(parse_salvage),
        pct(parse_strict, parse_salvage)
    );
    println!(
        "{:>14} | {:>10} | {:>10} | {:>8.1}%",
        "parse + audit",
        fmt_dur(strict),
        fmt_dur(salvage),
        overhead
    );
    let overhead_entries = big.len();
    drop(big_text);

    // Chaos survival runs on a smaller day so the 7-scenario sweep stays
    // fast; the invariants are scale-independent.
    let trail = hospital(if quick { 600 } else { 2_000 }, 424242);
    let text = format_trail(&trail);

    // Chaos survival and verdict stability: corrupt the rendered trail,
    // salvage, re-audit, and check every projection-identical case keeps a
    // byte-identical (Debug) outcome. "Unaffected" is recomputed from the
    // data, not taken from the injector's report.
    let projections = |t: &audit::AuditTrail| -> BTreeMap<cows::symbol::Symbol, Vec<String>> {
        let mut map: BTreeMap<cows::symbol::Symbol, Vec<String>> = BTreeMap::new();
        for e in t.entries() {
            map.entry(e.case).or_default().push(e.to_string());
        }
        map
    };
    let outcomes = |t: &audit::AuditTrail| -> BTreeMap<cows::symbol::Symbol, String> {
        audit_parallel(&auditor, t, threads)
            .cases
            .into_iter()
            .map(|c| (c.case, format!("{:?}", c.outcome)))
            .collect()
    };
    let clean_proj = projections(&trail);
    let clean_out = outcomes(&trail);
    let stability_of = |salvaged: &audit::AuditTrail| -> (usize, usize) {
        let proj = projections(salvaged);
        let out = outcomes(salvaged);
        let unaffected: Vec<_> = clean_proj
            .iter()
            .filter(|(case, p)| proj.get(*case) == Some(*p))
            .map(|(&case, _)| case)
            .collect();
        let stable = unaffected
            .iter()
            .filter(|case| out.get(case) == clean_out.get(case))
            .count();
        (stable, unaffected.len())
    };

    println!(
        "{:>16} | {:>11} | {:>12} | {:>10} | {:>7}",
        "injector", "quarantined", "out-of-order", "unaffected", "stable"
    );
    let mut inj_json: Vec<String> = Vec::new();
    let cases_total = trail.cases().len();
    for kind in TEXT_INJECTORS {
        let (corrupt, _) = inject_text(&text, kind, 5, 42);
        let (salvaged, q) = parse_trail_salvage(&corrupt);
        let (stable, unaffected) = stability_of(&salvaged);
        let audited = salvaged.cases().len();
        assert_eq!(
            stable,
            unaffected,
            "verdict drifted for an unaffected case under {}",
            kind.label()
        );
        println!(
            "{:>16} | {:>11} | {:>12} | {:>10} | {:>7} | {:>6.0}%",
            kind.label(),
            q.lines.len(),
            q.out_of_order.len(),
            format!("{audited}/{cases_total}"),
            unaffected,
            100.0 * stable as f64 / unaffected.max(1) as f64
        );
        inj_json.push(format!(
            "    {{ \"kind\": \"{}\", \"quarantined\": {}, \"out_of_order\": {}, \
             \"cases_audited\": {audited}, \"cases_total\": {cases_total}, \
             \"unaffected_cases\": {}, \"stable_cases\": {} }}",
            kind.label(),
            q.lines.len(),
            q.out_of_order.len(),
            unaffected,
            stable
        ));
    }

    // Integrity breach: tamper one committed entry, audit the intact prefix.
    let (chained, _) = tamper_chain(&trail, 42);
    let (prefix_trail, qc) = salvage_chained(&chained);
    let (chain_stable, chain_unaffected) = stability_of(&prefix_trail);
    assert_eq!(chain_stable, chain_unaffected, "chain-tamper verdict drift");
    println!(
        "{:>16} | {:>11} | {:>12} | {:>10} | {:>6.0}% (prefix {} of {})",
        "chain-tamper",
        qc.lines.len(),
        qc.out_of_order.len(),
        chain_unaffected,
        100.0 * chain_stable as f64 / chain_unaffected.max(1) as f64,
        prefix_trail.len(),
        trail.len()
    );
    println!();

    format!(
        "{{\n  \
           \"benchmark\": \"degraded_mode\",\n  \
           \"workload\": \"hospital_day\",\n  \
           \"entries\": {},\n  \
           \"cases\": {},\n  \
           \"overhead_entries\": {overhead_entries},\n  \
           \"parse\": {{ \"strict_seconds\": {:.6}, \"salvage_seconds\": {:.6} }},\n  \
           \"pipeline\": {{ \"strict_seconds\": {:.6}, \"salvage_seconds\": {:.6}, \
             \"overhead_pct\": {:.2} }},\n  \
           \"injectors\": [\n{}\n  ],\n  \
           \"chain_tamper\": {{ \"prefix\": {}, \"quarantined\": {}, \
             \"unaffected_cases\": {}, \"stable_cases\": {} }}\n}}",
        trail.len(),
        trail.cases().len(),
        parse_strict.as_secs_f64(),
        parse_salvage.as_secs_f64(),
        strict.as_secs_f64(),
        salvage.as_secs_f64(),
        overhead,
        inj_json.join(",\n"),
        prefix_trail.len(),
        qc.lines.len(),
        chain_unaffected,
        chain_stable,
    )
}

fn p11_observability(quick: bool) -> String {
    use std::sync::Arc;

    println!("## P11 — instrumentation overhead (noop recorder vs tracing)");
    let entries = if quick { 2_000 } else { 20_000 };
    let day = generate_day(
        &HospitalConfig {
            target_entries: entries,
            ..HospitalConfig::default()
        },
        42,
    );
    let threads = 4;
    let rounds = if quick { 3 } else { 12 };

    // Baseline: the instrumentation is compiled in but every hook is the
    // noop recorder and no registry is attached — the configuration every
    // plain `purposectl audit` runs with.
    let noop_auditor = hospital_auditor();

    // Metrics only: per-worker shards, one flush per worker at join.
    let mut metrics_auditor = hospital_auditor();
    let metrics_registry = Arc::new(obs::Registry::new());
    purpose_control::register_audit_metrics(&metrics_registry);
    metrics_auditor.metrics = Some(metrics_registry);

    // Tracing: metrics + per-case evidence capture — everything the
    // headline `audit --metrics-out --trace-out` invocation turns on.
    // Capture stores interned state ids; rendering the JSONL is the
    // separately-timed `serialize` step below, off the replay path.
    let mut tracing_auditor = hospital_auditor();
    let tracing_registry = Arc::new(obs::Registry::new());
    purpose_control::register_audit_metrics(&tracing_registry);
    tracing_auditor.metrics = Some(tracing_registry);
    tracing_auditor.options.record_evidence = true;

    // Verbose events: additionally stream per-entry replay events into the
    // bounded ring — the debugging mode `--verbose` adds on top.
    let mut verbose_auditor = hospital_auditor();
    let verbose_registry = Arc::new(obs::Registry::new());
    purpose_control::register_audit_metrics(&verbose_registry);
    verbose_auditor.metrics = Some(verbose_registry);
    verbose_auditor.options.record_evidence = true;
    verbose_auditor.recorder = obs::Recorder::new();
    let drain = verbose_auditor.recorder.clone();

    // Timing sequential per-configuration blocks confounds machine-load
    // bursts with configurations, so instead: one untimed warm-up pass per
    // configuration (expands each auditor's automaton), then interleaved
    // rounds visiting the four configurations in rotated order, keeping
    // each configuration's *minimum* — external noise only ever adds time,
    // so the minimum over interleaved rounds is the cleanest estimate of
    // the true cost.
    let auditors = [
        &noop_auditor,
        &metrics_auditor,
        &tracing_auditor,
        &verbose_auditor,
    ];
    let mut times: [Vec<Duration>; 4] = Default::default();
    for auditor in auditors {
        audit_parallel(auditor, &day.trail, threads);
    }
    for round in 0..rounds {
        for slot in 0..auditors.len() {
            let c = (round + slot) % auditors.len();
            drain.drain();
            let start = Instant::now();
            let report = audit_parallel(auditors[c], &day.trail, threads);
            times[c].push(start.elapsed());
            drop(report);
        }
    }
    let best = |c: usize| *times[c].iter().min().expect("at least one round");
    let (noop, metrics, tracing, verbose) = (best(0), best(1), best(2), best(3));

    let report = audit_parallel(&tracing_auditor, &day.trail, threads);
    let serialize_start = Instant::now();
    let mut jsonl = String::new();
    for case in &report.cases {
        if let Some(ev) = tracing_auditor.case_evidence(&day.trail, case) {
            jsonl.push_str(&ev.to_json_line());
            jsonl.push('\n');
        }
    }
    let serialize = serialize_start.elapsed();
    let jsonl_bytes = jsonl.len();

    // One fresh verbose pass for the event-volume numbers (`dropped` is a
    // cumulative counter, so report the delta of a single audit).
    drain.drain();
    let dropped_before = verbose_auditor.recorder.dropped();
    audit_parallel(&verbose_auditor, &day.trail, threads);
    let events = verbose_auditor.recorder.drain().len();
    let dropped = verbose_auditor.recorder.dropped() - dropped_before;

    let pct = |base: Duration, v: Duration| (v.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
    let metrics_pct = pct(noop, metrics);
    let tracing_pct = pct(noop, tracing);
    let verbose_pct = pct(noop, verbose);
    println!(
        "{:>14} | {:>10} | {:>9}   ({} entries, {} cases, {threads} threads)",
        "configuration",
        "wall",
        "overhead",
        day.trail.len(),
        day.truth.len()
    );
    println!("{:>14} | {:>10} | {:>9}", "noop", fmt_dur(noop), "—");
    println!(
        "{:>14} | {:>10} | {:>8.1}%",
        "metrics",
        fmt_dur(metrics),
        metrics_pct
    );
    println!(
        "{:>14} | {:>10} | {:>8.1}%   (+ {} off-path serialize, {} KiB JSONL)",
        "tracing",
        fmt_dur(tracing),
        tracing_pct,
        fmt_dur(serialize),
        jsonl_bytes / 1024,
    );
    println!(
        "{:>14} | {:>10} | {:>8.1}%   ({events} events buffered, {dropped} dropped)",
        "verbose events",
        fmt_dur(verbose),
        verbose_pct
    );
    println!();

    format!(
        "{{\n  \
           \"benchmark\": \"instrumentation_overhead\",\n  \
           \"workload\": \"hospital_day\",\n  \
           \"entries\": {},\n  \
           \"cases\": {},\n  \
           \"threads\": {threads},\n  \
           \"noop\": {{ \"seconds\": {:.6} }},\n  \
           \"metrics\": {{ \"seconds\": {:.6}, \"overhead_pct\": {metrics_pct:.2} }},\n  \
           \"tracing\": {{ \"seconds\": {:.6}, \"overhead_pct\": {tracing_pct:.2}, \
             \"serialize_seconds\": {:.6}, \"jsonl_bytes\": {jsonl_bytes} }},\n  \
           \"verbose_events\": {{ \"seconds\": {:.6}, \"overhead_pct\": {verbose_pct:.2}, \
             \"events_buffered\": {events}, \"events_dropped\": {dropped} }}\n}}",
        day.trail.len(),
        day.truth.len(),
        noop.as_secs_f64(),
        metrics.as_secs_f64(),
        tracing.as_secs_f64(),
        serialize.as_secs_f64(),
        verbose.as_secs_f64(),
    )
}

fn p12_streaming(quick: bool) -> String {
    use workload::stream::{case_count, interleave, peak_concurrency};

    println!("## P12 — streaming monitor vs batch (bounded memory, checkpoint/resume)");
    let entries = if quick { 20_000 } else { 120_000 };
    let day = generate_day(
        &HospitalConfig {
            target_entries: entries,
            ..HospitalConfig::default()
        },
        42,
    );
    // Arrival order, not case blocks: the workload the batch auditor never
    // sees but the live monitor is defined by.
    let stream = interleave(&day.trail);
    let cases = case_count(&stream);
    let peak = peak_concurrency(&stream);

    // Batch baseline: the §7 parallel audit over the finished trail.
    let auditor = hospital_auditor();
    let start = Instant::now();
    let batch = audit_parallel(&auditor, &day.trail, 4);
    let batch_time = start.elapsed();

    // Live: sharded monitor with the resident set capped far below peak
    // concurrency, so the memory bound is under constant pressure.
    let shards = 4;
    let max_open = (peak / 8).max(2);
    let config = LiveConfig {
        max_open_cases: max_open,
        ..LiveConfig::default()
    };
    let mut live = ShardedMonitor::new(hospital_auditor(), &config, shards);
    let start = Instant::now();
    live.ingest(&stream).expect("live replay failed");
    let live_time = start.elapsed();
    let stats = live.stats();
    assert!(stats.evictions > 0, "the memory bound must actually bite");

    // Verdict equivalence: every case the batch auditor judged must get
    // the same verdict out of the evicting monitor.
    let mut mismatches = 0usize;
    for c in &batch.cases {
        let live_label = match live.snapshot(c.case) {
            None => "unresolved".to_string(),
            Some(Err(e)) => format!("failed: {e}"),
            Some(Ok(check)) => match check.verdict {
                Verdict::Compliant { can_complete } => format!("compliant/{can_complete}"),
                Verdict::Infringement(inf) => format!("infringement@{}", inf.entry_index),
            },
        };
        let batch_label = match &c.outcome {
            CaseOutcome::Compliant { can_complete } => format!("compliant/{can_complete}"),
            CaseOutcome::Infringement { infringement, .. } => {
                format!("infringement@{}", infringement.entry_index)
            }
            CaseOutcome::Unresolved(_) => "unresolved".to_string(),
            other => format!("{other:?}"),
        };
        if live_label != batch_label {
            mismatches += 1;
            if mismatches <= 5 {
                println!(
                    "  MISMATCH {}: batch {batch_label} vs live {live_label}",
                    c.case
                );
            }
        }
    }
    let verdicts_match = mismatches == 0;

    // Checkpoint/restart/resume: stop mid-stream, serialize, rebuild, feed
    // the rest — the restarted monitor must raise exactly the alarms of
    // the uninterrupted run.
    let mid = stream.len() / 2;
    let mut first_half = ShardedMonitor::new(hospital_auditor(), &config, shards);
    first_half
        .ingest(&stream[..mid])
        .expect("first half failed");
    let pre_stats = first_half.stats();
    let ckpt = first_half
        .checkpoint(mid as u64)
        .expect("checkpoint failed");
    let ckpt_bytes = ckpt.len();
    let (mut resumed, offset) = ShardedMonitor::restore(hospital_auditor(), &config, shards, &ckpt)
        .expect("restore failed");
    assert_eq!(offset, mid as u64, "resume offset must round-trip");
    resumed.ingest(&stream[mid..]).expect("second half failed");
    let straight_alarms: Vec<_> = live.alarms().iter().map(|(c, _)| *c).collect();
    let resumed_alarms: Vec<_> = resumed.alarms().iter().map(|(c, _)| *c).collect();
    let alarms_match = straight_alarms == resumed_alarms;
    assert!(alarms_match, "resume changed the alarm set");
    let evictions_total = pre_stats.evictions + resumed.stats().evictions;

    println!(
        "{} entries, {cases} cases (peak {peak} concurrent), {shards} shards x {max_open} resident",
        stream.len()
    );
    println!(
        "batch {} | live {} | {} alarms, {} evictions, {} rehydrations, {} KiB spilled",
        fmt_dur(batch_time),
        fmt_dur(live_time),
        stats.alarms,
        stats.evictions,
        stats.rehydrations,
        stats.spilled_bytes / 1024
    );
    println!(
        "verdicts match batch: {verdicts_match} ({mismatches} mismatches) | \
         checkpoint {ckpt_bytes} B at entry {mid}, resume alarms match: {alarms_match}"
    );
    println!();

    format!(
        "{{\n  \
           \"benchmark\": \"streaming_monitor\",\n  \
           \"workload\": \"hospital_day_interleaved\",\n  \
           \"entries\": {},\n  \
           \"cases\": {cases},\n  \
           \"peak_concurrency\": {peak},\n  \
           \"shards\": {shards},\n  \
           \"max_open_cases\": {max_open},\n  \
           \"batch\": {{ \"seconds\": {:.6}, \"infringing_cases\": {} }},\n  \
           \"live\": {{ \"seconds\": {:.6}, \"alarms\": {}, \"evictions\": {}, \
             \"rehydrations\": {}, \"retired\": {}, \"spilled_bytes\": {} }},\n  \
           \"checkpoint\": {{ \"bytes\": {ckpt_bytes}, \"at_entry\": {mid}, \
             \"resume_offset_ok\": true, \"alarms_match_uninterrupted\": {alarms_match}, \
             \"evictions_across_restart\": {evictions_total} }},\n  \
           \"verdicts_match_batch\": {verdicts_match}\n}}",
        stream.len(),
        batch_time.as_secs_f64(),
        batch.infringing_cases(),
        live_time.as_secs_f64(),
        stats.alarms,
        stats.evictions,
        stats.rehydrations,
        stats.retired,
        stats.spilled_bytes,
    )
}

fn p13_churn(quick: bool) -> String {
    use purpose_control::checkpoint::{decode_case, encode_case};
    use purpose_control::churn::{decode_churn, encode_churn};
    use workload::stream::{interleave, peak_concurrency};

    println!("## P13 — churn-proof spill path (tiered store, hysteresis, adaptive caps)");
    let entries = if quick { 20_000 } else { 120_000 };
    let day = generate_day(
        &HospitalConfig {
            target_entries: entries,
            ..HospitalConfig::default()
        },
        42,
    );
    let stream = interleave(&day.trail);
    let peak = peak_concurrency(&stream);
    let shards = 4;
    let max_open = (peak / 8).max(2);

    // Batch baseline: the same reference point as P12.
    let auditor = hospital_auditor();
    let start = Instant::now();
    let batch = audit_parallel(&auditor, &day.trail, 4);
    let batch_time = start.elapsed();

    // Live, churn configuration: spill directory set, so evictions flow
    // through the compressed memory tier and (on overflow) the
    // append-only log. The P12 run keeps spill blobs in plain memory;
    // this one exercises the full tiered path.
    let scratch = std::env::temp_dir().join(format!("purposectl-p13-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let config = LiveConfig {
        max_open_cases: max_open,
        spill_dir: Some(scratch.join("live")),
        ..LiveConfig::default()
    };
    let mut live = ShardedMonitor::new(hospital_auditor(), &config, shards);
    let start = Instant::now();
    live.ingest(&stream).expect("live replay failed");
    let live_time = start.elapsed();
    let stats = live.stats();
    assert!(stats.evictions > 0, "the memory bound must actually bite");
    let live_over_batch = live_time.as_secs_f64() / batch_time.as_secs_f64();

    // Disk-eviction reduction: the pre-tier design wrote one spill file
    // per eviction; the tiered store only touches disk on memory-tier
    // overflow. The ratio is the P13 ">= 10x fewer disk evictions" claim.
    let disk_reduction = stats.evictions as f64 / (stats.spill_disk_demotions.max(1)) as f64;

    // Verdict equivalence against the parallel batch audit.
    let mut mismatches = 0usize;
    for c in &batch.cases {
        let live_label = match live.snapshot(c.case) {
            None => "unresolved".to_string(),
            Some(Err(e)) => format!("failed: {e}"),
            Some(Ok(check)) => match check.verdict {
                Verdict::Compliant { can_complete } => format!("compliant/{can_complete}"),
                Verdict::Infringement(inf) => format!("infringement@{}", inf.entry_index),
            },
        };
        let batch_label = match &c.outcome {
            CaseOutcome::Compliant { can_complete } => format!("compliant/{can_complete}"),
            CaseOutcome::Infringement { infringement, .. } => {
                format!("infringement@{}", infringement.entry_index)
            }
            CaseOutcome::Unresolved(_) => "unresolved".to_string(),
            other => format!("{other:?}"),
        };
        if live_label != batch_label {
            mismatches += 1;
            if mismatches <= 5 {
                println!(
                    "  MISMATCH {}: batch {batch_label} vs live {live_label}",
                    c.case
                );
            }
        }
    }
    let verdicts_match = mismatches == 0;

    // Checkpoint over the loaded spill path, restore into fresh
    // directories, finish the stream: alarms must be those of the
    // uninterrupted run.
    let mid = stream.len() / 2;
    let mut first = ShardedMonitor::new(
        hospital_auditor(),
        &LiveConfig {
            spill_dir: Some(scratch.join("first")),
            ..config.clone()
        },
        shards,
    );
    first.ingest(&stream[..mid]).expect("first half failed");
    let ckpt = first.checkpoint(mid as u64).expect("checkpoint failed");
    let ckpt_bytes = ckpt.len();
    drop(first);
    let (mut resumed, offset) = ShardedMonitor::restore(
        hospital_auditor(),
        &LiveConfig {
            spill_dir: Some(scratch.join("resumed")),
            ..config.clone()
        },
        shards,
        &ckpt,
    )
    .expect("restore failed");
    assert_eq!(offset, mid as u64, "resume offset must round-trip");
    resumed.ingest(&stream[mid..]).expect("second half failed");
    let straight_alarms: Vec<_> = live.alarms().iter().map(|(c, _)| *c).collect();
    let resumed_alarms: Vec<_> = resumed.alarms().iter().map(|(c, _)| *c).collect();
    let alarms_match = straight_alarms == resumed_alarms;
    assert!(alarms_match, "resume changed the alarm set");
    let _ = std::fs::remove_dir_all(&scratch);

    // PCLE vs PCLC codec micro-bench on a representative eviction victim
    // (see [`bench::spill_codec_fixtures`]).
    let (churn, durable) = bench::spill_codec_fixtures();
    let pcle = encode_churn(&churn);
    let pclc = encode_case(&durable);
    const CODEC_ITERS: u32 = 2_000;
    let per_op = |d: Duration| d.as_nanos() as u64 / u128::from(CODEC_ITERS) as u64;
    let pcle_enc = per_op(median_time(
        || {
            for _ in 0..CODEC_ITERS {
                std::hint::black_box(encode_churn(std::hint::black_box(&churn)));
            }
        },
        5,
    ));
    let pcle_dec = per_op(median_time(
        || {
            for _ in 0..CODEC_ITERS {
                std::hint::black_box(decode_churn(std::hint::black_box(&pcle)).unwrap());
            }
        },
        5,
    ));
    // What a rehydration cycle pays is envelope decode alone — the entry
    // window stays in wire form. Materializing it (the alarm/durable-
    // checkpoint path, and the closest like-for-like against PCLC decode)
    // is measured separately.
    let pcle_dec_full = per_op(median_time(
        || {
            for _ in 0..CODEC_ITERS {
                let c = decode_churn(std::hint::black_box(&pcle)).unwrap();
                std::hint::black_box(c.entries.decode(c.case).unwrap());
            }
        },
        5,
    ));
    let pclc_enc = per_op(median_time(
        || {
            for _ in 0..CODEC_ITERS {
                std::hint::black_box(encode_case(std::hint::black_box(&durable)));
            }
        },
        5,
    ));
    let pclc_dec = per_op(median_time(
        || {
            for _ in 0..CODEC_ITERS {
                std::hint::black_box(decode_case(std::hint::black_box(&pclc)).unwrap());
            }
        },
        5,
    ));

    println!(
        "{} entries, peak {peak} concurrent, {shards} shards x {max_open} resident",
        stream.len()
    );
    println!(
        "batch {} | live {} ({live_over_batch:.2}x batch) | {} alarms",
        fmt_dur(batch_time),
        fmt_dur(live_time),
        stats.alarms,
    );
    println!(
        "churn: {} evictions ({} avoided), {} tier hits, {} disk demotions \
         ({disk_reduction:.0}x fewer than evictions), {} log bytes, {} compactions, \
         {} cap rebalances",
        stats.evictions,
        stats.evictions_avoided,
        stats.spill_tier_hits,
        stats.spill_disk_demotions,
        stats.spill_log_bytes,
        stats.spill_compactions,
        stats.cap_rebalances,
    );
    println!(
        "codec ({} entries in window): PCLE {} B enc {pcle_enc} ns dec {pcle_dec} ns \
         ({pcle_dec_full} ns with window materialized) | \
         PCLC {} B enc {pclc_enc} ns dec {pclc_dec} ns",
        churn.entries.len(),
        pcle.len(),
        pclc.len(),
    );
    println!(
        "verdicts match batch: {verdicts_match} ({mismatches} mismatches) | \
         checkpoint {ckpt_bytes} B at entry {mid}, resume alarms match: {alarms_match}"
    );
    println!();

    format!(
        "{{\n  \
           \"benchmark\": \"churn_spill_path\",\n  \
           \"workload\": \"hospital_day_interleaved\",\n  \
           \"entries\": {},\n  \
           \"peak_concurrency\": {peak},\n  \
           \"shards\": {shards},\n  \
           \"max_open_cases\": {max_open},\n  \
           \"batch_seconds\": {:.6},\n  \
           \"live_seconds\": {:.6},\n  \
           \"live_over_batch\": {live_over_batch:.4},\n  \
           \"counters\": {{ \"evictions\": {}, \"evictions_avoided\": {}, \
             \"rehydrations\": {}, \"spill_tier_hits\": {}, \"spill_disk_demotions\": {}, \
             \"spill_log_bytes\": {}, \"spill_compactions\": {}, \"cap_rebalances\": {} }},\n  \
           \"disk_eviction_reduction\": {disk_reduction:.1},\n  \
           \"codec\": {{ \"pcle_bytes\": {}, \"pclc_bytes\": {}, \
             \"pcle_encode_ns\": {pcle_enc}, \"pcle_decode_ns\": {pcle_dec}, \
             \"pcle_decode_full_ns\": {pcle_dec_full}, \
             \"pclc_encode_ns\": {pclc_enc}, \"pclc_decode_ns\": {pclc_dec} }},\n  \
           \"checkpoint\": {{ \"bytes\": {ckpt_bytes}, \"at_entry\": {mid}, \
             \"resume_offset_ok\": true, \"alarms_match_uninterrupted\": {alarms_match} }},\n  \
           \"verdicts_match_batch\": {verdicts_match}\n}}",
        stream.len(),
        batch_time.as_secs_f64(),
        live_time.as_secs_f64(),
        stats.evictions,
        stats.evictions_avoided,
        stats.rehydrations,
        stats.spill_tier_hits,
        stats.spill_disk_demotions,
        stats.spill_log_bytes,
        stats.spill_compactions,
        stats.cap_rebalances,
        pcle.len(),
        pclc.len(),
    )
}

fn p14_serve(quick: bool) -> String {
    use workload::stream::interleave;

    println!("## P14 — serving layer: HTTP ingest vs the batch auditor");
    let entries = if quick { 20_000 } else { 120_000 };
    let day = generate_day(
        &HospitalConfig {
            target_entries: entries,
            ..HospitalConfig::default()
        },
        42,
    );
    let stream = interleave(&day.trail);

    // Batch baseline: the §7 parallel audit over the finished trail.
    let start = Instant::now();
    let batch = audit_parallel(&hospital_auditor(), &day.trail, 4);
    let batch_time = start.elapsed();

    // Split arrival order across tenants with the shared routing helper —
    // the same split the e2e harness uses, so each case lands whole on
    // exactly one tenant and per-tenant identity is well-defined.
    const TENANTS: [&str; 3] = ["north", "south", "east"];
    const BATCH: usize = 2_000;
    let mut per_tenant: Vec<Vec<String>> = vec![Vec::new(); TENANTS.len()];
    for e in &stream {
        let key = audit::case_key(e.case.as_str());
        per_tenant[audit::partition_of(key, TENANTS.len())].push(e.to_string());
    }
    let posts: usize = per_tenant.iter().map(|t| t.chunks(BATCH).count()).sum();

    let specs = TENANTS
        .iter()
        .map(|t| TenantSpec {
            name: t.to_string(),
            auditor: hospital_auditor(),
        })
        .collect();
    let server = Server::start(
        specs,
        ServeConfig {
            watermark: stream.len() as u64 + 1,
            ..ServeConfig::default()
        },
    )
    .expect("server boot");
    let addr = server.addr().to_string();

    // Sustained ingest: one client thread per tenant, fixed-size batches,
    // timed from the first byte on the wire until every queue has drained
    // — the latency a caller actually observes, not just socket accept.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (i, tenant) in TENANTS.iter().enumerate() {
            let lines = &per_tenant[i];
            let addr = addr.as_str();
            scope.spawn(move || {
                for chunk in lines.chunks(BATCH) {
                    let body = format!("{}\n", chunk.join("\n"));
                    let resp =
                        client::request(addr, "POST", &format!("/v1/{tenant}/entries"), &body)
                            .expect("submit");
                    assert_eq!(resp.status, 202, "submit failed: {}", resp.body);
                }
            });
        }
    });
    let drain_deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let queued: u64 = TENANTS
            .iter()
            .map(|t| {
                let resp = client::request(&addr, "GET", &format!("/v1/{t}/verdicts"), "")
                    .expect("verdicts");
                let doc = obs::parse_json(&resp.body).expect("verdicts JSON");
                doc.get("queued").and_then(|v| v.as_f64()).expect("queued") as u64
            })
            .sum();
        if queued == 0 {
            break;
        }
        assert!(Instant::now() < drain_deadline, "queues never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    let serve_time = start.elapsed();
    let per_sec = stream.len() as f64 / serve_time.as_secs_f64();

    // Verdict identity: every batch outcome against the served label,
    // fetched through the public case endpoint.
    let mut mismatches = 0usize;
    let mut alarms = 0usize;
    for c in &batch.cases {
        let batch_label = match &c.outcome {
            CaseOutcome::Compliant { can_complete } => {
                format!("compliant complete={can_complete}")
            }
            CaseOutcome::Infringement {
                infringement,
                severity,
            } => {
                alarms += 1;
                format!(
                    "infringement@{} severity={:.4}",
                    infringement.entry_index, severity.score
                )
            }
            other => format!("{other:?}"),
        };
        let key = audit::case_key(c.case.as_str());
        let tenant = TENANTS[audit::partition_of(key, TENANTS.len())];
        let resp = client::request(&addr, "GET", &format!("/v1/{tenant}/cases/{}", c.case), "")
            .expect("case fetch");
        let served = obs::parse_json(&resp.body)
            .ok()
            .and_then(|doc| {
                doc.get("verdict")
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
            })
            .unwrap_or_else(|| format!("status {}", resp.status));
        if served != batch_label {
            mismatches += 1;
            if mismatches <= 5 {
                println!(
                    "  MISMATCH {}: batch {batch_label} vs served {served}",
                    c.case
                );
            }
        }
    }
    let verdicts_match = mismatches == 0;
    assert!(verdicts_match, "served verdicts diverged from batch");

    let report = server.shutdown().expect("shutdown");
    assert!(
        report.failed.is_empty(),
        "tenant worker died: {:?}",
        report.failed
    );
    let audited: u64 = report.checkpoints.iter().map(|(_, n, _)| *n).sum();
    assert_eq!(audited, stream.len() as u64, "entries lost in flight");
    let sustained = per_sec >= 50_000.0;
    if !quick && cfg!(not(debug_assertions)) {
        assert!(
            sustained,
            "sustained HTTP ingest below 50k entries/s: {per_sec:.0}"
        );
    }

    println!(
        "{} entries over HTTP across {} tenants ({BATCH}-line batches, {posts} POSTs)",
        stream.len(),
        TENANTS.len()
    );
    println!(
        "batch {} | served ingest {} ({per_sec:.0} entries/s) | \
         {} cases, {alarms} alarms, verdicts match: {verdicts_match}",
        fmt_dur(batch_time),
        fmt_dur(serve_time),
        batch.cases.len(),
    );
    println!();

    format!(
        "{{\n  \
           \"benchmark\": \"serving_layer\",\n  \
           \"workload\": \"hospital_day_interleaved\",\n  \
           \"entries\": {},\n  \
           \"tenants\": {},\n  \
           \"lines_per_post\": {BATCH},\n  \
           \"posts\": {posts},\n  \
           \"batch\": {{ \"seconds\": {:.6}, \"infringing_cases\": {} }},\n  \
           \"serve\": {{ \"seconds\": {:.6}, \"entries_per_sec\": {per_sec:.0}, \
             \"alarms\": {alarms}, \"drained_offset_ok\": true }},\n  \
           \"sustained_50k_per_sec\": {sustained},\n  \
           \"verdicts_match_batch\": {verdicts_match}\n}}",
        stream.len(),
        TENANTS.len(),
        batch_time.as_secs_f64(),
        batch.infringing_cases(),
        serve_time.as_secs_f64(),
    )
}

fn p15_durability(quick: bool) -> String {
    use purpose_control::SyncPolicy;
    use workload::stream::{interleave, peak_concurrency};

    println!("## P15 — fsync-policy overhead on the live churn workload");
    let entries = if quick { 20_000 } else { 120_000 };
    let day = generate_day(
        &HospitalConfig {
            target_entries: entries,
            ..HospitalConfig::default()
        },
        42,
    );
    let stream = interleave(&day.trail);
    let peak = peak_concurrency(&stream);
    let shards = 4;
    let max_open = (peak / 8).max(2);

    let auditor = hospital_auditor();
    let start = Instant::now();
    let _batch = audit_parallel(&auditor, &day.trail, 4);
    let batch_time = start.elapsed();

    let scratch = std::env::temp_dir().join(format!("purposectl-p15-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let policies = [
        ("never", SyncPolicy::Never),
        ("batched", SyncPolicy::default()),
        ("always", SyncPolicy::Always),
    ];

    // One live run of the stream under `config`; returns the JSON fragment
    // and (seconds, alarms) for the cross-policy identity check.
    let run = |label: &str, config: &LiveConfig| -> (String, f64, u64) {
        let mut live = ShardedMonitor::new(hospital_auditor(), config, shards);
        let start = Instant::now();
        live.ingest(&stream).expect("live replay failed");
        let secs = start.elapsed().as_secs_f64();
        let stats = live.stats();
        println!(
            "  {label:<20} {} ({:.2}x batch): {} fsyncs, {} disk demotions, \
             {} log bytes, {} alarms",
            fmt_dur(Duration::from_secs_f64(secs)),
            secs / batch_time.as_secs_f64(),
            stats.durable_fsyncs,
            stats.spill_disk_demotions,
            stats.spill_log_bytes,
            stats.alarms,
        );
        let json = format!(
            "{{ \"live_seconds\": {secs:.6}, \"live_over_batch\": {:.4}, \
             \"fsyncs\": {}, \"disk_demotions\": {}, \"log_bytes\": {} }}",
            secs / batch_time.as_secs_f64(),
            stats.durable_fsyncs,
            stats.spill_disk_demotions,
            stats.spill_log_bytes,
        );
        (json, secs, stats.alarms)
    };

    // (a) The stock P13 churn configuration (PR 6 baseline shape): the
    // compressed memory tier absorbs the churn, so the spill log — and
    // with it the fsync policy — is rarely touched. This is the
    // acceptance configuration: batched must stay within 10% of the PR 6
    // live-over-batch baseline.
    println!("stock P13 configuration (memory tier absorbs churn):");
    let mut stock = Vec::new();
    let mut alarms_seen = Vec::new();
    for (label, policy) in policies {
        let config = LiveConfig {
            max_open_cases: max_open,
            spill_dir: Some(scratch.join(format!("stock-{label}"))),
            durability: policy,
            ..LiveConfig::default()
        };
        let (json, secs, alarms) = run(label, &config);
        stock.push((label, json, secs));
        alarms_seen.push(alarms);
    }

    // (b) Forced-disk variant: no memory tier, every eviction hits the
    // append-only log — the worst case for fsync cost and the shape that
    // actually separates the three policies.
    println!("forced-disk variant (memory tier disabled, every eviction hits the log):");
    let mut forced = Vec::new();
    for (label, policy) in policies {
        let config = LiveConfig {
            max_open_cases: max_open,
            spill_dir: Some(scratch.join(format!("disk-{label}"))),
            mem_spill_bytes: 0,
            durability: policy,
            ..LiveConfig::default()
        };
        let (json, secs, alarms) = run(label, &config);
        forced.push((label, json, secs));
        alarms_seen.push(alarms);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    // The policy buys durability, never verdicts: every run must raise
    // the same alarms.
    assert!(
        alarms_seen.windows(2).all(|w| w[0] == w[1]),
        "fsync policy changed the alarm count: {alarms_seen:?}"
    );

    let stock_never = stock[0].2;
    let stock_batched = stock[1].2;
    let forced_never = forced[0].2;
    let forced_batched = forced[1].2;
    let forced_always = forced[2].2;
    println!(
        "overhead vs never: stock batched {:+.1}% | forced-disk batched {:+.1}%, \
         always {:+.1}%",
        (stock_batched / stock_never - 1.0) * 100.0,
        (forced_batched / forced_never - 1.0) * 100.0,
        (forced_always / forced_never - 1.0) * 100.0,
    );
    println!();

    let section = |runs: &[(&str, String, f64)]| {
        runs.iter()
            .map(|(label, json, _)| format!("\"{label}\": {json}"))
            .collect::<Vec<_>>()
            .join(",\n    ")
    };
    format!(
        "{{\n  \
           \"benchmark\": \"durability_fsync_policy\",\n  \
           \"workload\": \"hospital_day_interleaved\",\n  \
           \"entries\": {},\n  \
           \"shards\": {shards},\n  \
           \"max_open_cases\": {max_open},\n  \
           \"batch_seconds\": {:.6},\n  \
           \"stock\": {{\n    {}\n  }},\n  \
           \"forced_disk\": {{\n    {}\n  }},\n  \
           \"stock_batched_over_never\": {:.4},\n  \
           \"forced_batched_over_never\": {:.4},\n  \
           \"forced_always_over_never\": {:.4},\n  \
           \"alarms_identical_across_policies\": true\n}}",
        stream.len(),
        batch_time.as_secs_f64(),
        section(&stock),
        section(&forced),
        stock_batched / stock_never,
        forced_batched / forced_never,
        forced_always / forced_never,
    )
}

/// One timed serve ingest of a pre-split workload under `tracer` — the
/// P16 measurement primitive. Returns (wall seconds, kept traces, spans).
fn traced_serve_run(
    per_tenant: &[Vec<String>],
    tenants: &[&str],
    total: usize,
    batch: usize,
    tracer: obs::Tracer,
) -> (f64, u64, u64) {
    let specs = tenants
        .iter()
        .map(|t| TenantSpec {
            name: t.to_string(),
            auditor: hospital_auditor(),
        })
        .collect();
    let server = Server::start(
        specs,
        ServeConfig {
            watermark: total as u64 + 1,
            tracer: tracer.clone(),
            ..ServeConfig::default()
        },
    )
    .expect("server boot");
    let addr = server.addr().to_string();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (i, tenant) in tenants.iter().enumerate() {
            let lines = &per_tenant[i];
            let addr = addr.as_str();
            scope.spawn(move || {
                for chunk in lines.chunks(batch) {
                    let body = format!("{}\n", chunk.join("\n"));
                    let resp =
                        client::request(addr, "POST", &format!("/v1/{tenant}/entries"), &body)
                            .expect("submit");
                    assert_eq!(resp.status, 202, "submit failed: {}", resp.body);
                }
            });
        }
    });
    let drain_deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let queued: u64 = tenants
            .iter()
            .map(|t| {
                let resp = client::request(&addr, "GET", &format!("/v1/{t}/verdicts"), "")
                    .expect("verdicts");
                let doc = obs::parse_json(&resp.body).expect("verdicts JSON");
                doc.get("queued").and_then(|v| v.as_f64()).expect("queued") as u64
            })
            .sum();
        if queued == 0 {
            break;
        }
        assert!(Instant::now() < drain_deadline, "queues never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    let secs = start.elapsed().as_secs_f64();
    let kept = tracer.drain().len() as u64;
    let spans = tracer.spans_total();
    let report = server.shutdown().expect("shutdown");
    assert!(
        report.failed.is_empty(),
        "tenant worker died: {:?}",
        report.failed
    );
    (secs, kept, spans)
}

fn p16_tracing(quick: bool) -> String {
    use workload::stream::interleave;

    println!("## P16 — request-tracing overhead: noop vs tail-sampled vs fully traced");
    let entries = if quick { 20_000 } else { 120_000 };
    let day = generate_day(
        &HospitalConfig {
            target_entries: entries,
            ..HospitalConfig::default()
        },
        42,
    );
    let stream = interleave(&day.trail);
    const TENANTS: [&str; 3] = ["north", "south", "east"];
    const BATCH: usize = 2_000;
    let mut per_tenant: Vec<Vec<String>> = vec![Vec::new(); TENANTS.len()];
    for e in &stream {
        let key = audit::case_key(e.case.as_str());
        per_tenant[audit::partition_of(key, TENANTS.len())].push(e.to_string());
    }

    // Min of 5 runs per configuration: wall-clock on this workload is
    // dominated by HTTP scheduling noise (run-to-run swings exceed the
    // effect under measurement), and min-of-N is the standard estimator
    // for a cost floor. The noop run is the baseline the
    // disabled-by-default path must not regress, the 1% tail sample is
    // the recommended production setting, full tracing bounds the worst
    // case an operator can switch on.
    let reps = 5;
    let measure = |mk: &dyn Fn() -> obs::Tracer| {
        let mut secs = Vec::with_capacity(reps);
        let (mut kept, mut spans) = (0, 0);
        for _ in 0..reps {
            let (s, k, sp) = traced_serve_run(&per_tenant, &TENANTS, stream.len(), BATCH, mk());
            secs.push(s);
            kept = k;
            spans = sp;
        }
        secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (secs[0], kept, spans)
    };
    let (noop_secs, _, _) = measure(&obs::Tracer::noop);
    let (sampled_secs, sampled_kept, sampled_spans) =
        measure(&|| obs::Tracer::sampled(0.01, 100_000));
    let (full_secs, full_kept, full_spans) = measure(&|| obs::Tracer::sampled(1.0, 0));

    let overhead = |t: f64| (t / noop_secs - 1.0) * 100.0;
    let sampled_pct = overhead(sampled_secs);
    let full_pct = overhead(full_secs);
    // A fully-traced run must emit one span tree per POST (plus the
    // drain-poll GETs); the sampled run keeps roughly 1% of them.
    let posts: u64 = per_tenant
        .iter()
        .map(|t| t.chunks(BATCH).count() as u64)
        .sum();
    assert!(
        full_kept >= posts,
        "full tracing kept {full_kept} traces for {posts} POSTs"
    );
    let sampled_ok = sampled_pct <= 5.0;
    if !quick && cfg!(not(debug_assertions)) {
        assert!(
            sampled_ok,
            "1% tail-sampled tracing overhead above the 5% budget: {sampled_pct:.1}%"
        );
    }

    println!(
        "{} entries over HTTP, min of {reps}: noop {:.3}s | 1% sample {:.3}s \
         ({sampled_pct:+.1}%) | full {:.3}s ({full_pct:+.1}%)",
        stream.len(),
        noop_secs,
        sampled_secs,
        full_secs,
    );
    println!(
        "kept traces: sampled {sampled_kept} ({sampled_spans} spans) | \
         full {full_kept} ({full_spans} spans) for {posts} POSTs"
    );
    println!();

    format!(
        "{{\n  \
           \"benchmark\": \"request_tracing_overhead\",\n  \
           \"workload\": \"hospital_day_interleaved\",\n  \
           \"entries\": {},\n  \
           \"tenants\": {},\n  \
           \"reps\": {reps},\n  \
           \"noop_seconds\": {noop_secs:.6},\n  \
           \"sampled\": {{ \"rate\": 0.01, \"slow_us\": 100000, \"seconds\": {sampled_secs:.6}, \
             \"overhead_pct\": {sampled_pct:.2}, \"kept_traces\": {sampled_kept}, \
             \"spans\": {sampled_spans} }},\n  \
           \"full\": {{ \"rate\": 1.0, \"seconds\": {full_secs:.6}, \
             \"overhead_pct\": {full_pct:.2}, \"kept_traces\": {full_kept}, \
             \"spans\": {full_spans} }},\n  \
           \"sampled_within_5pct_budget\": {sampled_ok}\n}}",
        stream.len(),
        TENANTS.len(),
    )
}

/// Run every projected case through `check`, fanned over `threads`
/// contiguous chunks (the duplicate-heavy cases are cost-homogeneous, so
/// chunking balances fine), preserving case order in the result.
fn p17_run_all<'a>(
    projected: &[Vec<&'a audit::LogEntry>],
    threads: usize,
    check: &(dyn Fn(&[&'a audit::LogEntry]) -> CaseCheck + Sync),
) -> Vec<CaseCheck> {
    if threads <= 1 {
        return projected.iter().map(|e| check(e)).collect();
    }
    let chunk = projected.len().div_ceil(threads);
    let mut out = Vec::with_capacity(projected.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = projected
            .chunks(chunk)
            .map(|slice| s.spawn(move || slice.iter().map(|e| check(e)).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("replay worker panicked"));
        }
    });
    out
}

fn p17_trie(quick: bool, gate: bool) -> String {
    use workload::dupheavy::{generate_dupheavy_with, DupHeavyConfig};

    println!("## P17 — prefix-sharing replay trie vs automaton (duplicate-heavy day)");
    let cfg = DupHeavyConfig {
        cases: if quick { 1_200 } else { 4_000 },
        archetypes: 4,
        duplicate_fraction: 0.92,
        deviant_fraction: 0.02,
        error_prob: 0.1,
    };
    let encoded = encode(&healthcare_treatment());
    let day = generate_dupheavy_with(&cfg, 4242, &encoded);
    let h = hospital_roles();
    let cases: Vec<cows::symbol::Symbol> = day.trail.cases().into_iter().collect();
    // Project each case once: the per-case replay core is what the two
    // engines differ on, and what we time. (Projection itself is
    // engine-independent and would only dilute the comparison.)
    let projected: Vec<Vec<&audit::LogEntry>> =
        cases.iter().map(|&c| day.trail.project_case(c)).collect();
    let entries_total: usize = projected.iter().map(|c| c.len()).sum();

    let auto_opts = CheckOptions {
        engine: Engine::Automaton,
        ..CheckOptions::default()
    };
    let trie_opts = CheckOptions {
        engine: Engine::Trie,
        ..CheckOptions::default()
    };
    // Min of 3: throughput floor, same estimator as P16. Each trie rep
    // starts from a cold, empty cache, so its misses are paid inside the
    // timed region — the speedup is not an artifact of pre-warming.
    let reps = 3;
    let time_one = |threads: usize, trie: bool| -> (f64, Vec<CaseCheck>) {
        let mut best = f64::MAX;
        let mut last = Vec::new();
        for _ in 0..reps {
            let shared = trie.then(|| Arc::new(ReplayTrie::new(encoded.automaton.clone())));
            let t = Instant::now();
            let out = p17_run_all(&projected, threads, &|entries| match &shared {
                Some(tr) => check_case_with(
                    &encoded,
                    &h,
                    entries,
                    &trie_opts,
                    &obs::Recorder::noop(),
                    Some(tr),
                )
                .expect("trie replay failed"),
                None => check_case(&encoded, &h, entries, &auto_opts).expect("replay failed"),
            });
            best = best.min(t.elapsed().as_secs_f64());
            last = out;
        }
        (best, last)
    };

    let (auto_t1, auto_r1) = time_one(1, false);
    let (auto_t8, auto_r8) = time_one(8, false);
    let (trie_t1, trie_r1) = time_one(1, true);
    let (trie_t8, trie_r8) = time_one(8, true);

    // Byte-identity of the observable outputs across engines and thread
    // counts — this never degrades to a warning, even outside --gate.
    let fp = |checks: &[CaseCheck]| -> Vec<(String, usize, usize)> {
        checks
            .iter()
            .map(|c| {
                let v = match &c.verdict {
                    Verdict::Compliant { can_complete } => format!("compliant/{can_complete}"),
                    Verdict::Infringement(inf) => format!("infringement@{}", inf.entry_index),
                };
                (v, c.explored_successors, c.peak_configurations)
            })
            .collect()
    };
    let baseline = fp(&auto_r1);
    for (label, run) in [
        ("automaton/8", fp(&auto_r8)),
        ("trie/1", fp(&trie_r1)),
        ("trie/8", fp(&trie_r8)),
    ] {
        assert_eq!(
            baseline, run,
            "P17: {label} verdicts diverged from automaton/1"
        );
    }
    let infringing = baseline
        .iter()
        .filter(|(v, _, _)| v.starts_with("inf"))
        .count();

    // One instrumented pass on a persistent trie for the cache counters.
    let stats_trie = Arc::new(ReplayTrie::new(encoded.automaton.clone()));
    for entries in &projected {
        check_case_with(
            &encoded,
            &h,
            entries,
            &trie_opts,
            &obs::Recorder::noop(),
            Some(&stats_trie),
        )
        .expect("trie replay failed");
    }
    let ts = stats_trie.stats();

    let cps = |secs: f64| cfg.cases as f64 / secs;
    let speedup_t1 = auto_t1 / trie_t1;
    let speedup_t8 = auto_t8 / trie_t8;
    println!(
        "{} cases ({} entries, {} stamped, {} infringing), min of {reps}:",
        cfg.cases, entries_total, day.stamped, infringing
    );
    println!(
        "  1 thread : automaton {:>9} ({:>9.0} cases/s) | trie {:>9} ({:>9.0} cases/s) | {speedup_t1:.1}x",
        fmt_dur(Duration::from_secs_f64(auto_t1)),
        cps(auto_t1),
        fmt_dur(Duration::from_secs_f64(trie_t1)),
        cps(trie_t1),
    );
    println!(
        "  8 threads: automaton {:>9} ({:>9.0} cases/s) | trie {:>9} ({:>9.0} cases/s) | {speedup_t8:.1}x",
        fmt_dur(Duration::from_secs_f64(auto_t8)),
        cps(auto_t8),
        fmt_dur(Duration::from_secs_f64(trie_t8)),
        cps(trie_t8),
    );
    println!(
        "  trie cache: {} hits / {} misses ({:.1}% hit rate), {} frontiers, {} transitions, {} KiB",
        ts.hits,
        ts.misses,
        100.0 * ts.hits as f64 / (ts.hits + ts.misses).max(1) as f64,
        ts.frontiers,
        ts.transitions,
        ts.bytes / 1024,
    );
    if gate {
        assert!(
            speedup_t1 >= 3.0,
            "P17 gate: duplicate-heavy trie speedup {speedup_t1:.2}x below the 3x floor"
        );
        println!("  gate: OK (>= 3.0x, verdicts identical)");
    }
    println!();

    format!(
        "{{\n  \
           \"benchmark\": \"replay_trie_vs_automaton\",\n  \
           \"workload\": \"dupheavy_treatment_day\",\n  \
           \"cases\": {},\n  \
           \"entries\": {entries_total},\n  \
           \"stamped_cases\": {},\n  \
           \"infringing_cases\": {infringing},\n  \
           \"duplicate_fraction\": {},\n  \
           \"archetypes\": {},\n  \
           \"reps\": {reps},\n  \
           \"automaton\": {{ \"t1_seconds\": {auto_t1:.6}, \"t1_cases_per_s\": {:.1}, \
             \"t8_seconds\": {auto_t8:.6}, \"t8_cases_per_s\": {:.1} }},\n  \
           \"trie\": {{ \"t1_seconds\": {trie_t1:.6}, \"t1_cases_per_s\": {:.1}, \
             \"t8_seconds\": {trie_t8:.6}, \"t8_cases_per_s\": {:.1}, \
             \"hits\": {}, \"misses\": {}, \"frontiers\": {}, \"transitions\": {}, \
             \"bytes\": {} }},\n  \
           \"speedup_t1\": {speedup_t1:.2},\n  \
           \"speedup_t8\": {speedup_t8:.2},\n  \
           \"verdicts_identical\": true\n}}",
        cfg.cases,
        day.stamped,
        cfg.duplicate_fraction,
        cfg.archetypes,
        cps(auto_t1),
        cps(auto_t8),
        cps(trie_t1),
        cps(trie_t8),
        ts.hits,
        ts.misses,
        ts.frontiers,
        ts.transitions,
        ts.bytes,
    )
}

/// Replace or append one top-level `"key": {...}` section of an existing
/// report file without rerunning the other experiments. The section's
/// object is located by brace matching (no string values in the report
/// contain braces), removed if present, and the fresh body appended last.
fn splice_section(existing: &str, key: &str, body: &str) -> String {
    let mut base = existing.trim_end().to_string();
    let needle = format!("\"{key}\"");
    if let Some(i) = base.find(&needle) {
        let open = base[i..].find('{').expect("malformed section") + i;
        let mut depth = 0usize;
        let mut end = open;
        for (j, c) in base[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        assert!(end > open, "unbalanced braces in BENCH_replay.json");
        // Swallow the separator comma on whichever side has one.
        let before = base[..i].trim_end();
        let start = if before.ends_with(',') {
            before.len() - 1
        } else {
            i
        };
        let mut rest = base[end..].trim_start();
        if start == i && rest.starts_with(',') {
            rest = rest[1..].trim_start();
        }
        base = format!("{}{}", &base[..start], rest);
    }
    let i = base.rfind('}').expect("malformed BENCH_replay.json");
    base.truncate(i);
    let kept = base.trim_end().trim_end_matches(',').len();
    base.truncate(kept);
    format!("{base},\n\"{key}\": {body}\n}}\n")
}

/// Replace or append the `p14_serve` section of an existing report file
/// without rerunning P1–P13 (the serving bench is self-contained).
fn splice_p14(existing: &str, p14: &str) -> String {
    splice_section(existing, "p14_serve", p14)
}

fn fig4_summary() {
    println!("## F4 — the paper's running example (Fig. 4)");
    let auditor = hospital_auditor();
    let trail = figure4_trail();
    let report = auditor.audit(&trail);
    println!(
        "cases: {} total, {} compliant, {} infringing, {} preventive violations",
        report.cases.len(),
        report.compliant_cases(),
        report.infringing_cases(),
        report.preventive_violations.len()
    );
    for c in &report.cases {
        let v = match &c.outcome {
            CaseOutcome::Compliant { can_complete } => {
                format!(
                    "compliant ({})",
                    if *can_complete {
                        "complete"
                    } else {
                        "in progress"
                    }
                )
            }
            CaseOutcome::Infringement { severity, .. } => {
                format!("INFRINGEMENT (severity {:.2})", severity.score)
            }
            other => format!("{other:?}"),
        };
        println!("  {:<6} {v}", c.case.to_string());
    }
    println!();
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if let Some(i) = argv.iter().position(|a| a == "--p9-child") {
        p9_child(&argv[i + 1], &argv[i + 2]);
        return;
    }
    let quick = argv.iter().any(|a| a == "--quick");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_replay.json");
    if argv.iter().any(|a| a == "--only-p14") {
        let p14 = p14_serve(quick);
        let existing = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e} (run the full report first)", path.display()));
        std::fs::write(&path, splice_p14(&existing, &p14)).expect("write report");
        println!("wrote {}", path.display());
        return;
    }
    if argv.iter().any(|a| a == "--only-p15") {
        let p15 = p15_durability(quick);
        let existing = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e} (run the full report first)", path.display()));
        std::fs::write(&path, splice_section(&existing, "p15_durability", &p15))
            .expect("write report");
        println!("wrote {}", path.display());
        return;
    }
    if argv.iter().any(|a| a == "--only-p16") {
        let p16 = p16_tracing(quick);
        let existing = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e} (run the full report first)", path.display()));
        std::fs::write(&path, splice_section(&existing, "p16_tracing", &p16))
            .expect("write report");
        println!("wrote {}", path.display());
        return;
    }
    let gate = argv.iter().any(|a| a == "--gate");
    if argv.iter().any(|a| a == "--only-p17") {
        let p17 = p17_trie(quick, gate);
        let existing = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e} (run the full report first)", path.display()));
        std::fs::write(&path, splice_section(&existing, "p17_trie", &p17)).expect("write report");
        println!("wrote {}", path.display());
        return;
    }
    println!("# purpose-control experiment report\n");
    fig4_summary();
    p1_naive_vs_replay(quick);
    p2_scaling(quick);
    p3_parallel(quick);
    p4_hospital_day(quick);
    p5_petri();
    p6_or_fanout();
    p7_attack_detection();
    let p8 = p8_engine_ablation(quick);
    let p9 = p9_snapshot_warm_start(quick);
    let p10 = p10_degraded_mode(quick);
    let p11 = p11_observability(quick);
    let p12 = p12_streaming(quick);
    let p13 = p13_churn(quick);
    let p14 = p14_serve(quick);
    let p15 = p15_durability(quick);
    let p16 = p16_tracing(quick);
    let p17 = p17_trie(quick, gate);
    let json = format!(
        "{{\n\"p8_engine_ablation\": {},\n\"p9_snapshot_warm_start\": {},\n\
         \"p10_degraded_mode\": {},\n\"p11_observability\": {},\n\
         \"p12_streaming\": {},\n\"p13_churn\": {},\n\"p14_serve\": {},\n\
         \"p15_durability\": {},\n\"p16_tracing\": {},\n\"p17_trie\": {}\n}}\n",
        p8.trim_end(),
        p9,
        p10,
        p11,
        p12,
        p13,
        p14,
        p15,
        p16,
        p17
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}
