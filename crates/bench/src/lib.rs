//! Shared setup for the benchmark harness.
//!
//! One helper per experiment family of `DESIGN.md` §4; the Criterion
//! benches in `benches/` and the `report` binary both build on these.

use audit::entry::LogEntry;
use audit::trail::AuditTrail;
use bpmn::encode::{encode, Encoded};
use bpmn::model::{ProcessBuilder, ProcessModel};
use bpmn::models::{clinical_trial, healthcare_treatment};
use policy::hierarchy::RoleHierarchy;
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, ProcessRegistry};
use purpose_control::replay::{check_case, CaseCheck, CheckOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::simulate::{simulate_case, SimConfig};

/// The running example's auditor (Figs. 1–3 registered).
pub fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

/// A branching loop process: each iteration chooses task `A1` or `A2`, so
/// the observable-trace set doubles per unrolling — the shape on which the
/// naïve enumeration of §1 blows up exponentially while Algorithm 1 stays
/// linear.
///
/// ```text
/// S → M ⇢ X → (A1 | A2) → J → D → (M | B → E)      (M, X, J, D: XOR)
/// ```
pub fn loop_process() -> ProcessModel {
    let mut b = ProcessBuilder::new("loop_process");
    let p = b.pool("P");
    let s = b.start(p, "S");
    let m = b.xor(p, "M"); // loop entry merge
    let x = b.xor(p, "X"); // iteration choice
    let a1 = b.task(p, "A1");
    let a2 = b.task(p, "A2");
    let j = b.xor(p, "J"); // iteration join
    let d = b.xor(p, "D"); // continue or exit
    let t = b.task(p, "B");
    let e = b.end(p, "E");
    b.flow(s, m);
    b.flow(m, x);
    b.flow(x, a1);
    b.flow(x, a2);
    b.flow(a1, j);
    b.flow(a2, j);
    b.flow(j, d);
    b.flow(d, m); // loop back
    b.flow(d, t);
    b.flow(t, e);
    b.build().expect("valid loop process")
}

/// A trail that iterates the [`loop_process`] `k` times (always choosing
/// `A1`) then exits through `B`.
pub fn loop_trail(k: usize) -> Vec<LogEntry> {
    let mut entries = Vec::with_capacity(k + 1);
    for i in 0..k {
        entries.push(LogEntry::success(
            "u",
            "P",
            policy::Action::Read,
            None,
            "A1",
            "c",
            audit::Timestamp(i as u64 * 10),
        ));
    }
    entries.push(LogEntry::success(
        "u",
        "P",
        policy::Action::Read,
        None,
        "B",
        "c",
        audit::Timestamp(k as u64 * 10),
    ));
    entries
}

/// A sequential process of `n` tasks together with one full execution.
pub fn sequential_workload(n: usize, seed: u64) -> (Encoded, Vec<LogEntry>) {
    let model = workload::procgen::generate(&workload::ProcGenConfig::sequential(n), seed);
    let encoded = encode(&model);
    let mut rng = StdRng::seed_from_u64(seed);
    let entries = simulate_case(&encoded, "c", &SimConfig::new("P"), &mut rng);
    (encoded, entries)
}

/// A structured (gateway-rich) process of roughly `n` tasks with one
/// execution.
pub fn structured_workload(n: usize, seed: u64) -> (Encoded, Vec<LogEntry>) {
    let cfg = workload::ProcGenConfig {
        target_tasks: n,
        ..workload::ProcGenConfig::default()
    };
    let model = workload::procgen::generate(&cfg, seed);
    let encoded = encode(&model);
    let mut rng = StdRng::seed_from_u64(seed);
    let entries = simulate_case(&encoded, "c", &SimConfig::new("P"), &mut rng);
    (encoded, entries)
}

/// Replay a case with default options (no hierarchy).
pub fn replay(encoded: &Encoded, entries: &[LogEntry]) -> CaseCheck {
    let refs: Vec<&LogEntry> = entries.iter().collect();
    check_case(
        encoded,
        &RoleHierarchy::new(),
        &refs,
        &CheckOptions::default(),
    )
    .expect("replay machinery succeeds")
}

/// An OR split/join diamond with `fanout` branches, plus the trail that
/// activates all of them.
pub fn or_diamond(fanout: usize) -> (Encoded, Vec<LogEntry>) {
    let mut b = ProcessBuilder::new("or_diamond");
    let p = b.pool("P");
    let s = b.start(p, "S");
    let head = b.task(p, "T0");
    let g = b.or_split(p, "G");
    let j = b.or_join(p, "J");
    b.pair_or(g, j);
    let tail = b.task(p, "Tz");
    let e = b.end(p, "E");
    b.flow(s, head);
    b.flow(head, g);
    for i in 0..fanout {
        let t = b.task(p, format!("T{}", i + 1).as_str());
        b.flow(g, t);
        b.flow(t, j);
    }
    b.flow(j, tail);
    b.flow(tail, e);
    let model = b.build().expect("valid OR diamond");
    let encoded = encode(&model);

    let mut entries = vec![LogEntry::success(
        "u",
        "P",
        policy::Action::Read,
        None,
        "T0",
        "c",
        audit::Timestamp(0),
    )];
    for i in 0..fanout {
        entries.push(LogEntry::success(
            "u",
            "P",
            policy::Action::Read,
            None,
            format!("T{}", i + 1).as_str(),
            "c",
            audit::Timestamp((i as u64 + 1) * 10),
        ));
    }
    entries.push(LogEntry::success(
        "u",
        "P",
        policy::Action::Read,
        None,
        "Tz",
        "c",
        audit::Timestamp((fanout as u64 + 1) * 10),
    ));
    (encoded, entries)
}

/// Build an [`AuditTrail`] from in-memory entries.
pub fn to_trail(entries: &[LogEntry]) -> AuditTrail {
    AuditTrail::from_entries(entries.to_vec())
}

/// A matched pair of spill envelopes — churn (`PCLE`) and durable
/// (`PCLC`) — for the same populated session: the longest treatment case
/// of a small synthetic hospital day, a representative eviction victim.
/// Shared by the P13 report section and the `spill_codec` bench.
pub fn spill_codec_fixtures() -> (
    purpose_control::ChurnCheckpoint,
    purpose_control::CaseCheckpoint,
) {
    use purpose_control::session::{FeedOutcome, SessionCore};
    use workload::hospital::{generate_day, HospitalConfig};

    let day = generate_day(
        &HospitalConfig {
            target_entries: 2_000,
            ..HospitalConfig::default()
        },
        42,
    );
    let auditor = hospital_auditor();
    let encoded = encode(&healthcare_treatment());
    let hierarchy = auditor.context.roles();
    let victim = day
        .trail
        .cases()
        .into_iter()
        .filter(|c| c.to_string().starts_with("HT-"))
        .max_by_key(|&c| day.trail.project_case(c).len())
        .expect("the day has treatment cases");
    let mut core = SessionCore::new(&encoded, auditor.options).expect("session open");
    let mut kept: Vec<LogEntry> = Vec::new();
    let mut last_seen = audit::Timestamp(0);
    for e in day.trail.project_case(victim) {
        if core
            .feed(&encoded, hierarchy, e)
            .is_ok_and(|o| !matches!(o, FeedOutcome::Rejected(_)))
        {
            kept.push(e.clone());
            last_seen = e.time;
        }
    }
    let churn = purpose_control::ChurnCheckpoint {
        case: victim,
        purpose: policy::samples::treatment(),
        process_key: encoded.snapshot_key(),
        ids: core.conf_ids().expect("automaton engine").to_vec(),
        meta: core.export_meta(),
        entries: purpose_control::EntryBlock::from_entries(&kept),
        entries_dropped: 0,
        last_seen,
    };
    let durable = purpose_control::CaseCheckpoint {
        case: victim,
        purpose: policy::samples::treatment(),
        process_key: encoded.snapshot_key(),
        state: core.export_state(),
        entries: kept,
        entries_dropped: 0,
        last_seen,
    };
    (churn, durable)
}
