//! Graphviz (DOT) export of labeled transition systems.
//!
//! The paper communicates its semantics through LTS diagrams (Figs. 5–10);
//! this module renders ours in the same style so encodings can be inspected
//! visually:
//!
//! ```text
//! cargo run --example process_explorer fig8 | …   # textual
//! lts.to_dot(&obs) | dot -Tsvg > fig8.svg          # graphical
//! ```

use crate::lts::Lts;
use crate::observe::Observability;
use std::fmt::Write;

impl Lts {
    /// Render the LTS as a DOT digraph. Observable edges are solid and
    /// bold; unobservable edges are dashed gray — mirroring how the paper
    /// distinguishes `l ∈ L` from internal computation.
    pub fn to_dot(&self, obs: &dyn Observability) -> String {
        let mut out = String::new();
        out.push_str("digraph lts {\n");
        out.push_str("  rankdir=TB;\n");
        out.push_str("  node [shape=circle, fontsize=10];\n");
        let _ = writeln!(out, "  St{} [style=bold];", self.initial);
        for sid in 0..self.state_count() {
            let terminal = self.edges_from(sid).is_empty();
            if terminal {
                let _ = writeln!(out, "  St{sid} [shape=doublecircle];");
            }
            for (label, next) in self.edges_from(sid) {
                match obs.observe(label) {
                    Some(o) => {
                        let _ = writeln!(out, "  St{sid} -> St{next} [label=\"{o}\", style=bold];");
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  St{sid} -> St{next} [label=\"{label}\", style=dashed, color=gray50, fontcolor=gray50];"
                        );
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::lts::{explore, ExploreLimits};
    use crate::observe::TaskObservability;
    use crate::symbol::sym;
    use crate::term::{ep, invoke, par, request, Service};

    #[test]
    fn dot_renders_states_and_edges() {
        let s = par(vec![
            invoke(ep("P", "T")),
            request(ep("P", "T"), invoke(ep("P", "E"))),
            request(ep("P", "E"), Service::Nil),
        ]);
        let lts = explore(&s, ExploreLimits::default()).unwrap();
        let obs = TaskObservability::with([sym("P")], [sym("T")]);
        let dot = lts.to_dot(&obs);
        assert!(dot.starts_with("digraph lts {"));
        assert!(dot.contains("St0 -> St1 [label=\"P.T\", style=bold];"));
        assert!(dot.contains("style=dashed")); // the unobservable P.E edge
        assert!(dot.contains("doublecircle")); // the terminal state
        assert!(dot.ends_with("}\n"));
    }
}
