//! Weak trace equivalence of services.
//!
//! Two services are *weakly trace-equivalent* w.r.t. an observability when
//! they admit the same observable traces and the same quiescence points
//! (states from which the system can silently terminate). This is the
//! right notion for validating alternative BPMN encodings: Algorithm 1
//! only ever looks at observable labels and termination, so weakly
//! equivalent encodings are interchangeable under it.
//!
//! The check runs a synchronized subset construction (determinization over
//! the observable alphabet) on both services and compares enabled
//! observables and quiescence at every reachable pair of subset-states.

use crate::error::ExploreError;
use crate::observe::{Observability, Observation};
use crate::semantics::transitions_shared;
use crate::term::Service;
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// Budget for the subset construction.
#[derive(Clone, Copy, Debug)]
pub struct EquivLimits {
    /// Maximum number of subset-state pairs explored.
    pub max_pairs: usize,
    /// Maximum services per subset (τ-closure size).
    pub max_closure: usize,
}

impl Default for EquivLimits {
    fn default() -> Self {
        EquivLimits {
            max_pairs: 10_000,
            max_closure: 10_000,
        }
    }
}

/// Why two services were found inequivalent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inequivalence {
    /// After the given observable trace, one side offers an observation
    /// the other does not.
    Observables {
        trace: Vec<Observation>,
        left_only: Vec<Observation>,
        right_only: Vec<Observation>,
    },
    /// After the trace, exactly one side can silently reach quiescence.
    Quiescence {
        trace: Vec<Observation>,
        left_quiesces: bool,
    },
}

type SubsetState = BTreeSet<Service>;

fn tau_closure(
    seed: impl IntoIterator<Item = Service>,
    obs: &dyn Observability,
    limits: &EquivLimits,
) -> Result<SubsetState, ExploreError> {
    let mut set: SubsetState = SubsetState::new();
    let mut queue: VecDeque<Service> = VecDeque::new();
    for s in seed {
        if set.insert(s.clone()) {
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        for (label, next) in transitions_shared(&s).iter() {
            if obs.observe(label).is_some() {
                continue;
            }
            if set.insert(next.clone()) {
                if set.len() > limits.max_closure {
                    return Err(ExploreError::TauBudgetExceeded {
                        limit: limits.max_closure,
                    });
                }
                queue.push_back(next.clone());
            }
        }
    }
    Ok(set)
}

/// Observable successors of a (τ-closed) subset-state, grouped by
/// observation.
fn observable_steps(
    set: &SubsetState,
    obs: &dyn Observability,
) -> BTreeMap<Observation, BTreeSet<Service>> {
    let mut out: BTreeMap<Observation, BTreeSet<Service>> = BTreeMap::new();
    for s in set {
        for (label, next) in transitions_shared(s).iter() {
            if let Some(o) = obs.observe(label) {
                out.entry(o).or_default().insert(next.clone());
            }
        }
    }
    out
}

/// Whether some service in the (τ-closed) subset has no transitions at all.
fn quiesces(set: &SubsetState) -> bool {
    set.iter().any(|s| transitions_shared(s).is_empty())
}

/// Check weak trace + quiescence equivalence of `a` and `b`.
///
/// Returns `Ok(None)` when equivalent (up to the exploration budget), the
/// first witness of inequivalence otherwise.
pub fn weak_trace_equiv(
    a: &Service,
    b: &Service,
    obs: &dyn Observability,
    limits: &EquivLimits,
) -> Result<Option<Inequivalence>, ExploreError> {
    let start_a = tau_closure([crate::normal::normalize(a.clone())], obs, limits)?;
    let start_b = tau_closure([crate::normal::normalize(b.clone())], obs, limits)?;

    let mut seen: HashSet<(SubsetState, SubsetState)> = HashSet::new();
    let mut queue: VecDeque<(SubsetState, SubsetState, Vec<Observation>)> = VecDeque::new();
    seen.insert((start_a.clone(), start_b.clone()));
    queue.push_back((start_a, start_b, Vec::new()));

    while let Some((sa, sb, trace)) = queue.pop_front() {
        if quiesces(&sa) != quiesces(&sb) {
            return Ok(Some(Inequivalence::Quiescence {
                trace,
                left_quiesces: quiesces(&sa),
            }));
        }
        let steps_a = observable_steps(&sa, obs);
        let steps_b = observable_steps(&sb, obs);
        let keys_a: BTreeSet<Observation> = steps_a.keys().copied().collect();
        let keys_b: BTreeSet<Observation> = steps_b.keys().copied().collect();
        if keys_a != keys_b {
            return Ok(Some(Inequivalence::Observables {
                trace,
                left_only: keys_a.difference(&keys_b).copied().collect(),
                right_only: keys_b.difference(&keys_a).copied().collect(),
            }));
        }
        for (o, next_a) in steps_a {
            let next_b = steps_b[&o].clone();
            let ca = tau_closure(next_a, obs, limits)?;
            let cb = tau_closure(next_b, obs, limits)?;
            if seen.insert((ca.clone(), cb.clone())) {
                if seen.len() > limits.max_pairs {
                    return Err(ExploreError::StateLimit {
                        limit: limits.max_pairs,
                    });
                }
                let mut t = trace.clone();
                t.push(o);
                queue.push_back((ca, cb, t));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::normalize;
    use crate::observe::TaskObservability;
    use crate::symbol::sym;
    use crate::term::{
        delim, delim_killer, ep, invoke, kill, par, protect, request, Decl, Request, Service,
    };

    fn obs() -> TaskObservability {
        TaskObservability::with([sym("P")], [sym("T"), sym("T1"), sym("T2")])
    }

    fn assert_equiv(a: &Service, b: &Service) {
        let w = weak_trace_equiv(a, b, &obs(), &EquivLimits::default()).unwrap();
        assert_eq!(w, None, "expected equivalence");
    }

    fn assert_inequiv(a: &Service, b: &Service) {
        let w = weak_trace_equiv(a, b, &obs(), &EquivLimits::default()).unwrap();
        assert!(w.is_some(), "expected inequivalence");
    }

    /// The Fig. 8 kill-based XOR encoding is weakly equivalent to the
    /// direct choice-based encoding of the same gateway.
    #[test]
    fn kill_gateway_equivalent_to_choice_gateway() {
        // Kill-based (as the paper encodes it).
        let kill_gate = par(vec![
            invoke(ep("P", "G")),
            request(
                ep("P", "G"),
                delim_killer(
                    "k",
                    delim(
                        Decl::Name(sym("sys")),
                        par(vec![
                            invoke(ep("sys", "b1")),
                            invoke(ep("sys", "b2")),
                            request(
                                ep("sys", "b1"),
                                par(vec![kill("k"), protect(invoke(ep("P", "T1")))]),
                            ),
                            request(
                                ep("sys", "b2"),
                                par(vec![kill("k"), protect(invoke(ep("P", "T2")))]),
                            ),
                        ]),
                    ),
                ),
            ),
            request(ep("P", "T1"), Service::Nil),
            request(ep("P", "T2"), Service::Nil),
        ]);
        // Choice-based: the gateway offers the two task triggers through an
        // internal choice directly.
        let choice_gate = par(vec![
            invoke(ep("P", "G")),
            request(
                ep("P", "G"),
                delim(
                    Decl::Name(sym("sys")),
                    par(vec![
                        invoke(ep("sys", "go")),
                        Service::Guarded(crate::term::Guard {
                            branches: vec![
                                Request {
                                    ep: ep("sys", "go"),
                                    params: vec![],
                                    cont: invoke(ep("P", "T1")).into(),
                                },
                                Request {
                                    ep: ep("sys", "go"),
                                    params: vec![],
                                    cont: invoke(ep("P", "T2")).into(),
                                },
                            ],
                        }),
                    ]),
                ),
            ),
            request(ep("P", "T1"), Service::Nil),
            request(ep("P", "T2"), Service::Nil),
        ]);
        assert_equiv(&kill_gate, &choice_gate);
    }

    #[test]
    fn different_alphabets_are_inequivalent() {
        let a = par(vec![
            invoke(ep("P", "T1")),
            request(ep("P", "T1"), Service::Nil),
        ]);
        let b = par(vec![
            invoke(ep("P", "T2")),
            request(ep("P", "T2"), Service::Nil),
        ]);
        assert_inequiv(&a, &b);
    }

    #[test]
    fn prefix_vs_complete_inequivalent_by_quiescence() {
        // a runs T then stops; b runs T then is stuck waiting on an invoke
        // that never synchronizes (no quiescence distinction here — both
        // quiesce), so instead: b can also run T1 afterwards.
        let a = par(vec![
            invoke(ep("P", "T")),
            request(ep("P", "T"), Service::Nil),
        ]);
        let b = par(vec![
            invoke(ep("P", "T")),
            request(ep("P", "T"), invoke(ep("P", "T1"))),
            request(ep("P", "T1"), Service::Nil),
        ]);
        let w = weak_trace_equiv(&a, &b, &obs(), &EquivLimits::default()).unwrap();
        match w {
            // Either witness is correct: after T, `a` quiesces while `b`
            // still offers T1.
            Some(Inequivalence::Observables { trace, .. })
            | Some(Inequivalence::Quiescence { trace, .. }) => {
                assert_eq!(trace.len(), 1, "diverges right after T");
            }
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn normalization_preserves_equivalence() {
        let s = par(vec![
            invoke(ep("P", "T")),
            request(ep("P", "T"), par(vec![Service::Nil, invoke(ep("P", "T1"))])),
            request(ep("P", "T1"), Service::Nil),
        ]);
        let n = normalize(s.clone());
        assert_equiv(&s, &n);
    }

    #[test]
    fn equivalence_is_reflexive_on_encodings() {
        let s = par(vec![
            invoke(ep("P", "T")),
            request(ep("P", "T"), invoke(ep("P", "T1"))),
            request(ep("P", "T1"), Service::Nil),
        ]);
        assert_equiv(&s, &s.clone());
    }
}
