//! A parser for the COWS term syntax.
//!
//! Accepts the ASCII rendering produced by the [`std::fmt::Display`]
//! implementation of [`Service`] (round-trip checked by property tests):
//!
//! ```text
//! s ::= 0 | p.o!<w,...> | g | (s | s | ...) | [d]s | {|s|} | kill(k) | *s
//! g ::= p.o?<w,...>[.s] | g + g
//! w ::= name | ?var
//! d ::= name | ?var | k:label
//! ```
//!
//! Operator binding, loosest to tightest: `|` (parallel), `+` (choice),
//! prefixes (`*`, `[d]`). Parentheses group.
//!
//! ```
//! use cows::parse::parse_service;
//!
//! let s = parse_service("(P.T!<> | *P.T?<>.(P.E!<msg>) | [k:k]kill(k))").unwrap();
//! let round = cows::parse::parse_service(&s.to_string()).unwrap();
//! assert_eq!(cows::normalize(s), cows::normalize(round));
//! ```

use crate::symbol::Symbol;
use crate::term::{Decl, Endpoint, Guard, Invoke, Request, Service, Word};
use std::fmt;
use std::sync::Arc;

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for TermParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TermParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Zero,
    Kill,
    Dot,
    Bang,
    Question,
    Lt,
    Gt,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    ProtectOpen,  // {|
    ProtectClose, // |}
    Pipe,
    Plus,
    Star,
    Colon,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    toks: Vec<(usize, Tok)>,
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

impl<'a> Lexer<'a> {
    fn lex(src: &'a str) -> Result<Vec<(usize, Tok)>, TermParseError> {
        let mut lx = Lexer {
            src: src.as_bytes(),
            pos: 0,
            toks: Vec::new(),
        };
        while lx.pos < lx.src.len() {
            let at = lx.pos;
            let b = lx.src[lx.pos];
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    lx.pos += 1;
                }
                b'{' if lx.peek(1) == Some(b'|') => {
                    lx.toks.push((at, Tok::ProtectOpen));
                    lx.pos += 2;
                }
                b'|' if lx.peek(1) == Some(b'}') => {
                    lx.toks.push((at, Tok::ProtectClose));
                    lx.pos += 2;
                }
                b'|' => {
                    lx.toks.push((at, Tok::Pipe));
                    lx.pos += 1;
                }
                b'.' => {
                    lx.toks.push((at, Tok::Dot));
                    lx.pos += 1;
                }
                b'!' => {
                    lx.toks.push((at, Tok::Bang));
                    lx.pos += 1;
                }
                b'?' => {
                    lx.toks.push((at, Tok::Question));
                    lx.pos += 1;
                }
                b'<' => {
                    lx.toks.push((at, Tok::Lt));
                    lx.pos += 1;
                }
                b'>' => {
                    lx.toks.push((at, Tok::Gt));
                    lx.pos += 1;
                }
                b',' => {
                    lx.toks.push((at, Tok::Comma));
                    lx.pos += 1;
                }
                b'(' => {
                    lx.toks.push((at, Tok::LParen));
                    lx.pos += 1;
                }
                b')' => {
                    lx.toks.push((at, Tok::RParen));
                    lx.pos += 1;
                }
                b'[' => {
                    lx.toks.push((at, Tok::LBracket));
                    lx.pos += 1;
                }
                b']' => {
                    lx.toks.push((at, Tok::RBracket));
                    lx.pos += 1;
                }
                b'+' => {
                    lx.toks.push((at, Tok::Plus));
                    lx.pos += 1;
                }
                b'*' => {
                    lx.toks.push((at, Tok::Star));
                    lx.pos += 1;
                }
                b':' => {
                    lx.toks.push((at, Tok::Colon));
                    lx.pos += 1;
                }
                b'0' if lx.peek(1).map(|c| !is_ident_char(c)).unwrap_or(true) => {
                    lx.toks.push((at, Tok::Zero));
                    lx.pos += 1;
                }
                c if is_ident_char(c) => {
                    let start = lx.pos;
                    while lx.pos < lx.src.len() && is_ident_char(lx.src[lx.pos]) {
                        lx.pos += 1;
                    }
                    let word = std::str::from_utf8(&lx.src[start..lx.pos])
                        .expect("ascii ident")
                        .to_string();
                    if word == "kill" {
                        lx.toks.push((at, Tok::Kill));
                    } else {
                        lx.toks.push((at, Tok::Ident(word)));
                    }
                }
                other => {
                    return Err(TermParseError {
                        offset: at,
                        message: format!("unexpected character `{}`", other as char),
                    })
                }
            }
        }
        Ok(lx.toks)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> TermParseError {
        TermParseError {
            offset: self
                .toks
                .get(self.pos)
                .map(|(o, _)| *o)
                .unwrap_or(usize::MAX),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), TermParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<Symbol, TermParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(Symbol::new(&s)),
            // `0` can legitimately be an identifier start in names like `0x`
            // — but bare `0` is the empty service; treat it as an error here.
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// parallel := choice ('|' choice)*
    fn parallel(&mut self) -> Result<Service, TermParseError> {
        let first = self.choice()?;
        let mut parts = vec![first];
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            parts.push(self.choice()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Service::Parallel(parts)
        })
    }

    /// choice := prefix ('+' prefix)*  — every alternative must be a
    /// request-guarded service.
    fn choice(&mut self) -> Result<Service, TermParseError> {
        let first = self.prefix()?;
        if self.peek() != Some(&Tok::Plus) {
            return Ok(first);
        }
        let mut branches = into_branches(first)
            .map_err(|_| self.err("only request-guarded services may appear in a choice"))?;
        while self.peek() == Some(&Tok::Plus) {
            self.pos += 1;
            let next = self.prefix()?;
            branches.extend(
                into_branches(next).map_err(|_| {
                    self.err("only request-guarded services may appear in a choice")
                })?,
            );
        }
        Ok(Service::Guarded(Guard { branches }))
    }

    /// prefix := '*' prefix | '[' decl ']' prefix | '{|' parallel '|}'
    ///         | 'kill' '(' k ')' | '(' parallel ')' | '0' | atom
    fn prefix(&mut self) -> Result<Service, TermParseError> {
        match self.peek() {
            Some(Tok::Star) => {
                self.pos += 1;
                Ok(Service::Repl(Arc::new(self.prefix()?)))
            }
            Some(Tok::LBracket) => {
                self.pos += 1;
                let decl = self.decl()?;
                self.expect(&Tok::RBracket, "`]`")?;
                Ok(Service::Delim(decl, Arc::new(self.prefix()?)))
            }
            Some(Tok::ProtectOpen) => {
                self.pos += 1;
                let inner = self.parallel()?;
                self.expect(&Tok::ProtectClose, "`|}`")?;
                Ok(Service::Protect(Arc::new(inner)))
            }
            Some(Tok::Kill) => {
                self.pos += 1;
                self.expect(&Tok::LParen, "`(` after kill")?;
                let k = self.ident("killer label")?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Service::Kill(k))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.parallel()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Tok::Zero) => {
                self.pos += 1;
                Ok(Service::Nil)
            }
            Some(Tok::Ident(_)) => self.activity(),
            other => Err(self.err(format!("expected a service, found {other:?}"))),
        }
    }

    /// decl := 'k' ':' label | '?' var | name — with `k:` lexed as
    /// Ident("k"), Colon, Ident(label).
    fn decl(&mut self) -> Result<Decl, TermParseError> {
        match self.peek() {
            Some(Tok::Question) => {
                self.pos += 1;
                Ok(Decl::Var(self.ident("variable")?))
            }
            Some(Tok::Ident(w))
                if w == "k" && self.toks.get(self.pos + 1).map(|(_, t)| t) == Some(&Tok::Colon) =>
            {
                self.pos += 2;
                Ok(Decl::Killer(self.ident("killer label")?))
            }
            Some(Tok::Ident(_)) => Ok(Decl::Name(self.ident("name")?)),
            other => Err(self.err(format!("expected a declaration, found {other:?}"))),
        }
    }

    /// activity := endpoint '!' args | endpoint '?' args ['.' prefix]
    fn activity(&mut self) -> Result<Service, TermParseError> {
        let partner = self.ident("partner")?;
        self.expect(&Tok::Dot, "`.` between partner and operation")?;
        let op = self.ident("operation")?;
        let ep = Endpoint { partner, op };
        match self.next() {
            Some(Tok::Bang) => {
                let args = self.words()?;
                Ok(Service::Invoke(Invoke {
                    ep,
                    args,
                    completes: Vec::new(),
                }))
            }
            Some(Tok::Question) => {
                let params = self.words()?;
                let cont = if self.peek() == Some(&Tok::Dot) {
                    self.pos += 1;
                    self.prefix()?
                } else {
                    Service::Nil
                };
                Ok(Service::Guarded(Guard {
                    branches: vec![Request {
                        ep,
                        params,
                        cont: Arc::new(cont),
                    }],
                }))
            }
            other => Err(self.err(format!(
                "expected `!` or `?` after endpoint, found {other:?}"
            ))),
        }
    }

    /// args := '<' [word (',' word)*] '>'
    fn words(&mut self) -> Result<Vec<Word>, TermParseError> {
        self.expect(&Tok::Lt, "`<`")?;
        let mut out = Vec::new();
        if self.peek() == Some(&Tok::Gt) {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            match self.peek() {
                Some(Tok::Question) => {
                    self.pos += 1;
                    out.push(Word::Var(self.ident("variable")?));
                }
                Some(Tok::Ident(_)) => out.push(Word::Name(self.ident("name")?)),
                other => return Err(self.err(format!("expected a parameter, found {other:?}"))),
            }
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::Gt) => break,
                other => return Err(self.err(format!("expected `,` or `>`, found {other:?}"))),
            }
        }
        Ok(out)
    }
}

fn into_branches(s: Service) -> Result<Vec<Request>, ()> {
    match s {
        Service::Guarded(g) => Ok(g.branches),
        _ => Err(()),
    }
}

/// Parse a COWS service from its ASCII rendering.
pub fn parse_service(text: &str) -> Result<Service, TermParseError> {
    let toks = Lexer::lex(text)?;
    let mut p = Parser { toks, pos: 0 };
    let s = p.parallel()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after service"));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::normalize;
    use crate::term::{
        delim_killer, delim_var, ep, invoke, invoke_args, kill, par, protect, repl, request,
        request_params, Service,
    };

    fn round_trip(s: &Service) {
        let text = s.to_string();
        let parsed =
            parse_service(&text).unwrap_or_else(|e| panic!("failed to parse `{text}`: {e}"));
        assert_eq!(
            normalize(parsed),
            normalize(s.clone()),
            "round trip of `{text}`"
        );
    }

    #[test]
    fn parses_basic_activities() {
        assert_eq!(parse_service("0").unwrap(), Service::Nil);
        assert_eq!(parse_service("P.T!<>").unwrap(), invoke(ep("P", "T")));
        assert_eq!(
            parse_service("P.T!<msg1,msg2>").unwrap(),
            invoke_args(ep("P", "T"), vec![Word::name("msg1"), Word::name("msg2")])
        );
        assert_eq!(
            parse_service("P.T?<>.(P.E!<>)").unwrap(),
            request(ep("P", "T"), invoke(ep("P", "E")))
        );
    }

    #[test]
    fn parses_structured_terms() {
        let s = parse_service("[k:k](kill(k) | {|P.T1!<>|})").unwrap();
        assert_eq!(
            s,
            delim_killer("k", par(vec![kill("k"), protect(invoke(ep("P", "T1")))]))
        );
        let r = parse_service("*[?z]P1.S2?<?z>.(P1.T1!<>)").unwrap();
        assert_eq!(
            r,
            repl(delim_var(
                "z",
                request_params(ep("P1", "S2"), vec![Word::var("z")], invoke(ep("P1", "T1")))
            ))
        );
    }

    #[test]
    fn choice_requires_guards() {
        assert!(parse_service("P.A?<> + P.B?<>.(P.C!<>)").is_ok());
        assert!(parse_service("P.A!<> + P.B?<>").is_err());
    }

    #[test]
    fn precedence_pipe_loosest() {
        // a?<> + b?<> | c!<>  ≡  (a?<> + b?<>) | c!<>
        let s = parse_service("P.a?<> + P.b?<> | P.c!<>").unwrap();
        match s {
            Service::Parallel(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(&parts[0], Service::Guarded(g) if g.branches.len() == 2));
            }
            other => panic!("expected parallel, got {other}"),
        }
    }

    #[test]
    fn display_round_trips_structured_services() {
        let samples = vec![
            Service::Nil,
            invoke(ep("P", "T")),
            par(vec![
                invoke(ep("P", "T")),
                request(ep("P", "T"), invoke(ep("P", "E"))),
                request(ep("P", "E"), Service::Nil),
            ]),
            delim_killer("k", par(vec![kill("k"), protect(invoke(ep("P", "T1")))])),
            repl(delim_var(
                "z",
                request_params(ep("P1", "S2"), vec![Word::var("z")], invoke(ep("P1", "T1"))),
            )),
        ];
        for s in samples {
            round_trip(&s);
        }
    }

    #[test]
    fn display_round_trips_the_paper_encodings() {
        // The Display form of every Appendix-A encoding parses back to a
        // structurally-congruent service — except for `completes`
        // annotations, which are bookkeeping that Display does not render.
        // Use the annotation-free Fig. 8 gateway skeleton.
        let gate = parse_service(
            "*P.G?<>.([k:k_G][sys](sys.G_T1!<> | sys.G_T2!<> |              sys.G_T1?<>.((kill(k_G) | {|P.T1!<>|})) |              sys.G_T2?<>.((kill(k_G) | {|P.T2!<>|}))))",
        )
        .unwrap();
        round_trip(&gate);
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_service("P.T!<> @ Q.U!<>").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(parse_service("P.T!").is_err());
        assert!(parse_service("(P.T!<>").is_err());
        assert!(parse_service("P.T!<> extra.ident!<> trailing").is_err());
    }

    #[test]
    fn zero_is_not_an_identifier() {
        // `0` alone is nil; `P.T?<>.0` gives an explicit nil continuation.
        let s = parse_service("P.T?<>.0").unwrap();
        assert_eq!(s, request(ep("P", "T"), Service::Nil));
    }
}
