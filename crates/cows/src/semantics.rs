//! Structural operational semantics.
//!
//! [`raw_transitions`] derives every labeled transition a service can take,
//! following the COWS SOS of Lapadula, Pugliese and Tiezzi (ESOP'07) in the
//! minimal fragment used by the paper. [`transitions`] restricts to
//! closed-system steps (communications and kills), applies kill priority and
//! normalizes residuals — this is the step function used by LTS exploration.
//!
//! Deviations from full COWS are listed in `DESIGN.md` §3.1: simple pattern
//! matching instead of best-match, and global (rather than scope-local) kill
//! priority. Both are invisible on the image of the BPMN encoding.

use crate::label::Label;
use crate::normal::{halt, normalize};
use crate::subst::{match_pattern, substitute};
use crate::term::{Decl, Service, Word};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// All SOS transitions of `s`, including open (invoke/request) labels.
///
/// Residuals are *not* normalized; callers that explore closed systems
/// should use [`transitions`] instead.
pub fn raw_transitions(s: &Service) -> Vec<(Label, Service)> {
    match s {
        Service::Nil => Vec::new(),
        Service::Invoke(i) => {
            // An invoke can execute only once its arguments are closed
            // values; open invokes are stuck until substitution closes them.
            let mut args = Vec::with_capacity(i.args.len());
            for a in &i.args {
                match a.as_name() {
                    Some(n) => args.push(n),
                    None => return Vec::new(),
                }
            }
            vec![(
                Label::Invoke {
                    ep: i.ep,
                    args,
                    completes: i.completes.clone(),
                },
                Service::Nil,
            )]
        }
        Service::Guarded(g) => g
            .branches
            .iter()
            .map(|b| {
                (
                    Label::Request {
                        ep: b.ep,
                        params: b.params.clone(),
                    },
                    (*b.cont).clone(),
                )
            })
            .collect(),
        Service::Kill(k) => vec![(Label::Kill(*k), Service::Nil)],
        Service::Protect(body) => raw_transitions(body)
            .into_iter()
            .map(|(l, s1)| (l, Service::Protect(Arc::new(s1))))
            .collect(),
        Service::Parallel(children) => parallel_transitions(children),
        Service::Delim(d, body) => delim_transitions(*d, body),
        Service::Repl(body) => repl_transitions(body),
    }
}

fn parallel_transitions(children: &[Service]) -> Vec<(Label, Service)> {
    let per_child: Vec<Vec<(Label, Service)>> = children.iter().map(raw_transitions).collect();
    let mut out = Vec::new();

    // Interleaving; an executing kill halts every sibling (COWS par rule).
    for (i, ts) in per_child.iter().enumerate() {
        for (l, resid) in ts {
            let mut next: Vec<Service> = Vec::with_capacity(children.len());
            for (j, c) in children.iter().enumerate() {
                if j == i {
                    next.push(resid.clone());
                } else if matches!(l, Label::Kill(_)) {
                    next.push(halt(c));
                } else {
                    next.push(c.clone());
                }
            }
            out.push((l.clone(), Service::Parallel(next)));
        }
    }

    // Communication between distinct components.
    for i in 0..children.len() {
        for j in 0..children.len() {
            if i == j {
                continue;
            }
            for (li, ri) in &per_child[i] {
                for (lj, rj) in &per_child[j] {
                    if let Some((label, ri2, rj2)) = pair(li, ri, lj, rj) {
                        let mut next: Vec<Service> = Vec::with_capacity(children.len());
                        for (k, c) in children.iter().enumerate() {
                            if k == i {
                                next.push(ri2.clone());
                            } else if k == j {
                                next.push(rj2.clone());
                            } else {
                                next.push(c.clone());
                            }
                        }
                        out.push((label, Service::Parallel(next)));
                    }
                }
            }
        }
    }
    out
}

/// Try to combine an invoke transition with a request transition.
///
/// Returns the communication label together with the updated residuals of
/// the invoking and requesting components.
fn pair(li: &Label, ri: &Service, lj: &Label, rj: &Service) -> Option<(Label, Service, Service)> {
    let Label::Invoke {
        ep: e1,
        args,
        completes,
    } = li
    else {
        return None;
    };
    let Label::Request { ep: e2, params } = lj else {
        return None;
    };
    if e1 != e2 {
        return None;
    }
    let bindings = match_pattern(params, args)?;
    Some((
        Label::Comm {
            ep: *e1,
            args: args.clone(),
            completes: completes.clone(),
        },
        ri.clone(),
        substitute(rj, &bindings),
    ))
}

fn delim_transitions(d: Decl, body: &Service) -> Vec<(Label, Service)> {
    let mut out = Vec::new();
    for (l, resid) in raw_transitions(body) {
        match (&l, &d) {
            // A kill reaching its own delimiter has executed: the label
            // becomes † and stops propagating.
            (Label::Kill(k), Decl::Killer(dk)) if k == dk => {
                out.push((Label::KillExec, Service::Delim(d, Arc::new(resid))));
            }
            // A request whose pattern still mentions the variable bound
            // here: the communication that fires this request will
            // instantiate the variable, so the delimiter is consumed (scope
            // resolution of the COWS delimitation rule).
            (Label::Request { params, .. }, Decl::Var(x)) if params.contains(&Word::Var(*x)) => {
                out.push((l, resid));
            }
            // A private name cannot support interaction with the
            // environment: open labels on an endpoint using the name are
            // blocked at the delimiter. (Internal communications carry a
            // `Comm` label and pass through — the paper's LTSs show
            // `sys·T1` edges even though `sys` is private.)
            (Label::Invoke { ep, .. } | Label::Request { ep, .. }, Decl::Name(n))
                if ep.partner == *n || ep.op == *n => {}
            _ => {
                out.push((l, Service::Delim(d, Arc::new(resid))));
            }
        }
    }
    out
}

fn repl_transitions(body: &Arc<Service>) -> Vec<(Label, Service)> {
    let ts = raw_transitions(body);
    let mut out: Vec<(Label, Service)> = Vec::with_capacity(ts.len());
    for (l, resid) in &ts {
        out.push((
            l.clone(),
            Service::Parallel(vec![resid.clone(), Service::Repl(body.clone())]),
        ));
    }
    // Communication between two copies of the replicated service. The BPMN
    // encoding never needs this (each element holds either invokes or
    // request prefixes at top level, not both), but the rule is part of the
    // calculus.
    for (li, ri) in &ts {
        for (lj, rj) in &ts {
            if let Some((label, ri2, rj2)) = pair(li, ri, lj, rj) {
                out.push((
                    label,
                    Service::Parallel(vec![ri2, rj2, Service::Repl(body.clone())]),
                ));
            }
        }
    }
    out
}

/// Closed-system transitions: communications and kills, with kill priority
/// applied and residuals in canonical normal form. Deduplicated and sorted
/// for deterministic exploration.
///
/// This clones the full transition `Vec` out of the memo on every call —
/// every `(Label, Service)` pair, label args and all. Production callers
/// (WeakNext, exploration, the automaton) use [`transitions_shared`] and
/// borrow through the `Arc`; this owned variant survives only for tests
/// and one-shot inspection code where the clone cost is irrelevant.
pub fn transitions(s: &Service) -> Vec<(Label, Service)> {
    transitions_shared(s).as_ref().clone()
}

/// [`transitions`] bypassing the memo — exists for the cache-ablation
/// benchmark (`bench cache_ablation`) and for callers that know their
/// states never repeat.
pub fn transitions_uncached(s: &Service) -> Vec<(Label, Service)> {
    compute_transitions(s)
}

fn compute_transitions(s: &Service) -> Vec<(Label, Service)> {
    let mut out: Vec<(Label, Service)> = raw_transitions(s)
        .into_iter()
        .filter(|(l, _)| l.is_closed())
        .map(|(l, resid)| (l, normalize(resid)))
        .collect();
    if out
        .iter()
        .any(|(l, _)| matches!(l, Label::Kill(_) | Label::KillExec))
    {
        out.retain(|(l, _)| matches!(l, Label::Kill(_) | Label::KillExec));
    }
    out.sort();
    out.dedup();
    out
}

/// Shard count of the global memo (a power of two; sharding keeps lock
/// contention negligible for the §7 parallel auditor).
const CACHE_SHARDS: usize = 64;

/// Bound per shard; when exceeded, half the shard is evicted (an arbitrary
/// half — whatever the drain yields first). Evicting half instead of
/// clearing wholesale keeps the other half warm, avoiding the periodic
/// re-warm cliffs a full clear causes under sustained load.
const SHARD_CAP: usize = 4_096;

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Counters of the global transitions memo, for the bench report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that recomputed (and inserted).
    pub misses: u64,
    /// Half-shard eviction events (not entries evicted).
    pub evictions: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// The delta between this snapshot and an earlier `baseline`. The memo
    /// counters are process-global, so a section of work that wants *its
    /// own* hit/miss/eviction numbers must snapshot before, snapshot after
    /// and subtract — anything else silently double-counts whatever ran
    /// earlier in the process (the P8 bench bug). `entries` stays
    /// point-in-time (it is a level, not a flow).
    pub fn since(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            evictions: self.evictions.saturating_sub(baseline.evictions),
            entries: self.entries,
        }
    }

    /// Export into a metrics registry. The counters are absolute
    /// process-global totals, so this uses *set* semantics — re-exporting
    /// after more work overwrites rather than double-counts.
    pub fn export_into(&self, registry: &obs::Registry) {
        registry.set_counter("semantics_cache_hits", self.hits);
        registry.set_counter("semantics_cache_misses", self.misses);
        registry.set_counter("semantics_cache_evictions", self.evictions);
        registry.set_gauge("semantics_cache_entries", self.entries as f64);
    }
}

/// Snapshot the global memo counters. Counters are process-wide and
/// monotone (relaxed atomics); `entries` is a point-in-time sum over the
/// shards.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
        evictions: CACHE_EVICTIONS.load(Ordering::Relaxed),
        entries: cache().iter().map(|s| s.read().len()).sum(),
    }
}

/// Recorder observing eviction events of the global memo. `set` installs a
/// clone; evictions are rare cold-path events (a few per million lookups
/// at steady state), so the hook costs one relaxed load on the eviction
/// branch only — the lookup fast path is untouched.
static CACHE_RECORDER: RwLock<Option<obs::Recorder>> = RwLock::new(None);

/// Install (or, with a noop recorder, clear) the global memo's eviction
/// observer.
pub fn set_cache_recorder(recorder: obs::Recorder) {
    *CACHE_RECORDER.write() = if recorder.enabled() {
        Some(recorder)
    } else {
        None
    };
}

type Shard = RwLock<HashMap<Service, Arc<Vec<(Label, Service)>>>>;

fn cache() -> &'static [Shard] {
    static CACHE: OnceLock<Vec<Shard>> = OnceLock::new();
    CACHE.get_or_init(|| {
        (0..CACHE_SHARDS)
            .map(|_| RwLock::new(HashMap::new()))
            .collect()
    })
}

fn shard_index(s: &Service) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    (h.finish() as usize) % CACHE_SHARDS
}

/// [`transitions`] with global (sharded) memoization.
///
/// Replay and exploration revisit the same canonical states constantly —
/// different configurations of Algorithm 1, successive log entries, BFS
/// frontiers, and concurrent auditor workers checking cases of the same
/// process. The memo turns those revisits into hash lookups and is shared
/// across threads so parallel workers benefit from each other's warm-up.
/// `s` should be in canonical normal form — residuals returned by this
/// function are.
pub fn transitions_shared(s: &Service) -> Arc<Vec<(Label, Service)>> {
    let idx = shard_index(s);
    let shard = &cache()[idx];
    if let Some(hit) = shard.read().get(s) {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return hit.clone();
    }
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    let computed = Arc::new(compute_transitions(s));
    let mut wr = shard.write();
    if wr.len() >= SHARD_CAP {
        let before = wr.len();
        evict_half(&mut wr);
        let evicted = before - wr.len();
        CACHE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
        if let Some(recorder) = CACHE_RECORDER.read().as_ref() {
            recorder.emit(|| obs::ObsEvent::CacheEviction {
                shard: idx,
                evicted,
            });
        }
    }
    wr.insert(s.clone(), computed.clone());
    computed
}

/// Evict half of a full shard, keeping an arbitrary half warm (whatever
/// the drain yields first). The survivors are a strict subset of the
/// original entries — nothing is invented or mutated, only dropped.
fn evict_half<K: std::hash::Hash + Eq, V>(map: &mut HashMap<K, V>) {
    let keep = map.len() / 2;
    let retained: HashMap<K, V> = map.drain().take(keep).collect();
    *map = retained;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;
    use crate::term::{
        delim, delim_killer, delim_var, ep, invoke, invoke_args, invoke_completing, kill, par,
        protect, repl, request, request_params, Request, Service, Word,
    };

    fn sync_label(partner: &str, op: &str) -> Label {
        Label::Comm {
            ep: ep(partner, op),
            args: vec![],
            completes: vec![],
        }
    }

    #[test]
    fn invoke_offers_invoke_label() {
        let s = invoke(ep("P", "T"));
        let ts = raw_transitions(&s);
        assert_eq!(ts.len(), 1);
        assert!(matches!(ts[0].0, Label::Invoke { .. }));
    }

    #[test]
    fn open_invoke_is_stuck() {
        let s = invoke_args(ep("P", "T"), vec![Word::var(sym("x"))]);
        assert!(raw_transitions(&s).is_empty());
    }

    #[test]
    fn simple_sync() {
        // Fig. 7: [[S]] | [[T]] | [[E]] steps P.T then P.E.
        let p = "P";
        let s = par(vec![
            invoke(ep(p, "T")),
            request(ep(p, "T"), invoke(ep(p, "E"))),
            request(ep(p, "E"), Service::Nil),
        ]);
        let ts = transitions(&s);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].0, sync_label("P", "T"));
        let ts2 = transitions(&ts[0].1);
        assert_eq!(ts2.len(), 1);
        assert_eq!(ts2[0].0, sync_label("P", "E"));
        assert_eq!(transitions(&ts2[0].1), vec![]);
        assert!(ts2[0].1.is_nil());
    }

    #[test]
    fn communication_substitutes_message() {
        // [z] P.S?<z>.P.Q!<z>  |  P.S!<msg>
        let z = sym("z");
        let recv = delim_var(
            z,
            request_params(
                ep("P", "S"),
                vec![Word::var(z)],
                invoke_args(ep("P", "Q"), vec![Word::var(z)]),
            ),
        );
        let send = invoke_args(ep("P", "S"), vec![Word::name("msg")]);
        let ts = transitions(&par(vec![recv, send]));
        assert_eq!(ts.len(), 1);
        match &ts[0].0 {
            Label::Comm { ep: e, args, .. } => {
                assert_eq!(*e, ep("P", "S"));
                assert_eq!(args, &vec![sym("msg")]);
            }
            other => panic!("expected comm, got {other}"),
        }
        // The continuation now invokes with the received value.
        assert_eq!(ts[0].1, invoke_args(ep("P", "Q"), vec![Word::name("msg")]));
    }

    #[test]
    fn mismatched_payload_does_not_sync() {
        let recv = request_params(ep("P", "S"), vec![Word::name("a")], Service::Nil);
        let send = invoke_args(ep("P", "S"), vec![Word::name("b")]);
        assert!(transitions(&par(vec![recv, send])).is_empty());
    }

    #[test]
    fn choice_commits_to_one_branch() {
        let g = crate::term::choice(vec![
            Request {
                ep: ep("sys", "T1"),
                params: vec![],
                cont: invoke(ep("P", "A")).into(),
            },
            Request {
                ep: ep("sys", "T2"),
                params: vec![],
                cont: invoke(ep("P", "B")).into(),
            },
        ]);
        let s = par(vec![g, invoke(ep("sys", "T1")), invoke(ep("sys", "T2"))]);
        let ts = transitions(&s);
        // Two possible syncs; each residual keeps the *other* invoke pending
        // but loses the alternative branch.
        assert_eq!(ts.len(), 2);
        for (l, resid) in &ts {
            match l {
                Label::Comm { ep: e, .. } if e.op == sym("T1") => {
                    assert_eq!(
                        resid,
                        &normalize(par(vec![invoke(ep("P", "A")), invoke(ep("sys", "T2"))]))
                    );
                }
                Label::Comm { ep: e, .. } if e.op == sym("T2") => {
                    assert_eq!(
                        resid,
                        &normalize(par(vec![invoke(ep("P", "B")), invoke(ep("sys", "T1"))]))
                    );
                }
                other => panic!("unexpected label {other}"),
            }
        }
    }

    #[test]
    fn kill_halts_unprotected_siblings() {
        // [k]( kill(k) | {|P.T1!<>|} | P.T2!<> )
        let s = delim_killer(
            "k",
            par(vec![
                kill("k"),
                protect(invoke(ep("P", "T1"))),
                invoke(ep("P", "T2")),
            ]),
        );
        let ts = transitions(&s);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].0, Label::KillExec);
        // Only the protected invoke survives.
        assert_eq!(ts[0].1, protect(invoke(ep("P", "T1"))));
    }

    #[test]
    fn kill_has_priority_over_communication() {
        let s = delim_killer(
            "k",
            par(vec![
                kill("k"),
                invoke(ep("P", "T")),
                request(ep("P", "T"), Service::Nil),
            ]),
        );
        let ts = transitions(&s);
        assert_eq!(ts.len(), 1, "kill must preempt the communication");
        assert_eq!(ts[0].0, Label::KillExec);
    }

    #[test]
    fn exclusive_gateway_encoding_from_fig8() {
        // [[G]] = P.G?<>.[k][sys]( sys.T1!<> | sys.T2!<> |
        //          sys.T1?<>.(kill(k)|{|P.T1!<>|}) | sys.T2?<>.(kill(k)|{|P.T2!<>|}) )
        let gate_body = delim_killer(
            "k",
            delim(
                Decl::Name(sym("sys")),
                par(vec![
                    invoke(ep("sys", "T1")),
                    invoke(ep("sys", "T2")),
                    request(
                        ep("sys", "T1"),
                        par(vec![kill("k"), protect(invoke(ep("P", "T1")))]),
                    ),
                    request(
                        ep("sys", "T2"),
                        par(vec![kill("k"), protect(invoke(ep("P", "T2")))]),
                    ),
                ]),
            ),
        );
        let g = request(ep("P", "G"), gate_body);
        let s = par(vec![invoke(ep("P", "G")), g]);

        // Step 1: P.G sync.
        let ts = transitions(&s);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].0, sync_label("P", "G"));

        // Step 2: internal choice, two sys syncs.
        let ts2 = transitions(&ts[0].1);
        assert_eq!(ts2.len(), 2);
        assert!(ts2
            .iter()
            .all(|(l, _)| matches!(l, Label::Comm { ep, .. } if ep.partner == sym("sys"))));

        // Step 3: kill preempts; afterwards exactly one branch invoke
        // survives and the alternative is gone.
        for (label, st) in &ts2 {
            let chosen = match label {
                Label::Comm { ep: e, .. } => e.op,
                _ => unreachable!(),
            };
            let ts3 = transitions(st);
            assert_eq!(ts3.len(), 1);
            assert_eq!(ts3[0].0, Label::KillExec);
            let after = &ts3[0].1;
            let ts4 = raw_transitions(after);
            // Exactly one invoke offer remains: P.<chosen>.
            let invokes: Vec<_> = ts4
                .iter()
                .filter_map(|(l, _)| match l {
                    Label::Invoke { ep: e, .. } => Some(*e),
                    _ => None,
                })
                .collect();
            assert_eq!(invokes, vec![ep("P", chosen.as_str())]);
        }
    }

    #[test]
    fn replication_spawns_copies() {
        // *P.T?<>.P.E!<>  |  P.T!<>  — after the sync the replicated
        // service is still available.
        let body = request(ep("P", "T"), invoke(ep("P", "E")));
        let s = par(vec![repl(body.clone()), invoke(ep("P", "T"))]);
        let ts = transitions(&s);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].0, sync_label("P", "T"));
        let resid = &ts[0].1;
        // Residual contains the replication plus the unlocked continuation.
        assert_eq!(
            resid,
            &normalize(par(vec![repl(body), invoke(ep("P", "E"))]))
        );
    }

    #[test]
    fn replication_cycle_returns_to_same_state() {
        // A one-element "cycle": *P.T?<>.P.T!<> fed with one token loops
        // through the same canonical state forever.
        let body = request(ep("P", "T"), invoke(ep("P", "T")));
        let s0 = normalize(par(vec![repl(body), invoke(ep("P", "T"))]));
        let ts = transitions(&s0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].1, s0, "canonical forms must close the loop");
    }

    #[test]
    fn completes_metadata_rides_the_label() {
        let t = ep("P", "T");
        let s = par(vec![
            invoke_completing(ep("P", "E"), vec![t]),
            request(ep("P", "E"), Service::Nil),
        ]);
        let ts = transitions(&s);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].0.completed_tasks(), &[t]);
    }

    #[test]
    fn private_name_blocks_open_labels_only() {
        // [sys]( sys.T!<> ) offers nothing to the environment…
        let s = delim(Decl::Name(sym("sys")), invoke(ep("sys", "T")));
        assert!(raw_transitions(&s).is_empty());
        // …but an internal sync on sys is a visible Comm step.
        let s2 = delim(
            Decl::Name(sym("sys")),
            par(vec![
                invoke(ep("sys", "T")),
                request(ep("sys", "T"), Service::Nil),
            ]),
        );
        let ts = transitions(&s2);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].0, sync_label("sys", "T"));
    }

    #[test]
    fn evict_half_drops_half_and_keeps_a_subset() {
        // Odd and even sizes, including the SHARD_CAP shape the live path
        // hits: survivors must number len/2 and all come from the original.
        for n in [0usize, 1, 2, 101, SHARD_CAP] {
            let mut map: HashMap<u32, u32> = (0..n as u32).map(|i| (i, i * 10)).collect();
            evict_half(&mut map);
            assert_eq!(map.len(), n / 2, "size {n}");
            assert!(
                map.iter().all(|(&k, &v)| k < n as u32 && v == k * 10),
                "size {n}: eviction must only drop entries, never alter them"
            );
        }
    }

    #[test]
    fn cache_stats_are_monotone_and_reset_free() {
        // The memo is global to the process; other tests contribute to it
        // concurrently. Monotonicity must hold regardless: the counters
        // only ever go up, including across automaton-engine activity.
        let before = cache_stats();
        let s = par(vec![
            invoke(ep("mono", "Tick")),
            request(ep("mono", "Tick"), Service::Nil),
        ]);
        transitions_shared(&s); // miss (first time this term is seen)
        transitions_shared(&s); // hit
        let mid = cache_stats();
        assert!(mid.hits > before.hits);
        assert!(mid.misses > before.misses);
        assert!(mid.evictions >= before.evictions);

        // Drive the automaton engine over the same term; the shared memo
        // keeps counting up — no reset, no divergent counter space.
        let auto = crate::automaton::ProcessAutomaton::new();
        let o = crate::observe::TaskObservability::with([sym("mono")], [sym("Tick")]);
        let id = auto.initial_id(&s);
        auto.successors(id, &o, crate::weaknext::WeakNextLimits::default())
            .unwrap();
        let after = cache_stats();
        assert!(after.hits >= mid.hits);
        assert!(after.misses >= mid.misses);
        assert!(after.evictions >= mid.evictions);
        assert!(after.hits + after.misses > mid.hits + mid.misses);
    }
}
