//! The compiled observable-step automaton behind Algorithm 1's fast path.
//!
//! [`weak_next`] rewrites COWS terms: every call BFS-walks the unobservable
//! fragment of the LTS, hashing and normalizing full `Service` terms. Yet
//! all cases of one purpose traverse the same handful of [`Marked`] states —
//! a hospital replaying ten thousand `HT-*` treatment cases recomputes the
//! same `WeakNext` sets ten thousand times. De Masellis et al. compile
//! purpose-aware policies to automata for exactly this reason.
//!
//! A [`ProcessAutomaton`] is that compilation, built lazily: states are
//! interned `Marked` configurations (hashed once, then identified by a dense
//! `u32` [`StateId`]), edges map an [`Observation`] to the successor state
//! id, and per-state caches hold `can_terminate_silently` and the token-task
//! annotation. Everything is behind sharded `RwLock`s so the §7 parallel
//! workers share one automaton and warm it for each other: the Nth case of a
//! process replays with zero term rewriting — integer state-set transitions
//! plus a role-hierarchy check.
//!
//! The τ-budget error path of [`weak_next`] is preserved: a failed expansion
//! is *not* cached, so every caller sees [`ExploreError`] exactly as the
//! direct path would.

pub mod frontier;
pub mod snapshot;

use crate::error::ExploreError;
use crate::observe::{Observability, Observation};
use crate::term::Service;
use crate::weaknext::{
    can_terminate_silently, weak_next, Marked, TaskInstance, WeakNextLimits, WeakSuccessor,
};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Dense identifier of an interned [`Marked`] state. Distinct from
/// [`crate::lts::StateId`] (the exploration index): automaton ids are stable
/// for the lifetime of the owning [`ProcessAutomaton`].
pub type StateId = u32;

/// The observable edges out of one state, in [`weak_next`]'s deterministic
/// order (so the automaton engine visits successors exactly as the direct
/// engine does).
pub type Edges = Arc<Vec<(Observation, StateId)>>;

/// Intern-table shards; transitions memoization already showed 16–64 shards
/// keep write contention negligible for the parallel auditor.
const INTERN_SHARDS: usize = 16;

/// One interned state: the configuration plus lazily-filled caches.
struct Node {
    state: Arc<Marked>,
    /// `WeakNext` compiled to integer edges; `None` until first expansion.
    edges: RwLock<Option<Edges>>,
    /// Cached `can_terminate_silently`.
    silent: RwLock<Option<bool>>,
    /// Cached Fig. 6 token-task annotation.
    tokens: RwLock<Option<Arc<BTreeSet<TaskInstance>>>>,
}

/// Counters for the bench report (all monotone, relaxed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AutomatonStats {
    /// Interned states.
    pub states: usize,
    /// States whose `WeakNext` edges have been compiled.
    pub expanded: usize,
    /// Edge lookups answered from the compiled table.
    pub edge_hits: u64,
    /// Edge lookups that had to run `weak_next`.
    pub edge_misses: u64,
    /// States adopted from on-disk snapshots (0 on a cold start).
    pub loaded_states: u64,
    /// Edge tables adopted from on-disk snapshots (0 on a cold start).
    pub loaded_edges: u64,
}

impl AutomatonStats {
    /// Export into a metrics registry with *add* semantics, so the stats
    /// of several per-purpose automatons sum in one registry. All fields
    /// are monotone counters for the lifetime of the owning automaton.
    pub fn export_into(&self, registry: &obs::Registry) {
        registry.add_counter("automaton_states", self.states as u64);
        registry.add_counter("automaton_expanded", self.expanded as u64);
        registry.add_counter("automaton_edge_hits", self.edge_hits);
        registry.add_counter("automaton_edge_misses", self.edge_misses);
        registry.add_counter("automaton_loaded_states", self.loaded_states);
        registry.add_counter("automaton_loaded_edges", self.loaded_edges);
    }
}

/// A lazily-built, thread-shared compilation of one process's observable
/// LTS. Owned by `bpmn::encode::Encoded` behind an `Arc`; clones of the
/// encoding share the same automaton.
pub struct ProcessAutomaton {
    /// `Marked` → id interning, sharded by state hash.
    shards: [RwLock<HashMap<Arc<Marked>, StateId>>; INTERN_SHARDS],
    /// Append-only node table indexed by [`StateId`].
    nodes: RwLock<Vec<Arc<Node>>>,
    /// The interned initial state (computed once; avoids re-normalizing the
    /// full process term on every session open).
    initial: OnceLock<StateId>,
    edge_hits: AtomicU64,
    edge_misses: AtomicU64,
    /// States/edges adopted from snapshots — the warm-start stats surface.
    loaded_states: AtomicU64,
    loaded_edges: AtomicU64,
}

impl Default for ProcessAutomaton {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcessAutomaton {
    pub fn new() -> ProcessAutomaton {
        ProcessAutomaton {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            nodes: RwLock::new(Vec::new()),
            initial: OnceLock::new(),
            edge_hits: AtomicU64::new(0),
            edge_misses: AtomicU64::new(0),
            loaded_states: AtomicU64::new(0),
            loaded_edges: AtomicU64::new(0),
        }
    }

    fn shard_of(state: &Marked) -> usize {
        let mut h = DefaultHasher::new();
        state.hash(&mut h);
        (h.finish() as usize) % INTERN_SHARDS
    }

    /// Intern `state`, returning its stable id. Lock order is shard → node
    /// table; `weak_next` is never run under either lock.
    pub fn intern(&self, state: Marked) -> StateId {
        let shard = &self.shards[Self::shard_of(&state)];
        if let Some(&id) = shard.read().get(&state) {
            return id;
        }
        let mut wr = shard.write();
        if let Some(&id) = wr.get(&state) {
            return id;
        }
        let state = Arc::new(state);
        let mut nodes = self.nodes.write();
        let id = nodes.len() as StateId;
        nodes.push(Arc::new(Node {
            state: state.clone(),
            edges: RwLock::new(None),
            silent: RwLock::new(None),
            tokens: RwLock::new(None),
        }));
        drop(nodes);
        wr.insert(state, id);
        id
    }

    /// The id of `Marked::initial(service)`, interned on first use.
    pub fn initial_id(&self, service: &Service) -> StateId {
        *self
            .initial
            .get_or_init(|| self.intern(Marked::initial(service)))
    }

    fn node(&self, id: StateId) -> Arc<Node> {
        self.nodes.read()[id as usize].clone()
    }

    /// The interned configuration behind `id`.
    pub fn state(&self, id: StateId) -> Arc<Marked> {
        self.node(id).state.clone()
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The observable edges out of `id`, compiling them via [`weak_next`] on
    /// first demand. Edge order equals `weak_next`'s sorted successor order.
    /// A τ-budget failure is returned uncached, exactly like the direct
    /// path; two threads racing on the same expansion write identical edge
    /// vectors (weak_next is deterministic and interning is stable), so the
    /// benign double-store needs no extra synchronization.
    pub fn successors(
        &self,
        id: StateId,
        obs: &dyn Observability,
        limits: WeakNextLimits,
    ) -> Result<Edges, ExploreError> {
        self.successors_traced(id, obs, limits, &obs::Recorder::noop())
    }

    /// [`successors`](Self::successors) with telemetry: a compile (cache
    /// miss) emits an [`obs::ObsEvent::AutomatonExpand`] event. Hits emit
    /// nothing — the hot path stays a read-lock and an atomic increment.
    pub fn successors_traced(
        &self,
        id: StateId,
        observability: &dyn Observability,
        limits: WeakNextLimits,
        recorder: &obs::Recorder,
    ) -> Result<Edges, ExploreError> {
        let node = self.node(id);
        if let Some(edges) = node.edges.read().as_ref() {
            self.edge_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(edges.clone());
        }
        self.edge_misses.fetch_add(1, Ordering::Relaxed);
        let succ = weak_next(&node.state, observability, limits)?;
        let edges: Edges = Arc::new(
            succ.into_iter()
                .map(|w| (w.observation, self.intern(w.state)))
                .collect(),
        );
        *node.edges.write() = Some(edges.clone());
        recorder.emit(|| obs::ObsEvent::AutomatonExpand {
            state: id,
            successors: edges.len(),
        });
        Ok(edges)
    }

    /// The compiled edges of `id`, if it has already been expanded. Unlike
    /// [`successors`](Self::successors) this never runs `weak_next` and does
    /// not touch the hit/miss counters — it is the lookup the replay engine
    /// uses for states it expanded eagerly on insertion.
    pub fn cached_edges(&self, id: StateId) -> Option<Edges> {
        self.node(id).edges.read().clone()
    }

    /// [`successors`](Self::successors) materialized back into
    /// [`WeakSuccessor`]s — for callers (lenient replay, inspection APIs)
    /// that need owned `Marked` states.
    pub fn weak_successors(
        &self,
        id: StateId,
        obs: &dyn Observability,
        limits: WeakNextLimits,
    ) -> Result<Vec<WeakSuccessor>, ExploreError> {
        let edges = self.successors(id, obs, limits)?;
        Ok(edges
            .iter()
            .map(|&(observation, sid)| WeakSuccessor {
                observation,
                state: (*self.state(sid)).clone(),
            })
            .collect())
    }

    /// Cached [`can_terminate_silently`]. Errors are not cached.
    pub fn can_quiesce(
        &self,
        id: StateId,
        obs: &dyn Observability,
        limits: WeakNextLimits,
    ) -> Result<bool, ExploreError> {
        let node = self.node(id);
        if let Some(v) = *node.silent.read() {
            return Ok(v);
        }
        let v = can_terminate_silently(&node.state, obs, limits)?;
        *node.silent.write() = Some(v);
        Ok(v)
    }

    /// Cached Fig. 6 token-task annotation of `id`.
    pub fn token_tasks(&self, id: StateId, obs: &dyn Observability) -> Arc<BTreeSet<TaskInstance>> {
        let node = self.node(id);
        if let Some(t) = node.tokens.read().as_ref() {
            return t.clone();
        }
        let t = Arc::new(node.state.token_tasks(obs));
        *node.tokens.write() = Some(t.clone());
        t
    }

    /// Snapshot the compilation counters.
    pub fn stats(&self) -> AutomatonStats {
        let nodes = self.nodes.read();
        AutomatonStats {
            states: nodes.len(),
            expanded: nodes.iter().filter(|n| n.edges.read().is_some()).count(),
            edge_hits: self.edge_hits.load(Ordering::Relaxed),
            edge_misses: self.edge_misses.load(Ordering::Relaxed),
            loaded_states: self.loaded_states.load(Ordering::Relaxed),
            loaded_edges: self.loaded_edges.load(Ordering::Relaxed),
        }
    }

    /// Serialize the current compilation into snapshot bytes keyed by
    /// `key` (see [`snapshot`] for the format and keying rules).
    pub fn to_snapshot_bytes(&self, key: u64) -> Vec<u8> {
        snapshot::encode_snapshot(self, key)
    }

    /// Fail-open load: decode `bytes` (validating magic, version, key and
    /// checksum) and merge the carried states/edges/caches into this
    /// automaton. On any error the automaton is untouched and the caller
    /// falls back to cold compilation.
    pub fn load_snapshot_bytes(
        &self,
        bytes: &[u8],
        key: u64,
    ) -> Result<snapshot::MergeReport, snapshot::SnapshotError> {
        let decoded = snapshot::decode_snapshot(bytes, key)?;
        Ok(snapshot::merge_snapshot(self, decoded))
    }
}

impl fmt::Debug for ProcessAutomaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("ProcessAutomaton")
            .field("states", &s.states)
            .field("expanded", &s.expanded)
            .field("edge_hits", &s.edge_hits)
            .field("edge_misses", &s.edge_misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::TaskObservability;
    use crate::symbol::sym;
    use crate::term::{ep, invoke, par, request, Service};

    fn obs(roles: &[&str], tasks: &[&str]) -> TaskObservability {
        TaskObservability::with(roles.iter().map(|r| sym(r)), tasks.iter().map(|t| sym(t)))
    }

    /// Two observable tasks in sequence: A then B.
    fn two_seq() -> Service {
        par(vec![
            invoke(ep("P", "A")),
            request(ep("P", "A"), invoke(ep("P", "B"))),
            request(ep("P", "B"), Service::Nil),
        ])
    }

    #[test]
    fn interning_is_stable_and_deduplicating() {
        let auto = ProcessAutomaton::new();
        let s = two_seq();
        let m = Marked::initial(&s);
        let a = auto.intern(m.clone());
        let b = auto.intern(m.clone());
        assert_eq!(a, b);
        assert_eq!(auto.len(), 1);
        assert_eq!(*auto.state(a), m);
    }

    #[test]
    fn edges_match_weak_next_in_content_and_order() {
        let auto = ProcessAutomaton::new();
        let s = two_seq();
        let o = obs(&["P"], &["A", "B"]);
        let limits = WeakNextLimits::default();
        let id = auto.initial_id(&s);
        let direct = weak_next(&Marked::initial(&s), &o, limits).unwrap();
        let edges = auto.successors(id, &o, limits).unwrap();
        assert_eq!(edges.len(), direct.len());
        for (edge, succ) in edges.iter().zip(&direct) {
            assert_eq!(edge.0, succ.observation);
            assert_eq!(*auto.state(edge.1), succ.state);
        }
        // Materialized view round-trips.
        assert_eq!(auto.weak_successors(id, &o, limits).unwrap(), direct);
    }

    #[test]
    fn second_lookup_is_a_cache_hit() {
        let auto = ProcessAutomaton::new();
        let s = two_seq();
        let o = obs(&["P"], &["A", "B"]);
        let limits = WeakNextLimits::default();
        let id = auto.initial_id(&s);
        auto.successors(id, &o, limits).unwrap();
        auto.successors(id, &o, limits).unwrap();
        let stats = auto.stats();
        assert_eq!(stats.edge_misses, 1);
        assert_eq!(stats.edge_hits, 1);
        assert_eq!(stats.expanded, 1);
    }

    #[test]
    fn quiescence_and_tokens_are_cached_per_state() {
        let auto = ProcessAutomaton::new();
        let s = two_seq();
        let o = obs(&["P"], &["A", "B"]);
        let limits = WeakNextLimits::default();
        let id = auto.initial_id(&s);
        // Initial state needs an observable step before quiescence.
        assert!(!auto.can_quiesce(id, &o, limits).unwrap());
        assert!(!auto.can_quiesce(id, &o, limits).unwrap());
        let m = auto.state(id);
        assert_eq!(*auto.token_tasks(id, &o), m.token_tasks(&o));
        // Walk to the final state: after A then B the process quiesces.
        let e1 = auto.successors(id, &o, limits).unwrap();
        let e2 = auto.successors(e1[0].1, &o, limits).unwrap();
        assert!(auto.can_quiesce(e2[0].1, &o, limits).unwrap());
    }

    #[test]
    fn tau_budget_error_is_not_cached() {
        // A τ-chain longer than the tiny budget (same shape as the
        // weaknext test); the error must surface on every call.
        let mut cont = Service::Nil;
        for i in (0..10).rev() {
            let e = ep("sys", format!("step{i}").as_str());
            cont = par(vec![invoke(e), request(e, cont)]);
        }
        let o = obs(&["P"], &["T"]);
        let tiny = WeakNextLimits { max_tau_states: 3 };
        let auto = ProcessAutomaton::new();
        let id = auto.initial_id(&cont);
        for _ in 0..2 {
            let err = auto.successors(id, &o, tiny).unwrap_err();
            assert_eq!(err, ExploreError::TauBudgetExceeded { limit: 3 });
        }
        assert_eq!(auto.stats().expanded, 0);
        assert_eq!(auto.stats().edge_misses, 2);
        // A sane budget still succeeds afterwards.
        assert!(auto
            .successors(id, &o, WeakNextLimits::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn shared_across_clones_of_the_arc() {
        let auto = Arc::new(ProcessAutomaton::new());
        let s = two_seq();
        let o = obs(&["P"], &["A", "B"]);
        let limits = WeakNextLimits::default();
        let id = auto.initial_id(&s);
        auto.successors(id, &o, limits).unwrap();
        let other = auto.clone();
        other.successors(id, &o, limits).unwrap();
        assert_eq!(other.stats().edge_hits, 1);
    }
}
