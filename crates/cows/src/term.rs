//! The COWS abstract syntax.
//!
//! The grammar implemented here is the *minimal* COWS of §3.3:
//!
//! ```text
//! s ::= p·o!⟨w⟩  |  [d]s  |  g  |  s | s  |  {|s|}  |  kill(k)  |  ∗s
//! g ::= 0  |  p·o?⟨w⟩.s  |  g + g
//! ```
//!
//! Two deviations, both neutral on the BPMN image of the encoding and
//! explained in `DESIGN.md` §3.1:
//!
//! * choice is flattened into a list of request branches ([`Guard`]), with
//!   the empty list playing the role of `0`;
//! * invoke activities may carry `completes` metadata ([`Invoke::completes`])
//!   naming the tasks that finish when the activity executes. This is pure
//!   bookkeeping for [`crate::weaknext`]; it does not affect the semantics.

use crate::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A communication endpoint `partner · operation`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    pub partner: Symbol,
    pub op: Symbol,
}

impl Endpoint {
    pub fn new(partner: impl Into<Symbol>, op: impl Into<Symbol>) -> Endpoint {
        Endpoint {
            partner: partner.into(),
            op: op.into(),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.partner, self.op)
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A parameter of an invoke or request activity: either a closed name or a
/// variable to be instantiated by communication.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Word {
    Name(Symbol),
    Var(Symbol),
}

impl Word {
    pub fn name(s: impl Into<Symbol>) -> Word {
        Word::Name(s.into())
    }
    pub fn var(s: impl Into<Symbol>) -> Word {
        Word::Var(s.into())
    }
    pub fn as_name(self) -> Option<Symbol> {
        match self {
            Word::Name(n) => Some(n),
            Word::Var(_) => None,
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Word::Name(n) => write!(f, "{n}"),
            Word::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// A declaration introduced by the delimitation operator `[d]s`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Decl {
    /// A private name.
    Name(Symbol),
    /// A variable awaiting instantiation by a request activity in scope.
    Var(Symbol),
    /// A killer label delimiting the blast radius of `kill(k)`.
    Killer(Symbol),
}

/// An invoke (sending) activity `p·o!⟨w̄⟩`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Invoke {
    pub ep: Endpoint,
    pub args: Vec<Word>,
    /// Tasks (identified by their start endpoint) that complete when this
    /// activity executes. See `DESIGN.md` §3.2.
    pub completes: Vec<Endpoint>,
}

/// One branch of a receive-guarded choice: `p·o?⟨w̄⟩.s`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Request {
    pub ep: Endpoint,
    pub params: Vec<Word>,
    pub cont: Arc<Service>,
}

/// A receive-guarded service `g`: zero (no branches) or a choice among
/// request prefixes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Guard {
    pub branches: Vec<Request>,
}

/// A COWS service.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize)]
pub enum Service {
    /// The empty activity `0`.
    #[default]
    Nil,
    /// `p·o!⟨w̄⟩`.
    Invoke(Invoke),
    /// `0`, a request prefix, or a choice of request prefixes.
    Guarded(Guard),
    /// `s | s | …`.
    Parallel(Vec<Service>),
    /// `[d]s`.
    Delim(Decl, Arc<Service>),
    /// `{|s|}` — protected from `kill`.
    Protect(Arc<Service>),
    /// `kill(k)`.
    Kill(Symbol),
    /// `∗s` — replication.
    Repl(Arc<Service>),
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

/// `p·o!⟨⟩` — synchronization-style invoke with no payload.
pub fn invoke(ep: Endpoint) -> Service {
    Service::Invoke(Invoke {
        ep,
        args: Vec::new(),
        completes: Vec::new(),
    })
}

/// `p·o!⟨w̄⟩`.
pub fn invoke_args(ep: Endpoint, args: Vec<Word>) -> Service {
    Service::Invoke(Invoke {
        ep,
        args,
        completes: Vec::new(),
    })
}

/// An invoke annotated with the tasks it completes.
pub fn invoke_completing(ep: Endpoint, completes: Vec<Endpoint>) -> Service {
    Service::Invoke(Invoke {
        ep,
        args: Vec::new(),
        completes,
    })
}

/// `p·o?⟨⟩.s`.
pub fn request(ep: Endpoint, cont: Service) -> Service {
    Service::Guarded(Guard {
        branches: vec![Request {
            ep,
            params: Vec::new(),
            cont: Arc::new(cont),
        }],
    })
}

/// `p·o?⟨w̄⟩.s`.
pub fn request_params(ep: Endpoint, params: Vec<Word>, cont: Service) -> Service {
    Service::Guarded(Guard {
        branches: vec![Request {
            ep,
            params,
            cont: Arc::new(cont),
        }],
    })
}

/// `g1 + g2 + …` over request branches.
pub fn choice(branches: Vec<Request>) -> Service {
    Service::Guarded(Guard { branches })
}

/// `s1 | s2 | …`.
pub fn par(services: Vec<Service>) -> Service {
    Service::Parallel(services)
}

/// `[d]s`.
pub fn delim(decl: Decl, body: Service) -> Service {
    Service::Delim(decl, Arc::new(body))
}

/// `[k]s` with a killer label.
pub fn delim_killer(k: impl Into<Symbol>, body: Service) -> Service {
    Service::Delim(Decl::Killer(k.into()), Arc::new(body))
}

/// `[x]s` with a variable.
pub fn delim_var(x: impl Into<Symbol>, body: Service) -> Service {
    Service::Delim(Decl::Var(x.into()), Arc::new(body))
}

/// `{|s|}`.
pub fn protect(body: Service) -> Service {
    Service::Protect(Arc::new(body))
}

/// `kill(k)`.
pub fn kill(k: impl Into<Symbol>) -> Service {
    Service::Kill(k.into())
}

/// `∗s`.
pub fn repl(body: Service) -> Service {
    Service::Repl(Arc::new(body))
}

/// Shorthand for [`Endpoint::new`].
pub fn ep(partner: impl Into<Symbol>, op: impl Into<Symbol>) -> Endpoint {
    Endpoint::new(partner, op)
}

// ---------------------------------------------------------------------------
// Structural queries
// ---------------------------------------------------------------------------

impl Service {
    /// Whether the service is syntactically the empty activity (after
    /// normalization, semantically-dead services are also [`Service::Nil`]).
    pub fn is_nil(&self) -> bool {
        match self {
            Service::Nil => true,
            Service::Guarded(g) => g.branches.is_empty(),
            Service::Parallel(ps) => ps.iter().all(Service::is_nil),
            _ => false,
        }
    }

    /// Number of AST nodes; a rough size metric used by exploration limits
    /// and tests.
    pub fn node_count(&self) -> usize {
        match self {
            Service::Nil | Service::Kill(_) | Service::Invoke(_) => 1,
            Service::Guarded(g) => {
                1 + g
                    .branches
                    .iter()
                    .map(|b| 1 + b.cont.node_count())
                    .sum::<usize>()
            }
            Service::Parallel(ps) => 1 + ps.iter().map(Service::node_count).sum::<usize>(),
            Service::Delim(_, s) | Service::Protect(s) | Service::Repl(s) => 1 + s.node_count(),
        }
    }

    /// Whether `decl` is referenced anywhere in the service.
    pub fn uses_decl(&self, decl: &Decl) -> bool {
        fn word_uses(w: &Word, decl: &Decl) -> bool {
            match (w, decl) {
                (Word::Name(n), Decl::Name(d)) => n == d,
                (Word::Var(v), Decl::Var(d)) => v == d,
                _ => false,
            }
        }
        fn ep_uses(e: &Endpoint, decl: &Decl) -> bool {
            matches!(decl, Decl::Name(d) if e.partner == *d || e.op == *d)
        }
        match self {
            Service::Nil => false,
            Service::Invoke(i) => ep_uses(&i.ep, decl) || i.args.iter().any(|w| word_uses(w, decl)),
            Service::Guarded(g) => g.branches.iter().any(|b| {
                ep_uses(&b.ep, decl)
                    || b.params.iter().any(|w| word_uses(w, decl))
                    || b.cont.uses_decl(decl)
            }),
            Service::Parallel(ps) => ps.iter().any(|p| p.uses_decl(decl)),
            Service::Delim(d, s) => {
                if d == decl {
                    // Shadowed: inner occurrences refer to the inner binder.
                    false
                } else {
                    s.uses_decl(decl)
                }
            }
            Service::Protect(s) | Service::Repl(s) => s.uses_decl(decl),
            Service::Kill(k) => matches!(decl, Decl::Killer(d) if k == d),
        }
    }
}

// ---------------------------------------------------------------------------
// Display (paper-style ASCII rendering)
// ---------------------------------------------------------------------------

fn fmt_words(words: &[Word], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "<")?;
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{w}")?;
    }
    write!(f, ">")
}

/// Bodies of prefix operators (`∗s`, `[d]s`) need parentheses when they are
/// multi-branch choices, which would otherwise re-associate under the
/// looser-binding `+`.
fn fmt_prefix_body(s: &Service, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match s {
        Service::Guarded(g) if g.branches.len() > 1 => write!(f, "({s})"),
        _ => write!(f, "{s}"),
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Service::Nil => write!(f, "0"),
            Service::Invoke(i) => {
                write!(f, "{}!", i.ep)?;
                fmt_words(&i.args, f)
            }
            Service::Guarded(g) => {
                if g.branches.is_empty() {
                    return write!(f, "0");
                }
                for (i, b) in g.branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{}?", b.ep)?;
                    fmt_words(&b.params, f)?;
                    if !b.cont.is_nil() {
                        write!(f, ".({})", b.cont)?;
                    }
                }
                Ok(())
            }
            Service::Parallel(ps) => {
                if ps.is_empty() {
                    return write!(f, "0");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Service::Delim(d, s) => {
                match d {
                    Decl::Name(n) => write!(f, "[{n}]")?,
                    Decl::Var(v) => write!(f, "[?{v}]")?,
                    Decl::Killer(k) => write!(f, "[k:{k}]")?,
                }
                fmt_prefix_body(s, f)
            }
            Service::Protect(s) => write!(f, "{{|{s}|}}"),
            Service::Kill(k) => write!(f, "kill({k})"),
            Service::Repl(s) => {
                write!(f, "*")?;
                fmt_prefix_body(s, f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn builders_compose() {
        // [[S]] | [[T]] | [[E]] from Fig. 7 of the paper.
        let p = sym("P");
        let serv = par(vec![
            invoke(ep(p, "T")),
            request(ep(p, "T"), invoke(ep(p, "E"))),
            request(ep(p, "E"), Service::Nil),
        ]);
        assert_eq!(serv.node_count(), 8);
        assert!(!serv.is_nil());
    }

    #[test]
    fn display_matches_paper_syntax() {
        let s = request(ep("P", "T"), invoke(ep("P", "E")));
        assert_eq!(s.to_string(), "P.T?<>.(P.E!<>)");
        let k = delim_killer("k", par(vec![kill("k"), protect(invoke(ep("P", "T1")))]));
        assert_eq!(k.to_string(), "[k:k](kill(k) | {|P.T1!<>|})");
    }

    #[test]
    fn is_nil_sees_through_structure() {
        assert!(Service::Nil.is_nil());
        assert!(choice(vec![]).is_nil());
        assert!(par(vec![Service::Nil, choice(vec![])]).is_nil());
        assert!(!kill("k").is_nil());
    }

    #[test]
    fn uses_decl_respects_shadowing() {
        let x = sym("x");
        let inner = request_params(ep("P", "O"), vec![Word::var(x)], Service::Nil);
        // [x] P.O?<x> uses x…
        assert!(inner.uses_decl(&Decl::Var(x)));
        // …but [x][x] P.O?<x> does not use the *outer* x.
        let shadowed = delim_var(x, inner);
        assert!(!shadowed.uses_decl(&Decl::Var(x)));
    }

    #[test]
    fn uses_decl_distinguishes_categories() {
        let n = sym("n");
        let s = invoke(ep(n, "op"));
        assert!(s.uses_decl(&Decl::Name(n)));
        assert!(!s.uses_decl(&Decl::Var(n)));
        assert!(!s.uses_decl(&Decl::Killer(n)));
    }

    #[test]
    fn kill_uses_killer_decl() {
        let s = kill("k");
        assert!(s.uses_decl(&Decl::Killer(sym("k"))));
        assert!(!s.uses_decl(&Decl::Name(sym("k"))));
    }
}
