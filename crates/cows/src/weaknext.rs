//! `WeakNext` — the workhorse of Algorithm 1.
//!
//! Definition 7 of the paper: given a service `s`,
//!
//! ```text
//! WeakNext(s) = { s' | ∃k<∞ . s →l0 … →lk sk →l s'  ∧  ∀i≤k. li ∉ L  ∧  l ∈ L }
//! ```
//!
//! i.e. the states reachable by a finite sequence of unobservable steps
//! followed by *exactly one* observable step. For each reachable state the
//! function also computes the set of active tasks (Def. 6).
//!
//! States are [`Marked`] services: a canonical COWS term plus the set of
//! *running* tasks (started, not yet completed). Task starts are the
//! observable `r·q` synchronizations; completions are the `completes`
//! annotations placed by the BPMN encoding on the invoke that hands the
//! token to the next element (see `DESIGN.md` §3.2).

use crate::error::ExploreError;
use crate::normal::normalize;
use crate::observe::{Observability, Observation};
use crate::semantics::transitions_shared;
use crate::symbol::Symbol;
use crate::term::Service;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::sync::Arc;

/// A task instance `(role, task)` — an element of `R × Q`.
pub type TaskInstance = (Symbol, Symbol);

/// A COWS state enriched with task bookkeeping.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Marked {
    /// Canonical COWS service.
    pub service: Service,
    /// Tasks that have started (their `r·q` synchronization fired) and not
    /// yet completed (their hand-over invoke has not fired).
    pub running: BTreeSet<TaskInstance>,
}

impl Marked {
    /// The initial marked state of a process: no task has started yet —
    /// "because a BPMN process is always triggered by a start event, the
    /// set of active tasks in the initial configuration is empty" (§4).
    pub fn initial(service: &Service) -> Marked {
        Marked {
            service: normalize(service.clone()),
            running: BTreeSet::new(),
        }
    }

    /// Tasks whose start synchronization is enabled without any
    /// unobservable step — tokens sitting on a task's incoming flow.
    pub fn enabled_tasks(&self, obs: &dyn Observability) -> BTreeSet<TaskInstance> {
        transitions_shared(&self.service)
            .iter()
            .filter_map(|(l, _)| match obs.observe(l) {
                Some(Observation::Task { role, task }) => Some((role, task)),
                _ => None,
            })
            .collect()
    }

    /// The paper's Fig. 6 state annotation: tasks holding a token —
    /// running tasks, plus tasks whose start is immediately enabled by an
    /// *independent* token. A start whose enabling step would complete a
    /// currently-running task is the same token in transit (sequential
    /// flow), not a second one, and is excluded; this reproduces Fig. 6's
    /// `St13 = {R·T10}` (T11 merely next) versus `St11 = {C·T08, C·T09}`
    /// (T08 holds its own token from the inclusive gateway).
    pub fn token_tasks(&self, obs: &dyn Observability) -> BTreeSet<TaskInstance> {
        let mut t = self.running.clone();
        for (label, _) in transitions_shared(&self.service).iter() {
            if let Some(Observation::Task { role, task }) = obs.observe(label) {
                let hand_over = label
                    .completed_tasks()
                    .iter()
                    .any(|done| self.running.contains(&(done.partner, done.op)));
                if !hand_over {
                    t.insert((role, task));
                }
            }
        }
        t
    }

    /// Whether the process has terminated: no transition of any kind.
    pub fn is_final(&self) -> bool {
        transitions_shared(&self.service).is_empty()
    }
}

/// One element of `WeakNext(s)`: the observation, and the state reached
/// immediately after it (with its active tasks).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WeakSuccessor {
    pub observation: Observation,
    pub state: Marked,
}

/// Budget for the unobservable search. Proposition 1 guarantees finiteness
/// for well-founded processes; the budget turns accidental divergence into a
/// typed error.
#[derive(Clone, Copy, Debug)]
pub struct WeakNextLimits {
    /// Maximum number of distinct unobservable states expanded per call.
    pub max_tau_states: usize,
}

impl Default for WeakNextLimits {
    fn default() -> Self {
        WeakNextLimits {
            max_tau_states: 50_000,
        }
    }
}

/// Compute `WeakNext(from)` under observability `obs`.
///
/// Successors are deduplicated on `(observation, state)` and returned in a
/// deterministic order.
pub fn weak_next(
    from: &Marked,
    obs: &dyn Observability,
    limits: WeakNextLimits,
) -> Result<Vec<WeakSuccessor>, ExploreError> {
    weak_next_counted(from, obs, limits).map(|(succ, _)| succ)
}

/// [`weak_next`] with telemetry: emits an [`obs::ObsEvent::WeakNext`]
/// event (τ-states visited, successor count) on the recorder. With a
/// noop recorder this is exactly `weak_next` plus one branch.
pub fn weak_next_traced(
    from: &Marked,
    observability: &dyn Observability,
    limits: WeakNextLimits,
    recorder: &obs::Recorder,
) -> Result<Vec<WeakSuccessor>, ExploreError> {
    let (succ, tau_states) = weak_next_counted(from, observability, limits)?;
    recorder.emit(|| obs::ObsEvent::WeakNext {
        tau_states,
        successors: succ.len(),
    });
    Ok(succ)
}

/// The BFS body shared by [`weak_next`] and [`weak_next_traced`]; also
/// reports how many distinct unobservable states were expanded.
fn weak_next_counted(
    from: &Marked,
    obs: &dyn Observability,
    limits: WeakNextLimits,
) -> Result<(Vec<WeakSuccessor>, usize), ExploreError> {
    let mut successors: Vec<WeakSuccessor> = Vec::new();
    let mut seen_succ: HashSet<(Observation, Marked)> = HashSet::new();
    // States live in `Arc`s shared between the visited set and the queue:
    // `from` is cloned once, each τ-successor is constructed once, and
    // popping the queue moves the `Arc` instead of cloning a `Marked`.
    let mut visited: HashSet<Arc<Marked>> = HashSet::new();
    let mut queue: VecDeque<Arc<Marked>> = VecDeque::new();

    let start = Arc::new(from.clone());
    visited.insert(start.clone());
    queue.push_back(start);

    while let Some(m) = queue.pop_front() {
        let ts = transitions_shared(&m.service);
        // Iterate by reference: the label is only inspected (observe,
        // completed_tasks); only the residual service of a taken step is
        // cloned into the successor state.
        for (label, next_service) in ts.iter() {
            // Task completions happen on both observable and unobservable
            // steps (a task may hand the token directly to another task, or
            // to a gateway).
            let mut running = m.running.clone();
            for done in label.completed_tasks() {
                running.remove(&(done.partner, done.op));
            }
            match obs.observe(label) {
                Some(observation) => {
                    if let Observation::Task { role, task } = observation {
                        running.insert((role, task));
                    }
                    let state = Marked {
                        service: next_service.clone(),
                        running,
                    };
                    if seen_succ.insert((observation, state.clone())) {
                        successors.push(WeakSuccessor { observation, state });
                    }
                }
                None => {
                    let next = Marked {
                        service: next_service.clone(),
                        running,
                    };
                    if !visited.contains(&next) {
                        if visited.len() >= limits.max_tau_states {
                            return Err(ExploreError::TauBudgetExceeded {
                                limit: limits.max_tau_states,
                            });
                        }
                        let next = Arc::new(next);
                        visited.insert(next.clone());
                        queue.push_back(next);
                    }
                }
            }
        }
    }

    successors.sort_by(|a, b| {
        (a.observation, &a.state.running, &a.state.service).cmp(&(
            b.observation,
            &b.state.running,
            &b.state.service,
        ))
    });
    let tau_states = visited.len();
    Ok((successors, tau_states))
}

/// Whether the process can still silently reach quiescence (every τ path
/// from `from` is finite and no observable step is required). Used by the
/// auditor to distinguish "process completed" from "process suspended
/// mid-way" when a trail ends.
pub fn can_terminate_silently(
    from: &Marked,
    obs: &dyn Observability,
    limits: WeakNextLimits,
) -> Result<bool, ExploreError> {
    // Same Arc-sharing scheme as `weak_next`: one clone of `from.service`,
    // one construction per distinct τ-successor, moves everywhere else.
    let mut visited: HashSet<Arc<Service>> = HashSet::new();
    let mut queue: VecDeque<Arc<Service>> = VecDeque::new();
    let start = Arc::new(from.service.clone());
    visited.insert(start.clone());
    queue.push_back(start);
    while let Some(s) = queue.pop_front() {
        let ts = transitions_shared(&s);
        if ts.is_empty() {
            return Ok(true);
        }
        for (label, next) in ts.iter() {
            if obs.observe(label).is_some() {
                continue;
            }
            if !visited.contains(next) {
                if visited.len() >= limits.max_tau_states {
                    return Err(ExploreError::TauBudgetExceeded {
                        limit: limits.max_tau_states,
                    });
                }
                let next = Arc::new(next.clone());
                visited.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::TaskObservability;
    use crate::symbol::sym;
    use crate::term::{ep, invoke, invoke_completing, par, repl, request, Service};

    fn obs(roles: &[&str], tasks: &[&str]) -> TaskObservability {
        TaskObservability::with(roles.iter().map(|r| sym(r)), tasks.iter().map(|t| sym(t)))
    }

    #[test]
    fn weaknext_skips_unobservable_prefix() {
        // S --τ(gateway)--> then observable P.T.
        // sys.G!<> | sys.G?<>.P.T!<> | P.T?<>.0
        let s = par(vec![
            invoke(ep("sys", "G")),
            request(ep("sys", "G"), invoke(ep("P", "T"))),
            request(ep("P", "T"), Service::Nil),
        ]);
        let o = obs(&["P"], &["T"]);
        let succ = weak_next(&Marked::initial(&s), &o, WeakNextLimits::default()).unwrap();
        assert_eq!(succ.len(), 1);
        assert_eq!(
            succ[0].observation,
            Observation::Task {
                role: sym("P"),
                task: sym("T")
            }
        );
        assert_eq!(
            succ[0].state.running,
            BTreeSet::from([(sym("P"), sym("T"))])
        );
    }

    #[test]
    fn weaknext_stops_after_one_observable() {
        // Two observable tasks in sequence: only the first is in WeakNext.
        let s = par(vec![
            invoke(ep("P", "A")),
            request(ep("P", "A"), invoke(ep("P", "B"))),
            request(ep("P", "B"), Service::Nil),
        ]);
        let o = obs(&["P"], &["A", "B"]);
        let succ = weak_next(&Marked::initial(&s), &o, WeakNextLimits::default()).unwrap();
        assert_eq!(succ.len(), 1);
        assert_eq!(
            succ[0].observation,
            Observation::Task {
                role: sym("P"),
                task: sym("A")
            }
        );
    }

    #[test]
    fn completes_annotation_retires_running_task() {
        // Task A starts, then its hand-over invoke (annotated) triggers B.
        let a = ep("P", "A");
        let s = par(vec![
            invoke(a),
            request(a, invoke_completing(ep("P", "B"), vec![a])),
            request(ep("P", "B"), Service::Nil),
        ]);
        let o = obs(&["P"], &["A", "B"]);
        let m0 = Marked::initial(&s);
        let succ_a = weak_next(&m0, &o, WeakNextLimits::default()).unwrap();
        assert_eq!(succ_a.len(), 1);
        let after_a = &succ_a[0].state;
        assert!(after_a.running.contains(&(sym("P"), sym("A"))));
        // Next observable step is B's start; A completes on that same label.
        let succ_b = weak_next(after_a, &o, WeakNextLimits::default()).unwrap();
        assert_eq!(succ_b.len(), 1);
        assert_eq!(
            succ_b[0].state.running,
            BTreeSet::from([(sym("P"), sym("B"))])
        );
    }

    #[test]
    fn fig5_shape_multiple_observable_successors() {
        // Reproduces the structure of Fig. 5: from s, unobservable moves
        // lead to a state with two observable branches plus one direct
        // observable branch — WeakNext(s) returns exactly the three states
        // one observable step away.
        let o = obs(&["P"], &["L1", "L2", "L3"]);
        let s = par(vec![
            // s --τ--> s0 (choice point), s --l(P.L3)--> s3 directly
            invoke(ep("sys", "g")),
            request(
                ep("sys", "g"),
                par(vec![
                    invoke(ep("sys", "h1")),
                    invoke(ep("sys", "h2")),
                    request(ep("sys", "h1"), invoke(ep("P", "L1"))),
                    request(ep("sys", "h2"), invoke(ep("P", "L2"))),
                ]),
            ),
            invoke(ep("P", "L3")),
            request(ep("P", "L1"), Service::Nil),
            request(ep("P", "L2"), Service::Nil),
            request(ep("P", "L3"), Service::Nil),
        ]);
        let succ = weak_next(&Marked::initial(&s), &o, WeakNextLimits::default()).unwrap();
        let observed: BTreeSet<String> = succ.iter().map(|w| w.observation.to_string()).collect();
        assert_eq!(
            observed,
            BTreeSet::from(["P.L1".into(), "P.L2".into(), "P.L3".into()])
        );
    }

    #[test]
    fn tau_divergence_hits_budget() {
        // *sys.x?<>.sys.x!<> with a token: an unobservable loop. The state
        // space is tiny (canonical forms collapse), so to exercise the
        // budget we set it below the visited-set size.
        let body = request(ep("sys", "x"), invoke(ep("sys", "x")));
        let s = par(vec![repl(body), invoke(ep("sys", "x"))]);
        let o = obs(&["P"], &["T"]);
        // With a sane budget: no observable successor, no divergence
        // (canonicalization closes the τ-loop).
        let succ = weak_next(&Marked::initial(&s), &o, WeakNextLimits::default()).unwrap();
        assert!(succ.is_empty());
    }

    #[test]
    fn tau_budget_error_surfaces() {
        // A τ-chain longer than the budget: sys.a → sys.b → sys.c …
        let mut cont = Service::Nil;
        for i in (0..10).rev() {
            let e = ep("sys", format!("step{i}").as_str());
            cont = par(vec![invoke(e), request(e, cont)]);
        }
        let o = obs(&["P"], &["T"]);
        let err = weak_next(
            &Marked::initial(&cont),
            &o,
            WeakNextLimits { max_tau_states: 3 },
        )
        .unwrap_err();
        assert_eq!(err, ExploreError::TauBudgetExceeded { limit: 3 });
    }

    #[test]
    fn silent_termination_detection() {
        let o = obs(&["P"], &["T"]);
        // Ends after one τ.
        let s = par(vec![
            invoke(ep("sys", "end")),
            request(ep("sys", "end"), Service::Nil),
        ]);
        assert!(
            can_terminate_silently(&Marked::initial(&s), &o, WeakNextLimits::default()).unwrap()
        );
        // Requires an observable step before quiescence.
        let s2 = par(vec![
            invoke(ep("P", "T")),
            request(ep("P", "T"), Service::Nil),
        ]);
        assert!(
            !can_terminate_silently(&Marked::initial(&s2), &o, WeakNextLimits::default()).unwrap()
        );
    }

    #[test]
    fn enabled_and_token_tasks() {
        let o = obs(&["P"], &["T"]);
        let s = par(vec![
            invoke(ep("P", "T")),
            request(ep("P", "T"), Service::Nil),
        ]);
        let m = Marked::initial(&s);
        assert_eq!(m.enabled_tasks(&o), BTreeSet::from([(sym("P"), sym("T"))]));
        assert_eq!(m.token_tasks(&o), BTreeSet::from([(sym("P"), sym("T"))]));
        assert!(m.running.is_empty());
    }
}
