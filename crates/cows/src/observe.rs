//! Observability of transition labels.
//!
//! §3.5 of the paper distinguishes the IT-observable subset `L ⊂ L` of
//! labels: synchronizations `r·q` where `r` is a role and `q` a task
//! (a task received the token), and the error label `sys·Err`. Everything
//! else — gateway bookkeeping on the private `sys` partner, message flows
//! between pools, event triggers — is unobservable and skipped by
//! [`crate::weaknext::weak_next`].

use crate::label::Label;
use crate::symbol::{sym, Symbol};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// The reserved partner used for internal computation labels (gateway
/// decisions, error signaling). §3.3: "we use the private name sys".
pub fn sys_partner() -> Symbol {
    sym("sys")
}

/// The reserved operation for error events: `sys·Err`.
pub fn err_op() -> Symbol {
    sym("Err")
}

/// An observable event: either a task receiving the token, or an error.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Observation {
    /// `r·q` — task `q` of role `r` received the token.
    Task { role: Symbol, task: Symbol },
    /// `sys·Err`.
    Error,
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::Task { role, task } => write!(f, "{role}.{task}"),
            Observation::Error => write!(f, "sys.Err"),
        }
    }
}

/// Decides which labels are IT observable.
pub trait Observability {
    fn observe(&self, label: &Label) -> Option<Observation>;
}

/// The paper's observability: `L = {r·q | r ∈ R, q ∈ Q} ∪ {sys·Err}`.
#[derive(Clone, Debug, Default)]
pub struct TaskObservability {
    roles: HashSet<Symbol>,
    tasks: HashSet<Symbol>,
}

impl TaskObservability {
    pub fn new() -> TaskObservability {
        TaskObservability::default()
    }

    pub fn with(
        roles: impl IntoIterator<Item = Symbol>,
        tasks: impl IntoIterator<Item = Symbol>,
    ) -> TaskObservability {
        TaskObservability {
            roles: roles.into_iter().collect(),
            tasks: tasks.into_iter().collect(),
        }
    }

    pub fn add_role(&mut self, role: Symbol) {
        self.roles.insert(role);
    }

    pub fn add_task(&mut self, task: Symbol) {
        self.tasks.insert(task);
    }

    pub fn roles(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.roles.iter().copied()
    }

    pub fn tasks(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.tasks.iter().copied()
    }
}

impl Observability for TaskObservability {
    fn observe(&self, label: &Label) -> Option<Observation> {
        let Label::Comm { ep, .. } = label else {
            return None;
        };
        if ep.partner == sys_partner() && ep.op == err_op() {
            return Some(Observation::Error);
        }
        if self.roles.contains(&ep.partner) && self.tasks.contains(&ep.op) {
            return Some(Observation::Task {
                role: ep.partner,
                task: ep.op,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::ep;

    fn comm(partner: &str, op: &str) -> Label {
        Label::Comm {
            ep: ep(partner, op),
            args: vec![],
            completes: vec![],
        }
    }

    fn obs() -> TaskObservability {
        TaskObservability::with([sym("GP"), sym("C")], [sym("T01"), sym("T02"), sym("T06")])
    }

    #[test]
    fn task_sync_is_observable() {
        assert_eq!(
            obs().observe(&comm("GP", "T01")),
            Some(Observation::Task {
                role: sym("GP"),
                task: sym("T01")
            })
        );
    }

    #[test]
    fn sys_err_is_observable() {
        assert_eq!(obs().observe(&comm("sys", "Err")), Some(Observation::Error));
    }

    #[test]
    fn gateway_bookkeeping_is_not_observable() {
        assert_eq!(obs().observe(&comm("sys", "T01")), None);
        assert_eq!(obs().observe(&comm("GP", "G1")), None);
    }

    #[test]
    fn open_labels_are_never_observable() {
        let l = Label::Request {
            ep: ep("GP", "T01"),
            params: vec![],
        };
        assert_eq!(obs().observe(&l), None);
        assert_eq!(obs().observe(&Label::KillExec), None);
    }

    #[test]
    fn unknown_role_is_not_observable() {
        assert_eq!(obs().observe(&comm("Nurse", "T01")), None);
    }

    #[test]
    fn observation_display() {
        assert_eq!(
            Observation::Task {
                role: sym("GP"),
                task: sym("T01")
            }
            .to_string(),
            "GP.T01"
        );
        assert_eq!(Observation::Error.to_string(), "sys.Err");
    }
}
