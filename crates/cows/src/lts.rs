//! Labeled transition systems.
//!
//! [`explore`] builds the full (closed-system) LTS of a service by
//! breadth-first search over [`crate::semantics::transitions`], identifying
//! states up to structural congruence via canonical normal forms.
//!
//! [`Lts::observable_traces`] enumerates the observable traces of an LTS —
//! the object the *naïve* purpose-control approach of §1 would compare audit
//! trails against, and which the paper rejects because the set can be
//! infinite. We bound the enumeration and surface the blow-up as an error.

use crate::error::ExploreError;
use crate::label::Label;
use crate::normal::normalize;
use crate::observe::{Observability, Observation};
use crate::semantics::transitions_shared;
use crate::term::Service;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Index of a state inside an [`Lts`].
pub type StateId = usize;

/// Limits for [`explore`].
#[derive(Clone, Copy, Debug)]
pub struct ExploreLimits {
    /// Maximum number of distinct states.
    pub max_states: usize,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 100_000,
        }
    }
}

/// A finite labeled transition system `(s0, S, L, →)`.
#[derive(Clone, Debug)]
pub struct Lts {
    pub initial: StateId,
    states: Vec<Service>,
    edges: Vec<Vec<(Label, StateId)>>,
}

impl Lts {
    pub fn state(&self, id: StateId) -> &Service {
        &self.states[id]
    }

    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Outgoing edges of a state.
    pub fn edges_from(&self, id: StateId) -> &[(Label, StateId)] {
        &self.edges[id]
    }

    /// All states with no outgoing edges (completed or deadlocked).
    pub fn terminal_states(&self) -> Vec<StateId> {
        (0..self.states.len())
            .filter(|&i| self.edges[i].is_empty())
            .collect()
    }

    /// Enumerate observable traces up to `max_len` observations.
    ///
    /// Unobservable transitions are τ-abstracted. Traces are returned
    /// deduplicated and sorted. Fails with [`ExploreError::TraceLimit`] once
    /// more than `max_traces` distinct traces (complete or partial) have
    /// been generated — the blow-up of the naïve approach.
    pub fn observable_traces(
        &self,
        obs: &dyn Observability,
        max_len: usize,
        max_traces: usize,
    ) -> Result<Vec<Vec<Observation>>, ExploreError> {
        // Work queue over (state, trace-so-far); τ moves do not extend the
        // trace. Visited set on (state, trace) prevents τ-cycles from
        // looping forever, but observable cycles still multiply traces —
        // which is exactly the point the paper makes.
        let mut out: Vec<Vec<Observation>> = Vec::new();
        let mut queue: VecDeque<(StateId, Vec<Observation>)> = VecDeque::new();
        let mut seen: std::collections::HashSet<(StateId, Vec<Observation>)> =
            std::collections::HashSet::new();
        queue.push_back((self.initial, Vec::new()));
        seen.insert((self.initial, Vec::new()));
        while let Some((sid, trace)) = queue.pop_front() {
            out.push(trace.clone());
            if out.len() > max_traces {
                return Err(ExploreError::TraceLimit { limit: max_traces });
            }
            if trace.len() == max_len {
                continue;
            }
            for (label, next) in &self.edges[sid] {
                let mut t = trace.clone();
                if let Some(o) = obs.observe(label) {
                    t.push(o);
                }
                if seen.insert((*next, t.clone())) {
                    queue.push_back((*next, t));
                }
            }
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// The set of distinct observable labels appearing on any edge.
    pub fn observable_alphabet(&self, obs: &dyn Observability) -> Vec<Observation> {
        let mut v: Vec<Observation> = self
            .edges
            .iter()
            .flatten()
            .filter_map(|(l, _)| obs.observe(l))
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Build the LTS reachable from `initial` by closed-system transitions.
pub fn explore(initial: &Service, limits: ExploreLimits) -> Result<Lts, ExploreError> {
    let init = normalize(initial.clone());
    let mut ids: HashMap<Service, StateId> = HashMap::new();
    let mut states: Vec<Service> = Vec::new();
    let mut edges: Vec<Vec<(Label, StateId)>> = Vec::new();
    let mut queue: VecDeque<StateId> = VecDeque::new();

    ids.insert(init.clone(), 0);
    states.push(init);
    edges.push(Vec::new());
    queue.push_back(0);

    while let Some(sid) = queue.pop_front() {
        let ts = transitions_shared(&states[sid]);
        let mut out = Vec::with_capacity(ts.len());
        for (label, next) in ts.iter().cloned() {
            let nid = match ids.entry(next.clone()) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    if states.len() >= limits.max_states {
                        return Err(ExploreError::StateLimit {
                            limit: limits.max_states,
                        });
                    }
                    let nid = states.len();
                    e.insert(nid);
                    states.push(next);
                    edges.push(Vec::new());
                    queue.push_back(nid);
                    nid
                }
            };
            out.push((label, nid));
        }
        edges[sid] = out;
    }

    Ok(Lts {
        initial: 0,
        states,
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::TaskObservability;
    use crate::symbol::sym;
    use crate::term::{ep, invoke, par, repl, request, Service};

    /// Fig. 7: S → T → E. Three states, two edges.
    fn fig7() -> Service {
        par(vec![
            invoke(ep("P", "T")),
            request(ep("P", "T"), invoke(ep("P", "E"))),
            request(ep("P", "E"), Service::Nil),
        ])
    }

    #[test]
    fn fig7_lts_shape() {
        let lts = explore(&fig7(), ExploreLimits::default()).unwrap();
        assert_eq!(lts.state_count(), 3);
        assert_eq!(lts.edge_count(), 2);
        assert_eq!(lts.terminal_states().len(), 1);
    }

    #[test]
    fn traces_of_fig7() {
        let lts = explore(&fig7(), ExploreLimits::default()).unwrap();
        let obs = TaskObservability::with([sym("P")], [sym("T")]);
        let traces = lts.observable_traces(&obs, 10, 100).unwrap();
        // Prefix-closed: ε and ⟨P.T⟩.
        assert_eq!(traces.len(), 2);
        assert_eq!(
            traces[1],
            vec![Observation::Task {
                role: sym("P"),
                task: sym("T")
            }]
        );
    }

    #[test]
    fn state_limit_is_enforced() {
        let err = explore(&fig7(), ExploreLimits { max_states: 1 }).unwrap_err();
        assert_eq!(err, ExploreError::StateLimit { limit: 1 });
    }

    #[test]
    fn cyclic_process_has_finite_lts() {
        // *P.T?<>.P.T!<> fed one token: a single-state loop.
        let body = request(ep("P", "T"), invoke(ep("P", "T")));
        let s = par(vec![repl(body), invoke(ep("P", "T"))]);
        let lts = explore(&s, ExploreLimits::default()).unwrap();
        assert_eq!(lts.state_count(), 1);
        assert_eq!(lts.edge_count(), 1);
    }

    #[test]
    fn cyclic_process_trace_enumeration_blows_up() {
        // The same loop makes the naïve trace set infinite: the enumerator
        // must hit its budget. This is the §1 argument for Algorithm 1.
        let body = request(ep("P", "T"), invoke(ep("P", "T")));
        let s = par(vec![repl(body), invoke(ep("P", "T"))]);
        let lts = explore(&s, ExploreLimits::default()).unwrap();
        let obs = TaskObservability::with([sym("P")], [sym("T")]);
        // Unbounded length: every length-k trace exists, so the trace
        // budget is exceeded.
        let err = lts.observable_traces(&obs, usize::MAX, 50).unwrap_err();
        assert_eq!(err, ExploreError::TraceLimit { limit: 50 });
    }

    #[test]
    fn observable_alphabet() {
        let lts = explore(&fig7(), ExploreLimits::default()).unwrap();
        let obs = TaskObservability::with([sym("P")], [sym("T"), sym("E")]);
        let alpha = lts.observable_alphabet(&obs);
        assert_eq!(alpha.len(), 2);
    }

    use crate::observe::Observation;
}
