//! Exploration errors.

use std::fmt;

/// Errors raised by LTS exploration and `WeakNext` computation.
///
/// All limits are defensive: Proposition 1 / Corollary 1 of the paper
/// guarantee termination for well-founded processes, so hitting a limit on
/// an encoded BPMN process indicates either a non-well-founded model (which
/// `bpmn::wellfounded` detects statically) or a limit configured too low for
/// the model size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreError {
    /// The state budget of a full LTS exploration was exhausted.
    StateLimit { limit: usize },
    /// A `WeakNext` computation expanded more unobservable states than
    /// allowed — the τ-divergence guard of `DESIGN.md` §3.3.
    TauBudgetExceeded { limit: usize },
    /// Trace enumeration produced more traces than allowed (the naïve
    /// baseline blowing up, as §1 of the paper predicts).
    TraceLimit { limit: usize },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimit { limit } => {
                write!(f, "LTS exploration exceeded the state limit of {limit}")
            }
            ExploreError::TauBudgetExceeded { limit } => write!(
                f,
                "WeakNext exceeded the unobservable-step budget of {limit}; \
                 the process is likely not well-founded"
            ),
            ExploreError::TraceLimit { limit } => {
                write!(f, "trace enumeration exceeded the limit of {limit} traces")
            }
        }
    }
}

impl std::error::Error for ExploreError {}
