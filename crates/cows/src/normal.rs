//! Canonical normal form.
//!
//! LTS exploration identifies states up to *structural congruence*: parallel
//! composition is associative and commutative with unit `0`; choice is
//! associative and commutative; unused delimiters are inert; dead services
//! are garbage-collected. Normalization rewrites services into a canonical
//! representative so that congruent states hash and compare equal.
//!
//! The encoding never generates fresh identifiers at runtime, so canonical
//! form does not need α-renaming (see `DESIGN.md` §3.1): replicated copies
//! of a service reuse the same symbols and therefore collapse to identical
//! canonical terms once consumed.

use crate::term::Service;
use std::sync::Arc;

/// Rewrite `s` into canonical normal form.
///
/// Guarantees:
/// * `Parallel` nodes are flat, sorted, free of nil components, and never
///   unary or empty;
/// * `Guarded` nodes have sorted branches; an empty guard is `Nil`;
/// * delimiters whose declaration is unused in their body are removed;
/// * `Protect`/`Repl`/`Delim` of a dead body collapse to `Nil`;
/// * normalization is idempotent.
pub fn normalize(s: Service) -> Service {
    match s {
        Service::Nil | Service::Kill(_) | Service::Invoke(_) => s,
        Service::Guarded(mut g) => {
            // Continuations are normalized lazily (when a branch fires);
            // normalizing them here keeps canonical forms stable across
            // different construction orders.
            for b in &mut g.branches {
                b.cont = Arc::new(normalize((*b.cont).clone()));
            }
            g.branches.sort();
            if g.branches.is_empty() {
                Service::Nil
            } else {
                Service::Guarded(g)
            }
        }
        Service::Parallel(children) => {
            let mut flat = Vec::with_capacity(children.len());
            flatten_parallel(children, &mut flat);
            flat.sort();
            match flat.len() {
                0 => Service::Nil,
                1 => flat.pop().expect("len checked"),
                _ => Service::Parallel(flat),
            }
        }
        Service::Delim(d, body) => {
            let body = normalize((*body).clone());
            if body.is_nil() {
                Service::Nil
            } else if !body.uses_decl(&d) {
                body
            } else {
                Service::Delim(d, Arc::new(body))
            }
        }
        Service::Protect(body) => {
            let body = normalize((*body).clone());
            if body.is_nil() {
                Service::Nil
            } else {
                Service::Protect(Arc::new(body))
            }
        }
        Service::Repl(body) => {
            let body = normalize((*body).clone());
            if body.is_nil() {
                Service::Nil
            } else {
                Service::Repl(Arc::new(body))
            }
        }
    }
}

fn flatten_parallel(children: Vec<Service>, out: &mut Vec<Service>) {
    for c in children {
        match normalize(c) {
            Service::Nil => {}
            Service::Parallel(grand) => {
                // Already normalized (flat, sorted, non-nil).
                out.extend(grand);
            }
            other => out.push(other),
        }
    }
}

/// Apply the `halt` function of the COWS kill semantics: terminate every
/// non-protected activity, preserving `{|s|}` blocks (and descending through
/// delimiters and parallel compositions).
///
/// `halt` is applied to the *siblings* of an executing `kill(k)` by the
/// parallel rule in [`crate::semantics`].
pub fn halt(s: &Service) -> Service {
    match s {
        Service::Protect(body) => Service::Protect(body.clone()),
        Service::Parallel(ps) => Service::Parallel(ps.iter().map(halt).collect()),
        Service::Delim(d, body) => Service::Delim(*d, Arc::new(halt(body))),
        _ => Service::Nil,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{
        choice, delim_killer, delim_var, ep, invoke, kill, par, protect, repl, request, Request,
        Service, Word,
    };

    #[test]
    fn parallel_flattens_and_sorts() {
        let a = invoke(ep("P", "A"));
        let b = invoke(ep("P", "B"));
        let left = normalize(par(vec![a.clone(), par(vec![b.clone(), Service::Nil])]));
        let right = normalize(par(vec![par(vec![b, Service::Nil]), a]));
        assert_eq!(left, right);
    }

    #[test]
    fn empty_parallel_is_nil() {
        assert_eq!(
            normalize(par(vec![Service::Nil, choice(vec![])])),
            Service::Nil
        );
    }

    #[test]
    fn singleton_parallel_unwraps() {
        let a = invoke(ep("P", "A"));
        assert_eq!(normalize(par(vec![a.clone(), Service::Nil])), a);
    }

    #[test]
    fn unused_delimiter_is_dropped() {
        let body = invoke(ep("P", "A"));
        assert_eq!(normalize(delim_killer("k", body.clone())), body);
    }

    #[test]
    fn used_delimiter_is_kept() {
        let s = delim_killer("k", par(vec![kill("k"), invoke(ep("P", "A"))]));
        let n = normalize(s);
        assert!(matches!(n, Service::Delim(_, _)));
    }

    #[test]
    fn dead_bodies_collapse() {
        assert_eq!(normalize(protect(Service::Nil)), Service::Nil);
        assert_eq!(normalize(repl(Service::Nil)), Service::Nil);
        assert_eq!(normalize(delim_var("x", Service::Nil)), Service::Nil);
    }

    #[test]
    fn guard_branches_sorted() {
        let b1 = Request {
            ep: ep("P", "B"),
            params: vec![],
            cont: Service::Nil.into(),
        };
        let b2 = Request {
            ep: ep("P", "A"),
            params: vec![Word::name("n")],
            cont: Service::Nil.into(),
        };
        let left = normalize(choice(vec![b1.clone(), b2.clone()]));
        let right = normalize(choice(vec![b2, b1]));
        assert_eq!(left, right);
    }

    #[test]
    fn normalization_is_idempotent() {
        let s = par(vec![
            repl(request(ep("P", "T"), invoke(ep("P", "E")))),
            delim_killer("k", par(vec![kill("k"), protect(invoke(ep("P", "T1")))])),
            invoke(ep("P", "T")),
        ]);
        let once = normalize(s);
        let twice = normalize(once.clone());
        assert_eq!(once, twice);
    }

    #[test]
    fn halt_preserves_protection_only() {
        let s = par(vec![
            protect(invoke(ep("P", "T1"))),
            invoke(ep("P", "T2")),
            request(ep("P", "T3"), Service::Nil),
        ]);
        let halted = normalize(halt(&s));
        assert_eq!(halted, protect(invoke(ep("P", "T1"))));
    }

    #[test]
    fn halt_descends_delimiters() {
        let s = delim_var("x", par(vec![protect(invoke(ep("P", "T1"))), kill("q")]));
        let halted = normalize(halt(&s));
        assert_eq!(halted, protect(invoke(ep("P", "T1"))));
    }
}
