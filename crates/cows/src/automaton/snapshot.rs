//! On-disk snapshots of a compiled [`ProcessAutomaton`].
//!
//! PR 1 compiled the observable LTS lazily, but every `purposectl`
//! invocation rebuilt it from scratch: short-lived CLI runs and cold
//! auditors paid the full COWS term-rewriting cost Algorithm 1 was supposed
//! to amortize. This module persists the compilation — the interned
//! [`Marked`] states, the `(Observation, StateId)` edge tables and the
//! quiescence/token-task caches — in a versioned, checksummed binary format
//! so the next run starts warm.
//!
//! ## Format (version 1)
//!
//! ```text
//! offset size  field
//!      0    4  magic  b"PCAS"
//!      4    4  format version (u32 LE)
//!      8    8  process key (u64 LE) — stable content hash of the encoded
//!              process + observability, computed by the owner (bpmn)
//!     16    8  payload length (u64 LE)
//!     24    8  payload checksum (FNV-1a 64, u64 LE)
//!     32    …  payload
//! ```
//!
//! The payload is: a local symbol table (symbols are stored as strings once
//! and referenced by dense `u32` index — interner indices are run-local and
//! never persisted), the state list (each state a COWS term plus its
//! `running` set), the interned initial state, then per-state edge tables,
//! quiescence bits and token-task caches.
//!
//! ## Run-independence
//!
//! Canonical normal forms and `weak_next`'s successor order both depend on
//! [`Symbol`] ordering, which is interner-index order — a property of the
//! *run*, not of the process. A snapshot written by one process would
//! therefore deserialize into terms that are congruent to, but not equal
//! to, the loading run's canonical states. The loader repairs this by
//! construction: every decoded state is re-normalized under the current
//! run's ordering, and every edge table is re-sorted with exactly the
//! comparator `weak_next` uses. After a merge, the automaton is
//! indistinguishable from one warmed by replay in this run.
//!
//! ## Fail-open
//!
//! Decoding is strictly fail-open: a bad magic, version or key mismatch,
//! truncation, checksum failure or malformed payload returns a typed
//! [`SnapshotError`] and leaves the automaton untouched — no panic, no
//! partial load. Callers fall back to cold compilation and log the reason.

use super::{ProcessAutomaton, StateId};
use crate::normal::normalize;
use crate::observe::Observation;
use crate::symbol::Symbol;
use crate::term::{Decl, Endpoint, Guard, Invoke, Request, Service, Word};
use crate::weaknext::{Marked, TaskInstance};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// The four magic bytes opening every snapshot.
pub const MAGIC: [u8; 4] = *b"PCAS";

/// Current format version. Bump deliberately on any layout change — the
/// golden-fixture test exists to force that deliberation.
pub const FORMAT_VERSION: u32 = 1;

/// Header size in bytes (magic + version + key + payload length + checksum).
pub const HEADER_LEN: usize = 32;

/// Decode recursion guard: deeper terms than this are rejected as malformed
/// rather than risking a stack overflow on hostile input.
const MAX_TERM_DEPTH: usize = 4_096;

/// Why a snapshot could not be loaded. Every variant is a cold-start
/// fallback reason, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not [`FORMAT_VERSION`].
    VersionMismatch { found: u32, expected: u32 },
    /// The snapshot was written for a different process (or observability).
    KeyMismatch { found: u64, expected: u64 },
    /// The byte stream ends before the declared payload does.
    Truncated,
    /// The payload bytes do not hash to the stored checksum.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// The payload decoded inconsistently (bad tag, index out of range, …).
    Malformed(&'static str),
    /// The snapshot file could not be read or written.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an automaton snapshot (bad magic)"),
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot format v{found}, this build reads v{expected}")
            }
            SnapshotError::KeyMismatch { found, expected } => write!(
                f,
                "snapshot keyed to a different process \
                 (key {found:#018x}, expected {expected:#018x})"
            ),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot payload corrupted \
                 (checksum {computed:#018x}, header says {stored:#018x})"
            ),
            SnapshotError::Malformed(what) => write!(f, "snapshot payload malformed: {what}"),
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// Stable hashing (process keys)
// ---------------------------------------------------------------------------

/// FNV-1a 64 — a byte-stream hash whose value depends only on the bytes
/// fed, never on interner state or process layout. Used both for snapshot
/// checksums and for the content keys that make stale snapshots
/// self-invalidate.
#[derive(Clone, Copy, Debug)]
pub struct StableHasher(u64);

impl StableHasher {
    pub fn new() -> StableHasher {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Length-prefixed, so `("ab", "c")` and `("a", "bc")` hash apart.
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write(s.as_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

fn hash_word(h: &mut StableHasher, w: &Word) {
    match w {
        Word::Name(s) => {
            h.write_u8(0);
            h.write_str(s.as_str());
        }
        Word::Var(s) => {
            h.write_u8(1);
            h.write_str(s.as_str());
        }
    }
}

fn hash_endpoint(h: &mut StableHasher, e: &Endpoint) {
    h.write_str(e.partner.as_str());
    h.write_str(e.op.as_str());
}

/// Feed a structural, interner-independent encoding of `s` into `h`.
/// Symbols are hashed as their strings, so two runs that interned the same
/// process in different orders produce the same key.
pub fn hash_service(h: &mut StableHasher, s: &Service) {
    match s {
        Service::Nil => h.write_u8(0),
        Service::Invoke(i) => {
            h.write_u8(1);
            hash_endpoint(h, &i.ep);
            h.write_u32(i.args.len() as u32);
            for w in &i.args {
                hash_word(h, w);
            }
            h.write_u32(i.completes.len() as u32);
            for e in &i.completes {
                hash_endpoint(h, e);
            }
        }
        Service::Guarded(g) => {
            h.write_u8(2);
            h.write_u32(g.branches.len() as u32);
            for b in &g.branches {
                hash_endpoint(h, &b.ep);
                h.write_u32(b.params.len() as u32);
                for w in &b.params {
                    hash_word(h, w);
                }
                hash_service(h, &b.cont);
            }
        }
        Service::Parallel(ps) => {
            h.write_u8(3);
            h.write_u32(ps.len() as u32);
            for p in ps {
                hash_service(h, p);
            }
        }
        Service::Delim(d, body) => {
            h.write_u8(4);
            match d {
                Decl::Name(n) => {
                    h.write_u8(0);
                    h.write_str(n.as_str());
                }
                Decl::Var(v) => {
                    h.write_u8(1);
                    h.write_str(v.as_str());
                }
                Decl::Killer(k) => {
                    h.write_u8(2);
                    h.write_str(k.as_str());
                }
            }
            hash_service(h, body);
        }
        Service::Protect(body) => {
            h.write_u8(5);
            hash_service(h, body);
        }
        Service::Kill(k) => {
            h.write_u8(6);
            h.write_str(k.as_str());
        }
        Service::Repl(body) => {
            h.write_u8(7);
            hash_service(h, body);
        }
    }
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// Payload writer with a local symbol table: each distinct symbol string is
/// written once; every use is a dense `u32` index.
struct Encoder {
    body: Vec<u8>,
    table: Vec<Symbol>,
    index: std::collections::HashMap<Symbol, u32>,
}

impl Encoder {
    fn new() -> Encoder {
        Encoder {
            body: Vec::new(),
            table: Vec::new(),
            index: std::collections::HashMap::new(),
        }
    }

    fn put_u8(&mut self, v: u8) {
        self.body.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.body.extend_from_slice(&v.to_le_bytes());
    }

    fn put_len(&mut self, n: usize) {
        self.put_u32(u32::try_from(n).expect("snapshot collection fits u32"));
    }

    fn put_sym(&mut self, s: Symbol) {
        let next = self.table.len() as u32;
        let id = *self.index.entry(s).or_insert_with(|| {
            self.table.push(s);
            next
        });
        self.put_u32(id);
    }

    fn put_word(&mut self, w: &Word) {
        match w {
            Word::Name(s) => {
                self.put_u8(0);
                self.put_sym(*s);
            }
            Word::Var(s) => {
                self.put_u8(1);
                self.put_sym(*s);
            }
        }
    }

    fn put_endpoint(&mut self, e: &Endpoint) {
        self.put_sym(e.partner);
        self.put_sym(e.op);
    }

    fn put_service(&mut self, s: &Service) {
        match s {
            Service::Nil => self.put_u8(0),
            Service::Invoke(i) => {
                self.put_u8(1);
                self.put_endpoint(&i.ep);
                self.put_len(i.args.len());
                for w in &i.args {
                    self.put_word(w);
                }
                self.put_len(i.completes.len());
                for e in &i.completes {
                    self.put_endpoint(e);
                }
            }
            Service::Guarded(g) => {
                self.put_u8(2);
                self.put_len(g.branches.len());
                for b in &g.branches {
                    self.put_endpoint(&b.ep);
                    self.put_len(b.params.len());
                    for w in &b.params {
                        self.put_word(w);
                    }
                    self.put_service(&b.cont);
                }
            }
            Service::Parallel(ps) => {
                self.put_u8(3);
                self.put_len(ps.len());
                for p in ps {
                    self.put_service(p);
                }
            }
            Service::Delim(d, body) => {
                self.put_u8(4);
                match d {
                    Decl::Name(n) => {
                        self.put_u8(0);
                        self.put_sym(*n);
                    }
                    Decl::Var(v) => {
                        self.put_u8(1);
                        self.put_sym(*v);
                    }
                    Decl::Killer(k) => {
                        self.put_u8(2);
                        self.put_sym(*k);
                    }
                }
                self.put_service(body);
            }
            Service::Protect(body) => {
                self.put_u8(5);
                self.put_service(body);
            }
            Service::Kill(k) => {
                self.put_u8(6);
                self.put_sym(*k);
            }
            Service::Repl(body) => {
                self.put_u8(7);
                self.put_service(body);
            }
        }
    }

    fn put_task_set(&mut self, tasks: &BTreeSet<TaskInstance>) {
        self.put_len(tasks.len());
        for &(r, q) in tasks {
            self.put_sym(r);
            self.put_sym(q);
        }
    }

    /// Assemble the payload: symbol table first (it was filled while the
    /// body was written), then the body.
    fn into_payload(self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.body.len() + 16 * self.table.len());
        payload.extend_from_slice(&(self.table.len() as u32).to_le_bytes());
        for s in &self.table {
            let text = s.as_str();
            payload.extend_from_slice(&(text.len() as u32).to_le_bytes());
            payload.extend_from_slice(text.as_bytes());
        }
        payload.extend_from_slice(&self.body);
        payload
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Decoder<'b> {
    bytes: &'b [u8],
    pos: usize,
    table: Vec<Symbol>,
}

impl<'b> Decoder<'b> {
    fn take(&mut self, n: usize) -> Result<&'b [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// A collection length; bounded by the bytes that remain so a corrupt
    /// count cannot trigger a huge allocation.
    fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.get_u32()? as usize;
        if n > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    fn get_sym(&mut self) -> Result<Symbol, SnapshotError> {
        let id = self.get_u32()? as usize;
        self.table
            .get(id)
            .copied()
            .ok_or(SnapshotError::Malformed("symbol index out of range"))
    }

    fn get_word(&mut self) -> Result<Word, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(Word::Name(self.get_sym()?)),
            1 => Ok(Word::Var(self.get_sym()?)),
            _ => Err(SnapshotError::Malformed("bad word tag")),
        }
    }

    fn get_endpoint(&mut self) -> Result<Endpoint, SnapshotError> {
        Ok(Endpoint {
            partner: self.get_sym()?,
            op: self.get_sym()?,
        })
    }

    fn get_service(&mut self, depth: usize) -> Result<Service, SnapshotError> {
        if depth > MAX_TERM_DEPTH {
            return Err(SnapshotError::Malformed("term nested too deep"));
        }
        match self.get_u8()? {
            0 => Ok(Service::Nil),
            1 => {
                let ep = self.get_endpoint()?;
                let nargs = self.get_len()?;
                let args = (0..nargs)
                    .map(|_| self.get_word())
                    .collect::<Result<_, _>>()?;
                let ncompl = self.get_len()?;
                let completes = (0..ncompl)
                    .map(|_| self.get_endpoint())
                    .collect::<Result<_, _>>()?;
                Ok(Service::Invoke(Invoke {
                    ep,
                    args,
                    completes,
                }))
            }
            2 => {
                let n = self.get_len()?;
                let mut branches = Vec::with_capacity(n);
                for _ in 0..n {
                    let ep = self.get_endpoint()?;
                    let nparams = self.get_len()?;
                    let params = (0..nparams)
                        .map(|_| self.get_word())
                        .collect::<Result<_, _>>()?;
                    let cont = Arc::new(self.get_service(depth + 1)?);
                    branches.push(Request { ep, params, cont });
                }
                Ok(Service::Guarded(Guard { branches }))
            }
            3 => {
                let n = self.get_len()?;
                let children = (0..n)
                    .map(|_| self.get_service(depth + 1))
                    .collect::<Result<_, _>>()?;
                Ok(Service::Parallel(children))
            }
            4 => {
                let decl = match self.get_u8()? {
                    0 => Decl::Name(self.get_sym()?),
                    1 => Decl::Var(self.get_sym()?),
                    2 => Decl::Killer(self.get_sym()?),
                    _ => return Err(SnapshotError::Malformed("bad decl tag")),
                };
                Ok(Service::Delim(decl, Arc::new(self.get_service(depth + 1)?)))
            }
            5 => Ok(Service::Protect(Arc::new(self.get_service(depth + 1)?))),
            6 => Ok(Service::Kill(self.get_sym()?)),
            7 => Ok(Service::Repl(Arc::new(self.get_service(depth + 1)?))),
            _ => Err(SnapshotError::Malformed("bad service tag")),
        }
    }

    fn get_task_set(&mut self) -> Result<BTreeSet<TaskInstance>, SnapshotError> {
        let n = self.get_len()?;
        let mut set = BTreeSet::new();
        for _ in 0..n {
            let r = self.get_sym()?;
            let q = self.get_sym()?;
            set.insert((r, q));
        }
        Ok(set)
    }
}

// ---------------------------------------------------------------------------
// Snapshot encode / decode
// ---------------------------------------------------------------------------

/// A decoded snapshot: states still in the writer's normal form, edge
/// targets still snapshot-local (re-normalization under the current
/// interner order and remapping to live [`StateId`]s happen in the merge).
#[derive(Debug)]
pub struct DecodedSnapshot {
    pub states: Vec<Marked>,
    pub initial: Option<u32>,
    pub edges: Vec<Option<Vec<(Observation, u32)>>>,
    pub silent: Vec<Option<bool>>,
    pub tokens: Vec<Option<BTreeSet<TaskInstance>>>,
}

/// What a merge changed, for the warm/cold stats surface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// States carried by the snapshot.
    pub snapshot_states: usize,
    /// Snapshot states that were not already interned.
    pub new_states: usize,
    /// Edge tables adopted (states the replay engine will never have to
    /// expand with `weak_next`).
    pub edges_loaded: usize,
    /// Quiescence bits adopted.
    pub silent_loaded: usize,
    /// Token-task annotations adopted.
    pub tokens_loaded: usize,
}

impl MergeReport {
    /// Whether the merge made the automaton warm (any edge table adopted).
    pub fn is_warm(&self) -> bool {
        self.edges_loaded > 0
    }
}

/// Serialize the automaton's current compilation, keyed by `key`.
///
/// The node table is append-only, so a consistent view is a clone of the
/// `Arc` list; an edge table compiled concurrently with the snapshot may
/// reference states interned after the clone and is skipped (it will be
/// recompiled on load — correctness over completeness).
pub fn encode_snapshot(auto: &ProcessAutomaton, key: u64) -> Vec<u8> {
    let nodes: Vec<Arc<super::Node>> = auto.nodes.read().clone();
    let n = nodes.len();
    let mut enc = Encoder::new();

    enc.put_len(n);
    for node in &nodes {
        enc.put_service(&node.state.service);
        enc.put_task_set(&node.state.running);
    }

    match auto.initial.get() {
        Some(&id) if (id as usize) < n => {
            enc.put_u8(1);
            enc.put_u32(id);
        }
        _ => enc.put_u8(0),
    }

    for node in &nodes {
        let edges = node.edges.read().clone();
        match edges {
            Some(list) if list.iter().all(|&(_, t)| (t as usize) < n) => {
                enc.put_u8(1);
                enc.put_len(list.len());
                for &(obs, target) in list.iter() {
                    match obs {
                        Observation::Task { role, task } => {
                            enc.put_u8(0);
                            enc.put_sym(role);
                            enc.put_sym(task);
                        }
                        Observation::Error => enc.put_u8(1),
                    }
                    enc.put_u32(target);
                }
            }
            _ => enc.put_u8(0),
        }
    }

    for node in &nodes {
        enc.put_u8(match *node.silent.read() {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }

    for node in &nodes {
        let tokens = node.tokens.read().clone();
        match tokens {
            Some(set) => {
                enc.put_u8(1);
                enc.put_task_set(&set);
            }
            None => enc.put_u8(0),
        }
    }

    let payload = enc.into_payload();
    let mut checksum = StableHasher::new();
    checksum.write(&payload);

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum.finish().to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validate the envelope and decode the payload. States keep the writer's
/// normal form here; re-normalization under this run's canonical ordering
/// happens in the merge (see the module docs). Nothing is interned into
/// any automaton yet.
pub fn decode_snapshot(bytes: &[u8], expected_key: u64) -> Result<DecodedSnapshot, SnapshotError> {
    if bytes.len() < HEADER_LEN {
        if bytes.len() >= 4 && bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let key = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if key != expected_key {
        return Err(SnapshotError::KeyMismatch {
            found: key,
            expected: expected_key,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
    let stored_checksum = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() < payload_len {
        return Err(SnapshotError::Truncated);
    }
    if payload.len() > payload_len {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    let mut checksum = StableHasher::new();
    checksum.write(payload);
    let computed = checksum.finish();
    if computed != stored_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }

    // Symbol table.
    let mut d = Decoder {
        bytes: payload,
        pos: 0,
        table: Vec::new(),
    };
    let nsyms = d.get_len()?;
    for _ in 0..nsyms {
        let len = d.get_len()?;
        let raw = d.take(len)?;
        let text = std::str::from_utf8(raw)
            .map_err(|_| SnapshotError::Malformed("symbol is not utf-8"))?;
        d.table.push(Symbol::new(text));
    }

    // States, still in the writer's normal form; the merge re-normalizes
    // them under this run's symbol order (in parallel — see `intern_all`).
    let nstates = d.get_len()?;
    let mut states = Vec::with_capacity(nstates);
    for _ in 0..nstates {
        let service = d.get_service(0)?;
        let running = d.get_task_set()?;
        states.push(Marked { service, running });
    }

    let initial = match d.get_u8()? {
        0 => None,
        1 => {
            let id = d.get_u32()?;
            if id as usize >= nstates {
                return Err(SnapshotError::Malformed("initial state out of range"));
            }
            Some(id)
        }
        _ => return Err(SnapshotError::Malformed("bad initial flag")),
    };

    let mut edges = Vec::with_capacity(nstates);
    for _ in 0..nstates {
        match d.get_u8()? {
            0 => edges.push(None),
            1 => {
                let n = d.get_len()?;
                let mut list = Vec::with_capacity(n);
                for _ in 0..n {
                    let obs = match d.get_u8()? {
                        0 => Observation::Task {
                            role: d.get_sym()?,
                            task: d.get_sym()?,
                        },
                        1 => Observation::Error,
                        _ => return Err(SnapshotError::Malformed("bad observation tag")),
                    };
                    let target = d.get_u32()?;
                    if target as usize >= nstates {
                        return Err(SnapshotError::Malformed("edge target out of range"));
                    }
                    list.push((obs, target));
                }
                edges.push(Some(list));
            }
            _ => return Err(SnapshotError::Malformed("bad edges flag")),
        }
    }

    let mut silent = Vec::with_capacity(nstates);
    for _ in 0..nstates {
        silent.push(match d.get_u8()? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            _ => return Err(SnapshotError::Malformed("bad quiescence flag")),
        });
    }

    let mut tokens = Vec::with_capacity(nstates);
    for _ in 0..nstates {
        tokens.push(match d.get_u8()? {
            0 => None,
            1 => Some(d.get_task_set()?),
            _ => return Err(SnapshotError::Malformed("bad tokens flag")),
        });
    }

    if d.pos != payload.len() {
        return Err(SnapshotError::Malformed("payload has unread bytes"));
    }

    Ok(DecodedSnapshot {
        states,
        initial,
        edges,
        silent,
        tokens,
    })
}

/// Merge a decoded snapshot into a live automaton under its sharded locks.
///
/// States are interned (deduplicating against anything already live), edge
/// targets are remapped to live ids, and every adopted edge table is
/// re-sorted with `weak_next`'s comparator under this run's symbol order so
/// the warm automaton is bit-identical to a cold-compiled one. Existing
/// compiled entries always win over snapshot entries (they are equal by
/// construction; skipping the store avoids pointless churn).
pub fn merge_snapshot(auto: &ProcessAutomaton, snap: DecodedSnapshot) -> MergeReport {
    let mut report = MergeReport {
        snapshot_states: snap.states.len(),
        ..MergeReport::default()
    };

    let before = auto.len();
    let map = intern_all(auto, snap.states);
    report.new_states = auto.len() - before;

    if let Some(i) = snap.initial {
        auto.initial.get_or_init(|| map[i as usize]);
    }

    for (i, entry) in snap.edges.into_iter().enumerate() {
        let Some(list) = entry else { continue };
        let node = auto.node(map[i]);
        if node.edges.read().is_some() {
            continue;
        }
        // Remap, then re-sort in the current run's `weak_next` order:
        // (observation, running, service) over the *target* states.
        let mut remapped: Vec<(Observation, StateId, Arc<Marked>)> = list
            .into_iter()
            .map(|(obs, t)| {
                let id = map[t as usize];
                (obs, id, auto.state(id))
            })
            .collect();
        remapped.sort_by(|a, b| {
            (a.0, &a.2.running, &a.2.service).cmp(&(b.0, &b.2.running, &b.2.service))
        });
        remapped.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        let edges: super::Edges =
            Arc::new(remapped.into_iter().map(|(o, id, _)| (o, id)).collect());
        let mut wr = node.edges.write();
        if wr.is_none() {
            *wr = Some(edges);
            report.edges_loaded += 1;
        }
    }

    for (i, entry) in snap.silent.into_iter().enumerate() {
        let Some(v) = entry else { continue };
        let node = auto.node(map[i]);
        let mut wr = node.silent.write();
        if wr.is_none() {
            *wr = Some(v);
            report.silent_loaded += 1;
        }
    }

    for (i, entry) in snap.tokens.into_iter().enumerate() {
        let Some(set) = entry else { continue };
        let node = auto.node(map[i]);
        let mut wr = node.tokens.write();
        if wr.is_none() {
            *wr = Some(Arc::new(set));
            report.tokens_loaded += 1;
        }
    }

    auto.loaded_states.fetch_add(
        report.new_states as u64,
        std::sync::atomic::Ordering::Relaxed,
    );
    auto.loaded_edges.fetch_add(
        report.edges_loaded as u64,
        std::sync::atomic::Ordering::Relaxed,
    );
    report
}

/// Re-normalize and intern every snapshot state, preserving snapshot order
/// in the returned id map.
///
/// Normalization under this run's symbol order plus the deep hashing that
/// interning performs dominate warm-start time, and every state is
/// independent, so large batches are split across scoped threads. The
/// intern maps are sharded and thread-safe, and state ids are arbitrary
/// handles (edges resolve through the returned map, replay never orders by
/// id), so concurrent id assignment is safe.
fn intern_all(auto: &ProcessAutomaton, states: Vec<Marked>) -> Vec<StateId> {
    let renorm = |m: Marked| Marked {
        service: normalize(m.service),
        running: m.running,
    };
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(8);
    if workers < 2 || states.len() < 16 {
        return states.into_iter().map(|m| auto.intern(renorm(m))).collect();
    }
    let chunk = states.len().div_ceil(workers);
    let mut chunks: Vec<Vec<Marked>> = Vec::with_capacity(workers);
    let mut it = states.into_iter();
    loop {
        let c: Vec<Marked> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                s.spawn(move || {
                    c.into_iter()
                        .map(|m| auto.intern(renorm(m)))
                        .collect::<Vec<StateId>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("intern worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Reusable state codec (live-session checkpoints)
// ---------------------------------------------------------------------------

/// Payload writer for consumers outside this module that persist [`Marked`]
/// states — live-session checkpoints reuse the snapshot's symbol-table
/// framing and term encoding instead of inventing a second binary format.
/// Strings written with [`put_str`] land inline in the body; symbols go
/// through the deduplicating table exactly as in a `.pcas` payload.
///
/// [`put_str`]: StateEncoder::put_str
pub struct StateEncoder(Encoder);

impl StateEncoder {
    pub fn new() -> StateEncoder {
        StateEncoder(Encoder::new())
    }

    pub fn put_u8(&mut self, v: u8) {
        self.0.put_u8(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.0.put_u32(v);
    }

    pub fn put_u64(&mut self, v: u64) {
        self.0.body.extend_from_slice(&v.to_le_bytes());
    }

    /// A collection length (`u32`, checked).
    pub fn put_len(&mut self, n: usize) {
        self.0.put_len(n);
    }

    pub fn put_sym(&mut self, s: Symbol) {
        self.0.put_sym(s);
    }

    /// A free-form string, length-prefixed, inline in the body (not
    /// interned — use [`StateEncoder::put_sym`] for repeated identifiers).
    pub fn put_str(&mut self, s: &str) {
        self.0.put_len(s.len());
        self.0.body.extend_from_slice(s.as_bytes());
    }

    /// One marked state: the COWS term plus its running-task set.
    pub fn put_state(&mut self, m: &Marked) {
        self.0.put_service(&m.service);
        self.0.put_task_set(&m.running);
    }

    /// Assemble the payload (symbol table first, then the body).
    pub fn into_payload(self) -> Vec<u8> {
        self.0.into_payload()
    }
}

impl Default for StateEncoder {
    fn default() -> Self {
        StateEncoder::new()
    }
}

/// Payload reader matching [`StateEncoder`]. Construction consumes the
/// symbol table; every getter is fail-open (typed [`SnapshotError`], never
/// a panic) and decoded states are re-normalized under the *current* run's
/// symbol order, so callers always receive canonical terms (the same
/// repair [`merge_snapshot`] applies — see the module docs on
/// run-independence).
pub struct StateDecoder<'b>(Decoder<'b>);

impl<'b> StateDecoder<'b> {
    pub fn new(payload: &'b [u8]) -> Result<StateDecoder<'b>, SnapshotError> {
        let mut d = Decoder {
            bytes: payload,
            pos: 0,
            table: Vec::new(),
        };
        let nsyms = d.get_len()?;
        for _ in 0..nsyms {
            let len = d.get_len()?;
            let raw = d.take(len)?;
            let text = std::str::from_utf8(raw)
                .map_err(|_| SnapshotError::Malformed("symbol is not utf-8"))?;
            d.table.push(Symbol::new(text));
        }
        Ok(StateDecoder(d))
    }

    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        self.0.get_u8()
    }

    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        self.0.get_u32()
    }

    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.0.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        self.0.get_len()
    }

    pub fn get_sym(&mut self) -> Result<Symbol, SnapshotError> {
        self.0.get_sym()
    }

    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let len = self.0.get_len()?;
        let raw = self.0.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| SnapshotError::Malformed("string is not utf-8"))
    }

    /// One marked state, re-normalized under this run's symbol order.
    pub fn get_state(&mut self) -> Result<Marked, SnapshotError> {
        let service = self.0.get_service(0)?;
        let running = self.0.get_task_set()?;
        Ok(Marked {
            service: normalize(service),
            running,
        })
    }

    /// Bytes consumed so far (symbol table included) — for callers that
    /// frame raw sub-payloads after a decoded section.
    pub fn consumed_bytes(&self) -> usize {
        self.0.pos
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.0.pos != self.0.bytes.len() {
            return Err(SnapshotError::Malformed("payload has unread bytes"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::TaskObservability;
    use crate::symbol::sym;
    use crate::term::{ep, invoke, par, request};
    use crate::weaknext::{weak_next, WeakNextLimits};

    fn obs(roles: &[&str], tasks: &[&str]) -> TaskObservability {
        TaskObservability::with(roles.iter().map(|r| sym(r)), tasks.iter().map(|t| sym(t)))
    }

    /// A then (B or C): multiple edges out of one state, so order matters.
    fn branchy() -> Service {
        par(vec![
            invoke(ep("P", "A")),
            request(
                ep("P", "A"),
                par(vec![invoke(ep("P", "B")), invoke(ep("P", "C"))]),
            ),
            request(ep("P", "B"), Service::Nil),
            request(ep("P", "C"), Service::Nil),
        ])
    }

    fn warmed() -> (ProcessAutomaton, TaskObservability) {
        let auto = ProcessAutomaton::new();
        let o = obs(&["P"], &["A", "B", "C"]);
        let limits = WeakNextLimits::default();
        let s = branchy();
        let id = auto.initial_id(&s);
        let mut frontier = vec![id];
        while let Some(next) = frontier.pop() {
            for &(_, t) in auto.successors(next, &o, limits).unwrap().iter() {
                if auto.cached_edges(t).is_none() {
                    frontier.push(t);
                }
            }
            auto.can_quiesce(next, &o, limits).unwrap();
            auto.token_tasks(next, &o);
        }
        (auto, o)
    }

    #[test]
    fn round_trip_preserves_states_edges_and_caches() {
        let (auto, o) = warmed();
        let bytes = encode_snapshot(&auto, 7);
        let fresh = ProcessAutomaton::new();
        let report = merge_snapshot(&fresh, decode_snapshot(&bytes, 7).unwrap());
        assert_eq!(report.snapshot_states, auto.len());
        assert_eq!(report.new_states, auto.len());
        assert_eq!(report.edges_loaded, auto.stats().expanded);
        assert!(report.is_warm());

        // Warm lookups on the fresh automaton never run weak_next and agree
        // with a direct computation, edge order included.
        let limits = WeakNextLimits::default();
        let id = fresh.initial_id(&branchy());
        let edges = fresh.successors(id, &o, limits).unwrap();
        let direct = weak_next(&Marked::initial(&branchy()), &o, limits).unwrap();
        assert_eq!(edges.len(), direct.len());
        for (edge, succ) in edges.iter().zip(&direct) {
            assert_eq!(edge.0, succ.observation);
            assert_eq!(*fresh.state(edge.1), succ.state);
        }
        assert_eq!(fresh.stats().edge_misses, 0);
        assert_eq!(fresh.stats().loaded_states as usize, auto.len());
    }

    #[test]
    fn merge_into_warm_automaton_is_idempotent() {
        let (auto, _) = warmed();
        let bytes = encode_snapshot(&auto, 7);
        let before = auto.stats();
        let report = merge_snapshot(&auto, decode_snapshot(&bytes, 7).unwrap());
        assert_eq!(report.new_states, 0);
        assert_eq!(report.edges_loaded, 0);
        let after = auto.stats();
        assert_eq!(before.states, after.states);
        assert_eq!(before.expanded, after.expanded);
    }

    #[test]
    fn key_mismatch_is_rejected_before_decode() {
        let (auto, _) = warmed();
        let bytes = encode_snapshot(&auto, 7);
        assert_eq!(
            decode_snapshot(&bytes, 8).unwrap_err(),
            SnapshotError::KeyMismatch {
                found: 7,
                expected: 8
            }
        );
    }

    #[test]
    fn every_truncation_point_is_fail_open() {
        let (auto, _) = warmed();
        let bytes = encode_snapshot(&auto, 7);
        for len in 0..bytes.len() {
            let err = decode_snapshot(&bytes[..len], 7).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::ChecksumMismatch { .. }
                ),
                "prefix of {len} bytes: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_version_and_checksum_are_typed() {
        let (auto, _) = warmed();
        let good = encode_snapshot(&auto, 7);

        let mut magic = good.clone();
        magic[0] ^= 0xff;
        assert_eq!(
            decode_snapshot(&magic, 7).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut version = good.clone();
        version[4] = version[4].wrapping_add(1);
        assert!(matches!(
            decode_snapshot(&version, 7).unwrap_err(),
            SnapshotError::VersionMismatch {
                expected: FORMAT_VERSION,
                ..
            }
        ));

        let mut flipped = good.clone();
        let mid = HEADER_LEN + (good.len() - HEADER_LEN) / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            decode_snapshot(&flipped, 7).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            decode_snapshot(&trailing, 7).unwrap_err(),
            SnapshotError::Malformed("trailing bytes after payload")
        );
    }

    #[test]
    fn stable_hash_is_interner_independent() {
        // Same structural term hashed via different (but same-named)
        // symbols gives the same key; different structure differs.
        let a = branchy();
        let mut h1 = StableHasher::new();
        hash_service(&mut h1, &a);
        let mut h2 = StableHasher::new();
        hash_service(&mut h2, &branchy());
        assert_eq!(h1.finish(), h2.finish());

        let mut h3 = StableHasher::new();
        hash_service(&mut h3, &invoke(ep("P", "A")));
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn state_codec_round_trips_scalars_and_states() {
        let state = Marked {
            service: normalize(branchy()),
            running: [(sym("P"), sym("A")), (sym("P"), sym("B"))]
                .into_iter()
                .collect(),
        };
        let mut enc = StateEncoder::new();
        enc.put_u8(3);
        enc.put_u32(0xdead_beef);
        enc.put_u64(0x0123_4567_89ab_cdef);
        enc.put_str("HT-7 café"); // non-ascii exercises utf-8 handling
        enc.put_sym(sym("treatment"));
        enc.put_sym(sym("treatment")); // second use: table index, not a copy
        enc.put_state(&state);
        let payload = enc.into_payload();

        let mut dec = StateDecoder::new(&payload).unwrap();
        assert_eq!(dec.get_u8().unwrap(), 3);
        assert_eq!(dec.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(dec.get_str().unwrap(), "HT-7 café");
        assert_eq!(dec.get_sym().unwrap(), sym("treatment"));
        assert_eq!(dec.get_sym().unwrap(), sym("treatment"));
        assert_eq!(dec.get_state().unwrap(), state);
        dec.finish().unwrap();

        // Trailing garbage is caught, truncation is fail-open.
        let mut longer = payload.clone();
        longer.push(0);
        let mut dec = StateDecoder::new(&longer).unwrap();
        while dec.get_u8().is_ok() {}
        for len in 0..payload.len() {
            let mut dec = match StateDecoder::new(&payload[..len]) {
                Ok(d) => d,
                Err(_) => continue,
            };
            let r = (|| -> Result<(), SnapshotError> {
                dec.get_u8()?;
                dec.get_u32()?;
                dec.get_u64()?;
                dec.get_str()?;
                dec.get_sym()?;
                dec.get_sym()?;
                dec.get_state()?;
                dec.finish()
            })();
            assert!(r.is_err(), "truncation to {len} bytes must not decode");
        }
    }
}
