//! Struct-of-arrays configuration-set frontiers.
//!
//! A replay session's live configuration set is a small ordered list of
//! interned [`StateId`]s. Cross-case prefix sharing (the replay trie)
//! memoizes whole `configuration-set × observation → configuration-set`
//! transitions, which needs the configuration sets themselves interned:
//! [`FrontierTable`] stores each distinct set once as a dense `u32` row
//! (`Arc<[StateId]>`, order-preserving — set order is part of Algorithm 1's
//! observable behavior) and hands out stable [`FrontierId`]s to key the
//! transition cache on.
//!
//! [`DenseBitSet`] is the companion dedup structure: when a transition is
//! computed, successor ids are deduplicated in insertion order against a
//! bitset sized to the automaton (a few machine words for typical
//! processes) instead of a per-step `HashSet`.

use super::StateId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Index of an interned configuration-set row in a [`FrontierTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FrontierId(pub u32);

/// A fast, non-cryptographic hasher (FxHash-style multiply-rotate) for the
/// hot-path maps keyed on small integer tuples. The replay trie sits on the
/// per-entry path of every audited case; SipHash dominates the lookup cost
/// there for no benefit (keys are interner-issued ids, not attacker data).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Order-preserving interner of configuration-set rows.
///
/// Rows are dense `Arc<[StateId]>` slabs shared between the table, the
/// transition cache and the sessions holding them — interning a set that
/// already exists is a read-locked map probe, no allocation. The table is
/// append-only: a [`FrontierId`] stays valid for the table's lifetime, so
/// sessions can carry ids across transition-cache flushes.
#[derive(Debug, Default)]
pub struct FrontierTable {
    index: RwLock<HashMap<Arc<[StateId]>, u32, FxBuildHasher>>,
    rows: RwLock<Vec<Arc<[StateId]>>>,
    /// Approximate payload bytes across interned rows.
    bytes: AtomicUsize,
}

impl FrontierTable {
    pub fn new() -> FrontierTable {
        FrontierTable::default()
    }

    /// Intern `ids` (order-sensitive) and return its stable id. The row is
    /// stored once; later calls with an equal row are read-only.
    pub fn intern(&self, ids: &[StateId]) -> FrontierId {
        if let Some(&i) = self.index.read().get(ids) {
            return FrontierId(i);
        }
        let mut index = self.index.write();
        if let Some(&i) = index.get(ids) {
            return FrontierId(i);
        }
        let row: Arc<[StateId]> = ids.into();
        let mut rows = self.rows.write();
        let i = u32::try_from(rows.len()).expect("frontier table overflow");
        rows.push(row.clone());
        index.insert(row, i);
        self.bytes
            .fetch_add(std::mem::size_of_val(ids), Ordering::Relaxed);
        FrontierId(i)
    }

    /// The dense state row behind `id`.
    pub fn row(&self, id: FrontierId) -> Arc<[StateId]> {
        self.rows.read()[id.0 as usize].clone()
    }

    /// Number of distinct rows interned.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate payload bytes held by the interned rows.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// A growable bitset over [`StateId`]s for insertion-order dedup of
/// successor frontiers. Sized in 64-bit words; automata in this codebase
/// intern tens of states, so the whole set is a cache line.
#[derive(Debug, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
}

impl DenseBitSet {
    /// A bitset with room for ids `0..bits` without regrowing.
    pub fn with_capacity(bits: usize) -> DenseBitSet {
        DenseBitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Insert `bit`; returns `true` if it was not yet present (the
    /// `HashSet::insert` contract the dedup loops rely on).
    pub fn insert(&mut self, bit: StateId) -> bool {
        let word = (bit / 64) as usize;
        let mask = 1u64 << (bit % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Whether `bit` is present.
    pub fn contains(&self, bit: StateId) -> bool {
        let word = (bit / 64) as usize;
        self.words
            .get(word)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Clear all bits, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_order_sensitive() {
        let t = FrontierTable::new();
        let a = t.intern(&[1, 2, 3]);
        let b = t.intern(&[1, 2, 3]);
        let c = t.intern(&[3, 2, 1]);
        let empty = t.intern(&[]);
        assert_eq!(a, b, "equal rows share an id");
        assert_ne!(a, c, "order is part of the row identity");
        assert_eq!(t.row(a).as_ref(), &[1, 2, 3]);
        assert_eq!(t.row(c).as_ref(), &[3, 2, 1]);
        assert_eq!(t.row(empty).as_ref(), &[] as &[StateId]);
        assert_eq!(t.len(), 3);
        assert!(t.bytes() >= 6 * std::mem::size_of::<StateId>());
    }

    #[test]
    fn bitset_insert_reports_freshness_and_grows() {
        let mut s = DenseBitSet::with_capacity(8);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        // Growth past the initial capacity.
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        s.clear();
        assert!(!s.contains(3));
        assert!(s.insert(3));
    }
}
