//! Interned identifiers.
//!
//! COWS relies on three countable, pairwise-disjoint sets: *names*,
//! *variables* and *killer labels* (§3.3 of the paper). All three are drawn
//! from one global string interner; the syntactic category is recorded at the
//! point of use ([`crate::term::Word`], [`crate::term::Decl`]), not in the
//! identifier itself.
//!
//! Interning keeps services cheap to hash and compare, which matters because
//! LTS exploration deduplicates millions of structurally-congruent states.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned identifier (name, variable or killer label).
///
/// `Symbol`s are `Copy`, order-stable within a process run, and resolve back
/// to their string through the global interner.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    strings: Vec<&'static str>,
    lookup: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            strings: Vec::new(),
            lookup: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `text` and returns its symbol. Calling this twice with the
    /// same string returns the same symbol.
    pub fn new(text: &str) -> Symbol {
        {
            let rd = interner().read();
            if let Some(&id) = rd.lookup.get(text) {
                return Symbol(id);
            }
        }
        let mut wr = interner().write();
        if let Some(&id) = wr.lookup.get(text) {
            return Symbol(id);
        }
        let id = u32::try_from(wr.strings.len()).expect("interner overflow");
        // Leaking is fine: the set of identifiers in any workload is small
        // and bounded (BPMN element names), and leaking gives us `&'static`
        // keys without a self-referential struct.
        let owned: &'static str = Box::leak(text.to_owned().into_boxed_str());
        wr.strings.push(owned);
        wr.lookup.insert(owned, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }

    /// Raw interner index; stable within a process run only.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuild a symbol from its [`Symbol::index`]. Returns `None` for an
    /// index the interner never issued. Only meaningful within the run that
    /// produced the index — this exists for *in-memory* encodings (the
    /// live monitor's churn envelope), never for anything persisted.
    pub fn try_from_index(index: u32) -> Option<Symbol> {
        if index < Symbol::interned_len() {
            Some(Symbol(index))
        } else {
            None
        }
    }

    /// How many symbols the interner has issued so far. The interner only
    /// grows, so a decoder validating many indices can snapshot this once
    /// and check each against the bound via [`Symbol::from_index_below`]
    /// instead of taking the interner lock per symbol.
    pub fn interned_len() -> u32 {
        interner().read().strings.len() as u32
    }

    /// Lock-free [`Symbol::try_from_index`] against a caller-held
    /// [`Symbol::interned_len`] snapshot. Sound for any snapshot taken
    /// *after* the indices were issued: indices are never reused.
    pub fn from_index_below(index: u32, known: u32) -> Option<Symbol> {
        (index < known).then_some(Symbol(index))
    }
}

impl serde::Serialize for Symbol {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> serde::Deserialize<'de> for Symbol {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Symbol, D::Error> {
        let s = <&str as serde::Deserialize>::deserialize(deserializer)?;
        Ok(Symbol::new(s))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

/// Shorthand for [`Symbol::new`].
pub fn sym(text: &str) -> Symbol {
    Symbol::new(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = sym("T01");
        let b = sym("T01");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "T01");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(sym("alpha"), sym("beta"));
    }

    #[test]
    fn display_round_trips() {
        let s = sym("GP");
        assert_eq!(s.to_string(), "GP");
    }

    #[test]
    fn symbols_are_ordered_consistently() {
        let a = sym("zeta-order-test");
        let b = sym("alpha-order-test");
        // Ordering is by interner index, not lexicographic; it only needs to
        // be a total order stable within the run.
        assert_eq!(a.cmp(&b), a.index().cmp(&b.index()));
    }

    #[test]
    fn index_round_trips_within_a_run() {
        let s = sym("index-round-trip");
        assert_eq!(Symbol::try_from_index(s.index()), Some(s));
        assert_eq!(Symbol::try_from_index(u32::MAX), None);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| sym("concurrent-symbol")))
            .collect();
        let ids: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
