//! Transition labels.
//!
//! The label grammar of §3.3:
//!
//! ```text
//! l ::= (p·o) ▹ w̄   |   (p·o) ◃ w̄   |   p·o (v̄)   |   †k   |   †
//! ```
//!
//! Invoke (`▹`) and request (`◃`) labels describe the *potential* of an open
//! service to interact with an environment; only communication (`p·o (v̄)`,
//! rendered `p·o` when the exchange is a pure synchronization) and kill
//! labels describe steps of a closed system, and only those are followed by
//! the LTS explorer.

use crate::symbol::Symbol;
use crate::term::{Endpoint, Word};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transition label.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Label {
    /// `(p·o) ▹ v̄` — an invoke offered to the environment.
    Invoke {
        ep: Endpoint,
        args: Vec<Symbol>,
        /// Task-completion bookkeeping carried from [`crate::term::Invoke`].
        completes: Vec<Endpoint>,
    },
    /// `(p·o) ◃ w̄` — a request offered to the environment.
    Request { ep: Endpoint, params: Vec<Word> },
    /// `p·o (v̄)` — a communication; `p·o` when `args` is empty.
    Comm {
        ep: Endpoint,
        args: Vec<Symbol>,
        completes: Vec<Endpoint>,
    },
    /// `†k` — an ongoing kill, still propagating towards its delimiter.
    Kill(Symbol),
    /// `†` — an executed kill.
    KillExec,
}

impl Label {
    /// Whether the label is a closed-system step (communication or kill).
    pub fn is_closed(&self) -> bool {
        matches!(self, Label::Comm { .. } | Label::Kill(_) | Label::KillExec)
    }

    /// Endpoint of a communication label, if any.
    pub fn comm_endpoint(&self) -> Option<Endpoint> {
        match self {
            Label::Comm { ep, .. } => Some(*ep),
            _ => None,
        }
    }

    /// Tasks completed by this step (communications only).
    pub fn completed_tasks(&self) -> &[Endpoint] {
        match self {
            Label::Comm { completes, .. } | Label::Invoke { completes, .. } => completes,
            _ => &[],
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn args(f: &mut fmt::Formatter<'_>, xs: &[Symbol]) -> fmt::Result {
            if xs.is_empty() {
                return Ok(());
            }
            write!(f, "(")?;
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{x}")?;
            }
            write!(f, ")")
        }
        match self {
            Label::Invoke { ep, args: a, .. } => {
                write!(f, "{ep} |>")?;
                args(f, a)
            }
            Label::Request { ep, params } => {
                write!(f, "{ep} <|")?;
                if !params.is_empty() {
                    write!(f, "(")?;
                    for (i, w) in params.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{w}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Label::Comm { ep, args: a, .. } => {
                write!(f, "{ep}")?;
                args(f, a)
            }
            Label::Kill(k) => write!(f, "+k({k})"),
            Label::KillExec => write!(f, "+"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::ep;

    #[test]
    fn closed_labels() {
        let sync = Label::Comm {
            ep: ep("GP", "T01"),
            args: vec![],
            completes: vec![],
        };
        assert!(sync.is_closed());
        assert!(Label::KillExec.is_closed());
        assert!(!Label::Request {
            ep: ep("P", "O"),
            params: vec![]
        }
        .is_closed());
    }

    #[test]
    fn display_sync_matches_paper() {
        let sync = Label::Comm {
            ep: ep("GP", "T01"),
            args: vec![],
            completes: vec![],
        };
        assert_eq!(sync.to_string(), "GP.T01");
        let msg = Label::Comm {
            ep: ep("P2", "S3"),
            args: vec!["msg1".into()],
            completes: vec![],
        };
        assert_eq!(msg.to_string(), "P2.S3(msg1)");
    }

    #[test]
    fn comm_endpoint_accessor() {
        let sync = Label::Comm {
            ep: ep("C", "T06"),
            args: vec![],
            completes: vec![],
        };
        assert_eq!(sync.comm_endpoint(), Some(ep("C", "T06")));
        assert_eq!(Label::KillExec.comm_endpoint(), None);
    }
}
