//! Variable substitution.
//!
//! Communication `p·o!⟨v̄⟩ ‖ p·o?⟨w̄⟩.s` instantiates the variables of the
//! request pattern `w̄` with the corresponding values of `v̄` inside the
//! continuation `s`. Substitution respects shadowing by variable delimiters.

use crate::symbol::Symbol;
use crate::term::{Decl, Guard, Request, Service, Word};
use std::sync::Arc;

/// A (small) set of variable → value bindings produced by pattern matching.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings {
    pairs: Vec<(Symbol, Symbol)>,
}

impl Bindings {
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Record `var := value`. Returns `false` (match failure) if `var` is
    /// already bound to a different value — COWS patterns are linear in
    /// practice, but repeated variables must agree.
    pub fn bind(&mut self, var: Symbol, value: Symbol) -> bool {
        match self.pairs.iter().find(|(v, _)| *v == var) {
            Some((_, existing)) => *existing == value,
            None => {
                self.pairs.push((var, value));
                true
            }
        }
    }

    pub fn lookup(&self, var: Symbol) -> Option<Symbol> {
        self.pairs.iter().find(|(v, _)| *v == var).map(|(_, x)| *x)
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Symbol)> + '_ {
        self.pairs.iter().copied()
    }
}

/// Match a request pattern against invoke values.
///
/// Returns the induced bindings, or `None` if the shapes or names disagree.
pub fn match_pattern(params: &[Word], args: &[Symbol]) -> Option<Bindings> {
    if params.len() != args.len() {
        return None;
    }
    let mut b = Bindings::new();
    for (p, a) in params.iter().zip(args) {
        match p {
            Word::Name(n) => {
                if n != a {
                    return None;
                }
            }
            Word::Var(v) => {
                if !b.bind(*v, *a) {
                    return None;
                }
            }
        }
    }
    Some(b)
}

fn subst_word(w: Word, b: &Bindings) -> Word {
    match w {
        Word::Var(v) => match b.lookup(v) {
            Some(n) => Word::Name(n),
            None => Word::Var(v),
        },
        other => other,
    }
}

/// Apply `bindings` to `s`, respecting shadowing: occurrences under a
/// `[x]` delimiter for a bound variable `x` are left untouched.
pub fn substitute(s: &Service, bindings: &Bindings) -> Service {
    if bindings.is_empty() {
        return s.clone();
    }
    match s {
        Service::Nil => Service::Nil,
        Service::Kill(k) => Service::Kill(*k),
        Service::Invoke(i) => {
            let mut i = i.clone();
            for a in &mut i.args {
                *a = subst_word(*a, bindings);
            }
            Service::Invoke(i)
        }
        Service::Guarded(g) => Service::Guarded(Guard {
            branches: g
                .branches
                .iter()
                .map(|br| Request {
                    ep: br.ep,
                    params: br.params.iter().map(|w| subst_word(*w, bindings)).collect(),
                    cont: Arc::new(substitute(&br.cont, bindings)),
                })
                .collect(),
        }),
        Service::Parallel(ps) => {
            Service::Parallel(ps.iter().map(|p| substitute(p, bindings)).collect())
        }
        Service::Delim(d, body) => {
            if let Decl::Var(x) = d {
                if bindings.lookup(*x).is_some() {
                    // Shadowed: strip the shadowed binding.
                    let mut pruned = Bindings::new();
                    for (v, n) in bindings.iter() {
                        if v != *x {
                            pruned.bind(v, n);
                        }
                    }
                    return Service::Delim(*d, Arc::new(substitute(body, &pruned)));
                }
            }
            Service::Delim(*d, Arc::new(substitute(body, bindings)))
        }
        Service::Protect(body) => Service::Protect(Arc::new(substitute(body, bindings))),
        Service::Repl(body) => Service::Repl(Arc::new(substitute(body, bindings))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;
    use crate::term::{delim_var, ep, invoke_args, request_params, Service};

    #[test]
    fn match_empty_sync() {
        assert!(match_pattern(&[], &[]).unwrap().is_empty());
    }

    #[test]
    fn match_name_requires_equality() {
        let params = [Word::name("msg1")];
        assert!(match_pattern(&params, &[sym("msg1")]).is_some());
        assert!(match_pattern(&params, &[sym("msg2")]).is_none());
    }

    #[test]
    fn match_var_binds() {
        let z = sym("z");
        let b = match_pattern(&[Word::var(z)], &[sym("msg2")]).unwrap();
        assert_eq!(b.lookup(z), Some(sym("msg2")));
    }

    #[test]
    fn match_arity_mismatch_fails() {
        assert!(match_pattern(&[Word::var(sym("z"))], &[]).is_none());
    }

    #[test]
    fn repeated_var_must_agree() {
        let z = sym("z");
        assert!(match_pattern(&[Word::var(z), Word::var(z)], &[sym("a"), sym("a")]).is_some());
        assert!(match_pattern(&[Word::var(z), Word::var(z)], &[sym("a"), sym("b")]).is_none());
    }

    #[test]
    fn substitution_reaches_invoke_args() {
        let z = sym("z");
        let mut b = Bindings::new();
        b.bind(z, sym("msg2"));
        let s = invoke_args(ep("P1", "S2"), vec![Word::var(z)]);
        let out = substitute(&s, &b);
        assert_eq!(out, invoke_args(ep("P1", "S2"), vec![Word::name("msg2")]));
    }

    #[test]
    fn substitution_respects_shadowing() {
        let z = sym("z");
        let mut b = Bindings::new();
        b.bind(z, sym("v"));
        // [z] P.O?<z>.P.Q!<z>  — z here is the *inner* z; must not change.
        let inner = request_params(
            ep("P", "O"),
            vec![Word::var(z)],
            invoke_args(ep("P", "Q"), vec![Word::var(z)]),
        );
        let s = delim_var(z, inner.clone());
        let out = substitute(&s, &b);
        assert_eq!(out, delim_var(z, inner));
    }

    #[test]
    fn substitution_descends_request_continuations() {
        let z = sym("z");
        let mut b = Bindings::new();
        b.bind(z, sym("v"));
        let s = request_params(
            ep("P", "O"),
            vec![],
            invoke_args(ep("P", "Q"), vec![Word::var(z)]),
        );
        let out = substitute(&s, &b);
        let expected = request_params(
            ep("P", "O"),
            vec![],
            invoke_args(ep("P", "Q"), vec![Word::name("v")]),
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_bindings_is_identity() {
        let s = Service::Nil;
        assert_eq!(substitute(&s, &Bindings::new()), Service::Nil);
    }
}
