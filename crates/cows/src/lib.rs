//! # COWS — Calculus of Orchestration of Web Services
//!
//! A from-scratch implementation of the minimal COWS fragment used by
//! Petković, Prandi and Zannone, *"Purpose Control: Did You Process the Data
//! for the Intended Purpose?"* (SDM @ VLDB 2011) to formalize BPMN business
//! processes:
//!
//! ```text
//! s ::= p·o!⟨w⟩ | [d]s | g | s | s | {|s|} | kill(k) | ∗s
//! g ::= 0 | p·o?⟨w⟩.s | g + g
//! ```
//!
//! The crate provides:
//!
//! * [`term`] — the abstract syntax and service builders;
//! * [`label`] — transition labels (invoke, request, communication, kill);
//! * [`semantics`] — the structural operational semantics;
//! * [`normal`] — canonical normal forms (structural congruence) and the
//!   `halt` function of the kill semantics;
//! * [`subst`] — pattern matching and variable substitution;
//! * [`lts`] — labeled-transition-system exploration and bounded observable
//!   trace enumeration (the naïve baseline of §1);
//! * [`observe`] — the paper's IT-observability (`L = {r·q} ∪ {sys·Err}`);
//! * [`weaknext`] — `WeakNext` (Def. 7) with active-task bookkeeping
//!   (Def. 6), the engine under Algorithm 1;
//! * [`automaton`] — [`automaton::ProcessAutomaton`], a lazily built,
//!   thread-shared compilation of the observable LTS: `Marked`
//!   configurations are interned to dense `u32` ids and `weak_next`
//!   results are cached per state, so replay becomes integer-automaton
//!   walking.
//!
//! ## Example
//!
//! The Fig. 7 process (start → task → end) and its two-step LTS:
//!
//! ```
//! use cows::term::{ep, invoke, par, request, Service};
//! use cows::lts::{explore, ExploreLimits};
//!
//! let serv = par(vec![
//!     invoke(ep("P", "T")),                          // [[S]]
//!     request(ep("P", "T"), invoke(ep("P", "E"))),   // [[T]]
//!     request(ep("P", "E"), Service::Nil),           // [[E]]
//! ]);
//! let lts = explore(&serv, ExploreLimits::default()).unwrap();
//! assert_eq!(lts.state_count(), 3);
//! assert_eq!(lts.edge_count(), 2);
//! ```

pub mod automaton;
pub mod dot;
pub mod equiv;
pub mod error;
pub mod label;
pub mod lts;
pub mod normal;
pub mod observe;
pub mod parse;
pub mod semantics;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod weaknext;

pub use automaton::snapshot::{
    MergeReport, SnapshotError, StableHasher, StateDecoder, StateEncoder,
};
pub use automaton::{AutomatonStats, ProcessAutomaton};
pub use equiv::{weak_trace_equiv, EquivLimits, Inequivalence};
pub use error::ExploreError;
pub use label::Label;
pub use lts::{explore, ExploreLimits, Lts, StateId};
pub use normal::normalize;
pub use observe::{Observability, Observation, TaskObservability};
pub use parse::{parse_service, TermParseError};
pub use symbol::{sym, Symbol};
pub use term::{Endpoint, Service};
pub use weaknext::{
    weak_next, weak_next_traced, Marked, TaskInstance, WeakNextLimits, WeakSuccessor,
};
