//! The churn envelope — `PCLE`, the eviction format built for speed.
//!
//! P12 measured the live monitor at ~8× batch speed, and the counters put
//! the whole gap on spill churn: every eviction serialized the session's
//! COWS terms through the durable `PCLC` checkpoint envelope (local symbol
//! table, recursive term encoding, FNV checksum, one file per case), and
//! every rehydration undid all of it. But an evicted case that rehydrates
//! *in the same run* needs none of that ceremony:
//!
//! * Configurations are already interned in the process's shared
//!   [`ProcessAutomaton`](cows::automaton::ProcessAutomaton) — a `u32`
//!   [`StateId`] per configuration is a complete, loss-free reference.
//! * Symbols are already interned in the run-global interner — a `u32`
//!   index per identifier replaces string tables entirely.
//! * The blob never leaves the process (the in-memory tier) or outlives it
//!   (the spill log is truncated on start, deleted on drop), so there is
//!   no version negotiation and no checksum: corruption of our own heap
//!   is not a threat model eviction needs to pay for on every entry.
//!
//! The result is a varint-packed record a few hundred bytes long that
//! encodes and decodes in microseconds — the P13 micro-bench puts it an
//! order of magnitude under `PCLC` on both sides.
//!
//! **`PCLE` is strictly run-local.** Anything that crosses a process
//! boundary — whole-monitor checkpoints, restore — still uses the
//! versioned, checksummed `PCLC`/`PCLM`/`PCLS` envelopes from
//! [`crate::checkpoint`]. The spill store accepts both; the magic bytes
//! dispatch.

use crate::session::SessionMeta;
use audit::entry::{LogEntry, TaskStatus};
use audit::time::Timestamp;
use cows::automaton::StateId;
use cows::symbol::Symbol;
use cows::SnapshotError;
use policy::object::ObjectId;
use policy::statement::Action;

/// Magic for a churn (same-run eviction) record.
pub const CHURN_MAGIC: [u8; 4] = *b"PCLE";

/// An evicted case in churn form: automaton state ids instead of terms,
/// interner indices instead of strings.
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnCheckpoint {
    pub case: Symbol,
    pub purpose: Symbol,
    /// [`bpmn::encode::Encoded::snapshot_key`] of the process — revalidated
    /// at rehydration exactly like the durable envelope.
    pub process_key: u64,
    /// The live configuration set as shared-automaton state ids, in set
    /// order.
    pub ids: Vec<StateId>,
    /// Session counters (Algorithm 1 bookkeeping), carried verbatim.
    pub meta: SessionMeta,
    /// Retained severity-context window, kept in wire form — see
    /// [`EntryBlock`] for why rehydration never materializes it.
    pub entries: EntryBlock,
    pub entries_dropped: u64,
    pub last_seen: Timestamp,
}

// ---------------------------------------------------------------------------
// Varint primitives (LEB128, unsigned)
// ---------------------------------------------------------------------------

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, SnapshotError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or(SnapshotError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(SnapshotError::Malformed("varint overflows u64"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_sym(out: &mut Vec<u8>, s: Symbol) {
    put_varint(out, u64::from(s.index()));
}

/// Decode one symbol index, validated against a caller-held
/// [`Symbol::interned_len`] snapshot — one interner-lock acquisition per
/// blob instead of one per symbol, which is what keeps rehydration off
/// the interner lock under churn.
fn get_sym(bytes: &[u8], pos: &mut usize, known: u32) -> Result<Symbol, SnapshotError> {
    let idx = get_varint(bytes, pos)?;
    u32::try_from(idx)
        .ok()
        .and_then(|i| Symbol::from_index_below(i, known))
        .ok_or(SnapshotError::Malformed("symbol index unknown to this run"))
}

// ---------------------------------------------------------------------------
// Entry codec
// ---------------------------------------------------------------------------

/// Entry flags packed into one byte: bits 0–1 action, bit 2 status, bit 3
/// object present, bit 4 object subject present.
fn entry_flags(e: &LogEntry) -> u8 {
    let action = match e.action {
        Action::Read => 0u8,
        Action::Write => 1,
        Action::Execute => 2,
        Action::Cancel => 3,
    };
    let status = u8::from(e.status == TaskStatus::Failure) << 2;
    let (has_obj, has_subj) = match &e.object {
        None => (0u8, 0u8),
        Some(o) => (1, u8::from(o.subject.is_some())),
    };
    action | status | (has_obj << 3) | (has_subj << 4)
}

/// Encode one window entry. The case symbol is *not* stored — every entry
/// of a spilled case shares the envelope's case, so it is re-attached at
/// decode time.
fn put_entry(out: &mut Vec<u8>, e: &LogEntry) {
    out.push(entry_flags(e));
    put_sym(out, e.user);
    put_sym(out, e.role);
    put_sym(out, e.task);
    put_varint(out, e.time.0);
    if let Some(obj) = &e.object {
        if let Some(s) = obj.subject {
            put_sym(out, s);
        }
        put_varint(out, obj.path.len() as u64);
        for &p in &obj.path {
            put_sym(out, p);
        }
    }
}

fn get_entry(
    bytes: &[u8],
    pos: &mut usize,
    case: Symbol,
    known: u32,
) -> Result<LogEntry, SnapshotError> {
    let &flags = bytes.get(*pos).ok_or(SnapshotError::Truncated)?;
    *pos += 1;
    if flags & !0x1f != 0 {
        return Err(SnapshotError::Malformed("bad entry flags"));
    }
    let action = match flags & 0x3 {
        0 => Action::Read,
        1 => Action::Write,
        2 => Action::Execute,
        _ => Action::Cancel,
    };
    let status = if flags & 0x4 != 0 {
        TaskStatus::Failure
    } else {
        TaskStatus::Success
    };
    let user = get_sym(bytes, pos, known)?;
    let role = get_sym(bytes, pos, known)?;
    let task = get_sym(bytes, pos, known)?;
    let time = Timestamp(get_varint(bytes, pos)?);
    let object = if flags & 0x8 != 0 {
        let subject = if flags & 0x10 != 0 {
            Some(get_sym(bytes, pos, known)?)
        } else {
            None
        };
        let n = get_varint(bytes, pos)? as usize;
        if n > bytes.len() {
            return Err(SnapshotError::Malformed("object path longer than blob"));
        }
        let path = (0..n)
            .map(|_| get_sym(bytes, pos, known))
            .collect::<Result<_, _>>()?;
        Some(ObjectId { subject, path })
    } else {
        None
    };
    Ok(LogEntry {
        user,
        role,
        action,
        object,
        task,
        case,
        time,
        status,
    })
}

/// Advance past one encoded entry without building a [`LogEntry`] — the
/// front-trim path of [`EntryBlock`], which must not pay decode allocations
/// just to drop the window's oldest element.
fn skip_entry(bytes: &[u8], pos: &mut usize) -> Result<(), SnapshotError> {
    let &flags = bytes.get(*pos).ok_or(SnapshotError::Truncated)?;
    *pos += 1;
    if flags & !0x1f != 0 {
        return Err(SnapshotError::Malformed("bad entry flags"));
    }
    // user, role, task, time
    for _ in 0..4 {
        get_varint(bytes, pos)?;
    }
    if flags & 0x8 != 0 {
        if flags & 0x10 != 0 {
            get_varint(bytes, pos)?;
        }
        let n = get_varint(bytes, pos)? as usize;
        if n > bytes.len() {
            return Err(SnapshotError::Malformed("object path longer than blob"));
        }
        for _ in 0..n {
            get_varint(bytes, pos)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Entry window in wire form
// ---------------------------------------------------------------------------

/// The retained severity-context window, stored as already-encoded entry
/// records rather than a `Vec<LogEntry>`.
///
/// Under churn a case bounces through the spill store many times, and each
/// bounce used to decode the whole window on rehydration and re-encode it
/// on the next eviction — O(window) per cycle for data nothing reads while
/// the case is merely resident. Keeping the window in wire form makes the
/// cycle O(new entries): eviction splices the block's bytes into the
/// envelope verbatim, rehydration slices them back out, and appending a
/// freshly observed entry encodes just that entry (which is also cheaper
/// than the `LogEntry` clone it replaces). The window is only materialized
/// where entries are actually consumed — severity assessment at alarm time
/// and the durable `PCLC` conversion at whole-monitor checkpoints.
#[derive(Clone, Debug, Default)]
pub struct EntryBlock {
    /// Number of encoded entries between `start` and the end of `bytes`.
    count: usize,
    /// Byte offset of the oldest live entry; front trims advance it and a
    /// compaction reclaims the dead prefix once it dominates the buffer.
    start: usize,
    bytes: Vec<u8>,
}

impl PartialEq for EntryBlock {
    fn eq(&self, other: &EntryBlock) -> bool {
        // Equality is over the live window, not the dead prefix a trim may
        // have left behind.
        self.count == other.count && self.live() == other.live()
    }
}

impl EntryBlock {
    /// Encode `entries` into a fresh block (the durable-restore path).
    pub fn from_entries<'a, I>(entries: I) -> EntryBlock
    where
        I: IntoIterator<Item = &'a LogEntry>,
    {
        let mut block = EntryBlock::default();
        for e in entries {
            block.push(e);
        }
        block
    }

    /// Rebuild a block from its wire representation.
    fn from_wire(count: usize, bytes: Vec<u8>) -> EntryBlock {
        EntryBlock {
            count,
            start: 0,
            bytes,
        }
    }

    /// The encoded live window.
    fn live(&self) -> &[u8] {
        &self.bytes[self.start..]
    }

    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Append one entry (encoding it in place).
    pub fn push(&mut self, e: &LogEntry) {
        put_entry(&mut self.bytes, e);
        self.count += 1;
    }

    /// Drop the oldest entry — a parse-and-skip, never a decode. A block
    /// whose buffer turns out unparseable (which would mean this process
    /// corrupted its own heap — the same non-threat the missing checksum
    /// is about) degrades to an empty window rather than panicking.
    pub fn pop_front(&mut self) {
        if self.count == 0 {
            return;
        }
        let mut pos = self.start;
        match skip_entry(&self.bytes, &mut pos) {
            Ok(()) => {
                self.start = pos;
                self.count -= 1;
                if self.start * 2 > self.bytes.len() {
                    self.bytes.drain(..self.start);
                    self.start = 0;
                }
            }
            Err(_) => {
                debug_assert!(false, "entry window buffer corrupted");
                self.bytes.clear();
                self.start = 0;
                self.count = 0;
            }
        }
    }

    /// Materialize the window (alarm severity, durable checkpoints). Every
    /// entry is re-attached to `case`, exactly like envelope decode.
    pub fn decode(&self, case: Symbol) -> Result<Vec<LogEntry>, SnapshotError> {
        let known = Symbol::interned_len();
        let mut pos = self.start;
        let entries = (0..self.count)
            .map(|_| get_entry(&self.bytes, &mut pos, case, known))
            .collect::<Result<Vec<_>, _>>()?;
        if pos != self.bytes.len() {
            return Err(SnapshotError::Malformed("trailing bytes in entry window"));
        }
        Ok(entries)
    }
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// Case-name flag values: absent, equal to the case symbol (the common
/// case — one byte instead of re-encoding the string), or inline.
const NAME_NONE: u8 = 0;
const NAME_IS_CASE: u8 = 1;
const NAME_INLINE: u8 = 2;

/// Serialize a churn checkpoint. No checksum, no symbol table, no version
/// field — see the module docs for why that is sound for a record that
/// never leaves this run.
pub fn encode_churn(c: &ChurnCheckpoint) -> Vec<u8> {
    // Envelope + counters ≈ 40 B, plus the window verbatim, each id ≈ 2 B.
    let mut out = Vec::with_capacity(48 + c.entries.live().len() + 4 * c.ids.len());
    out.extend_from_slice(&CHURN_MAGIC);
    put_sym(&mut out, c.case);
    put_sym(&mut out, c.purpose);
    out.extend_from_slice(&c.process_key.to_le_bytes());
    put_varint(&mut out, c.meta.consumed as u64);
    put_varint(&mut out, c.meta.explored as u64);
    put_varint(&mut out, c.meta.peak as u64);
    match c.meta.first_time {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_varint(&mut out, t.0);
        }
    }
    match &c.meta.case_name {
        None => out.push(NAME_NONE),
        Some(name) if name == c.case.as_str() => out.push(NAME_IS_CASE),
        Some(name) => {
            out.push(NAME_INLINE);
            put_varint(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
        }
    }
    put_varint(&mut out, c.entries_dropped);
    put_varint(&mut out, c.last_seen.0);
    // The window travels verbatim: entry count, byte length, raw records.
    let window = c.entries.live();
    put_varint(&mut out, c.entries.len() as u64);
    put_varint(&mut out, window.len() as u64);
    out.extend_from_slice(window);
    put_varint(&mut out, c.ids.len() as u64);
    for &id in &c.ids {
        put_varint(&mut out, u64::from(id));
    }
    out
}

/// Decode a churn checkpoint. Fail-open with the same typed errors as the
/// durable envelopes (a defensive property, not a compatibility one — a
/// malformed blob here would mean monitor-internal corruption).
pub fn decode_churn(bytes: &[u8]) -> Result<ChurnCheckpoint, SnapshotError> {
    if bytes.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != CHURN_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut pos = 4;
    let known = Symbol::interned_len();
    let case = get_sym(bytes, &mut pos, known)?;
    let purpose = get_sym(bytes, &mut pos, known)?;
    if pos + 8 > bytes.len() {
        return Err(SnapshotError::Truncated);
    }
    let process_key = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
    pos += 8;
    let consumed = get_varint(bytes, &mut pos)? as usize;
    let explored = get_varint(bytes, &mut pos)? as usize;
    let peak = get_varint(bytes, &mut pos)? as usize;
    let first_time = match bytes.get(pos).copied() {
        Some(0) => {
            pos += 1;
            None
        }
        Some(1) => {
            pos += 1;
            Some(Timestamp(get_varint(bytes, &mut pos)?))
        }
        Some(_) => return Err(SnapshotError::Malformed("bad first-time flag")),
        None => return Err(SnapshotError::Truncated),
    };
    let case_name = match bytes.get(pos).copied() {
        Some(NAME_NONE) => {
            pos += 1;
            None
        }
        Some(NAME_IS_CASE) => {
            pos += 1;
            Some(case.to_string())
        }
        Some(NAME_INLINE) => {
            pos += 1;
            let len = get_varint(bytes, &mut pos)? as usize;
            let raw = bytes.get(pos..pos + len).ok_or(SnapshotError::Truncated)?;
            pos += len;
            Some(
                std::str::from_utf8(raw)
                    .map_err(|_| SnapshotError::Malformed("case name is not utf-8"))?
                    .to_string(),
            )
        }
        Some(_) => return Err(SnapshotError::Malformed("bad case-name flag")),
        None => return Err(SnapshotError::Truncated),
    };
    let entries_dropped = get_varint(bytes, &mut pos)?;
    let last_seen = Timestamp(get_varint(bytes, &mut pos)?);
    let nentries = get_varint(bytes, &mut pos)? as usize;
    let nbytes = get_varint(bytes, &mut pos)? as usize;
    // Flags + three symbols + timestamp make 5 bytes the smallest entry.
    if nentries.saturating_mul(5) > nbytes {
        return Err(SnapshotError::Malformed("entry count longer than window"));
    }
    let raw = bytes
        .get(pos..pos.saturating_add(nbytes))
        .ok_or(SnapshotError::Truncated)?;
    pos += nbytes;
    // The window stays in wire form — rehydration pays O(ids + meta), and
    // the entries decode only at an alarm or a durable checkpoint.
    let entries = EntryBlock::from_wire(nentries, raw.to_vec());
    let nids = get_varint(bytes, &mut pos)? as usize;
    if nids > bytes.len() {
        return Err(SnapshotError::Malformed("id count longer than blob"));
    }
    let mut ids = Vec::with_capacity(nids);
    for _ in 0..nids {
        let id = get_varint(bytes, &mut pos)?;
        ids.push(
            u32::try_from(id).map_err(|_| SnapshotError::Malformed("state id overflows u32"))?,
        );
    }
    if pos != bytes.len() {
        return Err(SnapshotError::Malformed("trailing bytes after churn blob"));
    }
    Ok(ChurnCheckpoint {
        case,
        purpose,
        process_key,
        ids,
        meta: SessionMeta {
            peak,
            explored,
            consumed,
            first_time,
            case_name,
        },
        entries,
        entries_dropped,
        last_seen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    fn sample() -> ChurnCheckpoint {
        let entry = LogEntry::success(
            "Bob",
            "Cardiologist",
            Action::Read,
            Some(ObjectId::of_subject("Jane", "EPR/Clinical")),
            "T06",
            "HT-7",
            Timestamp(201007060900),
        );
        let failed = LogEntry {
            status: TaskStatus::Failure,
            object: None,
            time: Timestamp(201007060905),
            ..entry.clone()
        };
        ChurnCheckpoint {
            case: sym("HT-7"),
            purpose: sym("treatment"),
            process_key: 0xdead_beef_0123,
            ids: vec![0, 7, 131_072],
            meta: SessionMeta {
                peak: 3,
                explored: 41,
                consumed: 5,
                first_time: Some(Timestamp(201007060900)),
                case_name: Some("HT-7".to_string()),
            },
            entries: EntryBlock::from_entries(&[entry, failed]),
            entries_dropped: 2,
            last_seen: Timestamp(201007060905),
        }
    }

    #[test]
    fn entry_block_round_trips_and_trims_from_the_front() {
        let c = sample();
        let entries = c.entries.decode(c.case).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].user, sym("Bob"));
        assert_eq!(entries[1].status, TaskStatus::Failure);
        // Every decoded entry carries the envelope case, not whatever the
        // original entry said.
        assert!(entries.iter().all(|e| e.case == c.case));

        let mut block = c.entries.clone();
        block.pop_front();
        assert_eq!(block.len(), 1);
        assert_eq!(block.decode(c.case).unwrap(), entries[1..]);
        block.pop_front();
        assert!(block.is_empty());
        assert_eq!(block.decode(c.case).unwrap(), Vec::<LogEntry>::new());
        // Popping an empty window is a no-op, not an underflow.
        block.pop_front();
        assert!(block.is_empty());
    }

    #[test]
    fn entry_block_rejects_symbols_the_run_never_interned() {
        let block = EntryBlock::from_wire(1, {
            let mut raw = vec![0u8]; // flags: read/success/no object
            put_varint(&mut raw, u64::from(u32::MAX)); // user index: never issued
            put_varint(&mut raw, 0);
            put_varint(&mut raw, 0);
            put_varint(&mut raw, 0);
            raw
        });
        assert_eq!(
            block.decode(sym("HT-7")).unwrap_err(),
            SnapshotError::Malformed("symbol index unknown to this run")
        );
    }

    #[test]
    fn churn_round_trips_byte_identically() {
        let c = sample();
        let bytes = encode_churn(&c);
        let back = decode_churn(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(encode_churn(&back), bytes);
    }

    #[test]
    fn churn_is_far_smaller_than_the_durable_envelope() {
        let c = sample();
        let durable = crate::checkpoint::encode_case(&crate::checkpoint::CaseCheckpoint {
            case: c.case,
            purpose: c.purpose,
            process_key: c.process_key,
            state: crate::session::SessionState {
                confs: vec![bpmn::encode::encode(&bpmn::models::fig8_exclusive()).initial()],
                peak: c.meta.peak,
                explored: c.meta.explored,
                consumed: c.meta.consumed,
                first_time: c.meta.first_time,
                case_name: c.meta.case_name.clone(),
            },
            entries: c.entries.decode(c.case).unwrap(),
            entries_dropped: c.entries_dropped,
            last_seen: c.last_seen,
        });
        let churn = encode_churn(&c);
        assert!(
            churn.len() * 3 < durable.len(),
            "churn {} B vs durable {} B",
            churn.len(),
            durable.len()
        );
    }

    #[test]
    fn corruption_is_fail_open() {
        let bytes = encode_churn(&sample());
        assert_eq!(decode_churn(b"XXXX").unwrap_err(), SnapshotError::BadMagic);
        for len in 0..bytes.len() {
            assert!(decode_churn(&bytes[..len]).is_err(), "truncation at {len}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_churn(&trailing).is_err());
        // A symbol index the interner never issued is rejected, not
        // conjured: varint-encode u32::MAX into the case position.
        let mut bad = CHURN_MAGIC.to_vec();
        put_varint(&mut bad, u64::from(u32::MAX));
        assert_eq!(
            decode_churn(&bad).unwrap_err(),
            SnapshotError::Malformed("symbol index unknown to this run")
        );
    }

    #[test]
    fn varint_round_trips_at_the_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
        // An 11-byte varint overflows u64 and is rejected.
        let over = [0x80u8; 10];
        let mut pos = 0;
        assert!(get_varint(&over, &mut pos).is_err());
    }
}
