//! Crash-safe storage façade: fsync discipline for every persistent
//! artifact, with built-in fault injection.
//!
//! Before this module, `grep` found zero `sync_all` calls across the
//! spill store, the checkpoint writers and the snapshot cache: every
//! durable byte the system wrote sat in the page cache until the kernel
//! felt like flushing it, and spill-log compaction renamed a tmp file
//! that was never synced — a `kill -9` or power cut could tear
//! `spill.log`, `.pclc`/`.ckpt` checkpoints and `.pcas` snapshots. The
//! paper's whole value proposition is a-posteriori accountability; state
//! that evaporates with the machine is not evidence.
//!
//! Two primitives cover every persistence path:
//!
//! * [`atomic_write_sync`] — whole-file replacement with the full
//!   write → fsync → rename → parent-dir-fsync sequence, for checkpoint
//!   files (`PCLM`/`PCLS`/`.ckpt`), observability exports and anything
//!   else written in one shot. Under [`SyncPolicy::Never`] the syncs are
//!   skipped but the tmp + rename atomicity is kept: a reader never
//!   observes a half-written file, a crash at worst loses the newest
//!   version.
//! * [`DurableFile`] — an append-oriented handle for the spill log:
//!   positioned writes with policy-driven fsync ([`SyncPolicy::Always`]
//!   syncs every append, [`SyncPolicy::Batched`] every n-th,
//!   [`SyncPolicy::Never`] leaves flushing to the kernel).
//!
//! Fault injection is compiled in under `#[cfg(any(test, feature =
//! "chaos"))]` (see [`fault`]): a seeded [`fault::FaultPlan`] scoped to a
//! directory prefix makes the N-th durable operation under that prefix
//! fail with a short write, EIO or ENOSPC — or abort the process — so
//! every persistence path can be driven through disk failure and must
//! answer with a typed error, never a panic and never a wrong verdict.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// When durable writes reach the platter.
///
/// The knob every persistent surface honors, exposed as `--durability`
/// on `audit`/`watch`/`serve`:
///
/// * `Always` — fsync after every durable operation. Slowest, survives
///   power loss at any instant.
/// * `Batched(n)` — fsync every n-th spill-log append (whole-file
///   writes still sync once). The default: bounded loss window, near
///   `Never` throughput.
/// * `Never` — leave flushing to the kernel. Atomic renames still keep
///   files un-torn; a crash can lose recent state but never corrupts a
///   verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    Always,
    Batched(u64),
    Never,
}

/// Default append batch for [`SyncPolicy::Batched`].
pub const DEFAULT_SYNC_BATCH: u64 = 16;

impl Default for SyncPolicy {
    fn default() -> SyncPolicy {
        SyncPolicy::Batched(DEFAULT_SYNC_BATCH)
    }
}

impl SyncPolicy {
    /// Parse the `--durability` flag: `always`, `never`, `batched` or
    /// `batched:<n>`.
    pub fn parse(text: &str) -> Result<SyncPolicy, String> {
        match text {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            "batched" => Ok(SyncPolicy::Batched(DEFAULT_SYNC_BATCH)),
            other => match other.strip_prefix("batched:") {
                Some(n) => match n.parse::<u64>() {
                    Ok(n) if n >= 1 => Ok(SyncPolicy::Batched(n)),
                    _ => Err(format!("batched:<n> needs n >= 1, got `{n}`")),
                },
                None => Err(format!(
                    "`{other}` is not a durability policy (always | batched[:<n>] | never)"
                )),
            },
        }
    }

    /// Canonical rendering (inverse of [`SyncPolicy::parse`]).
    pub fn label(&self) -> String {
        match self {
            SyncPolicy::Always => "always".to_string(),
            SyncPolicy::Batched(n) => format!("batched:{n}"),
            SyncPolicy::Never => "never".to_string(),
        }
    }

    /// Whether whole-file writes should fsync under this policy.
    fn syncs(&self) -> bool {
        !matches!(self, SyncPolicy::Never)
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// `true` for the errors that mean "the disk is full" — the one failure
/// class the live monitor degrades through instead of surfacing (see
/// [`crate::live::LiveAuditor::evict`]): a case that cannot be spilled
/// stays resident, which costs memory but never a verdict.
pub fn is_no_space(e: &io::Error) -> bool {
    // ErrorKind::StorageFull is not stable on our MSRV; the raw errno is.
    e.raw_os_error() == Some(28) || e.to_string().contains("ENOSPC")
}

/// Write `bytes` to `path` atomically with policy-driven durability:
/// write a sibling tmp file, fsync it, rename over `path`, fsync the
/// parent directory (so the rename itself survives a crash). Returns the
/// number of fsyncs performed (0 under [`SyncPolicy::Never`]).
///
/// The tmp file is `<file name>.tmp-durable` in the same directory, so
/// the rename never crosses a filesystem boundary.
pub fn atomic_write_sync(path: &Path, bytes: &[u8], policy: SyncPolicy) -> io::Result<u64> {
    #[cfg(any(test, feature = "chaos"))]
    fault::check_write(path, bytes.len())?;
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    fs::create_dir_all(&dir)?;
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = name.to_os_string();
    tmp_name.push(".tmp-durable");
    let tmp = dir.join(tmp_name);
    let mut fsyncs = 0u64;
    let outcome = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        if policy.syncs() {
            file.sync_all()?;
            fsyncs += 1;
        }
        drop(file);
        fs::rename(&tmp, path)?;
        if policy.syncs() {
            // Directory fsync makes the rename itself durable; failure to
            // *open* the directory (exotic filesystems) is not fatal — the
            // data file is already synced.
            if let Ok(d) = fs::File::open(&dir) {
                d.sync_all()?;
                fsyncs += 1;
            }
        }
        Ok(fsyncs)
    })();
    if outcome.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    outcome
}

/// Per-handle durability counters, folded into
/// [`crate::spill::SpillStats`] by the spill store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurableFileStats {
    /// `fsync` calls issued through this handle.
    pub fsyncs: u64,
    /// Faults injected into this handle's operations ([`fault`]).
    pub injected_faults: u64,
}

/// An append-oriented durable file handle: positioned writes with
/// policy-driven fsync. The spill log's storage primitive.
pub struct DurableFile {
    file: fs::File,
    path: PathBuf,
    policy: SyncPolicy,
    /// Appends since the last fsync (the [`SyncPolicy::Batched`] clock).
    appends_since_sync: u64,
    stats: DurableFileStats,
}

impl DurableFile {
    /// Create (truncating any previous file) for read + write.
    pub fn create(path: &Path, policy: SyncPolicy) -> io::Result<DurableFile> {
        let file = fs::OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(path)?;
        Ok(DurableFile {
            file,
            path: path.to_path_buf(),
            policy,
            appends_since_sync: 0,
            stats: DurableFileStats::default(),
        })
    }

    /// Open an existing file for read + write (the compaction reopen).
    pub fn open(path: &Path, policy: SyncPolicy) -> io::Result<DurableFile> {
        let file = fs::OpenOptions::new().read(true).write(true).open(path)?;
        Ok(DurableFile {
            file,
            path: path.to_path_buf(),
            policy,
            appends_since_sync: 0,
            stats: DurableFileStats::default(),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn stats(&self) -> DurableFileStats {
        self.stats
    }

    /// One durable append: write `buf` at `offset`, then sync per policy.
    /// An injected fault (under test/chaos builds) surfaces here as the
    /// same `io::Error` a failing disk would produce.
    pub fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        #[cfg(any(test, feature = "chaos"))]
        if let Err(e) = fault::check_write(&self.path, buf.len()) {
            self.stats.injected_faults += 1;
            // A short write leaves real bytes behind — exactly the torn
            // tail the recovery scan must cope with.
            if let Some(partial) = fault::short_write_len(&e, buf.len()) {
                let _ = self
                    .file
                    .seek(SeekFrom::Start(offset))
                    .and_then(|_| self.file.write_all(&buf[..partial]));
            }
            return Err(e);
        }
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(buf)?;
        self.appends_since_sync += 1;
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::Batched(n) => {
                if self.appends_since_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Positioned read into `buf`.
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)
    }

    /// Truncate to `len` — the torn-tail repair after a failed append.
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    /// Force an fsync now, regardless of policy.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.stats.fsyncs += 1;
        self.appends_since_sync = 0;
        Ok(())
    }
}

/// Deterministic disk-fault injection, compiled in for tests and
/// `--features chaos` builds only.
///
/// A [`FaultPlan`] is *scoped to a directory prefix*: only durable
/// operations on paths under the scope count toward (and suffer) the
/// fault, so concurrent tests with separate scratch directories never
/// interfere. Plans are armed process-globally ([`arm`]) and removed
/// with [`disarm`]/[`disarm_all`].
#[cfg(any(test, feature = "chaos"))]
pub mod fault {
    use std::io;
    use std::path::{Path, PathBuf};
    use std::sync::Mutex;

    /// What the injected failure looks like to the caller.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FaultKind {
        /// Half the buffer reaches the file, then the write "fails" —
        /// the torn-write case recovery must truncate.
        ShortWrite,
        /// A plain I/O error (medium failure).
        Eio,
        /// Disk full (errno 28) — the one failure the live monitor
        /// degrades through instead of surfacing.
        Enospc,
        /// `std::process::abort()` — the crash-after-op-N probe for
        /// child-process harnesses.
        Crash,
    }

    /// One scheduled fault: the `at_op`-th durable write under `scope`
    /// fails with `kind`; with `persistent` every later write fails too
    /// (a full disk stays full).
    #[derive(Clone, Debug)]
    pub struct FaultPlan {
        pub scope: PathBuf,
        pub kind: FaultKind,
        pub at_op: u64,
        pub persistent: bool,
    }

    impl FaultPlan {
        pub fn new(scope: impl Into<PathBuf>, kind: FaultKind, at_op: u64) -> FaultPlan {
            FaultPlan {
                scope: scope.into(),
                kind,
                at_op: at_op.max(1),
                persistent: matches!(kind, FaultKind::Enospc),
            }
        }

        /// A seed-derived plan: splitmix64 picks the failing operation
        /// (1..=12) and the failure mode (crash excluded — that one is
        /// always explicit).
        pub fn seeded(scope: impl Into<PathBuf>, seed: u64) -> FaultPlan {
            let mut s = seed;
            let kind = match super::splitmix64(&mut s) % 3 {
                0 => FaultKind::ShortWrite,
                1 => FaultKind::Eio,
                _ => FaultKind::Enospc,
            };
            let at_op = super::splitmix64(&mut s) % 12 + 1;
            FaultPlan::new(scope, kind, at_op)
        }
    }

    struct Armed {
        plan: FaultPlan,
        ops: u64,
    }

    static ARMED: Mutex<Vec<Armed>> = Mutex::new(Vec::new());

    /// Injected faults fired so far, process-wide.
    static FIRED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

    /// Schedule a fault. Multiple plans (distinct scopes) may be armed.
    pub fn arm(plan: FaultPlan) {
        ARMED
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Armed { plan, ops: 0 });
    }

    /// Remove every plan scoped under `scope`.
    pub fn disarm(scope: &Path) {
        ARMED
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .retain(|a| !a.plan.scope.starts_with(scope) && !scope.starts_with(&a.plan.scope));
    }

    pub fn disarm_all() {
        ARMED.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    /// Total injected faults fired since process start.
    pub fn fired() -> u64 {
        FIRED.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Called by every durable write: counts the operation against any
    /// armed plan whose scope covers `path` and returns the scheduled
    /// failure when the counter hits.
    pub(super) fn check_write(path: &Path, _len: usize) -> io::Result<()> {
        let mut armed = ARMED.lock().unwrap_or_else(|p| p.into_inner());
        for a in armed.iter_mut() {
            if !path.starts_with(&a.plan.scope) {
                continue;
            }
            a.ops += 1;
            let hit = a.ops == a.plan.at_op || (a.plan.persistent && a.ops > a.plan.at_op);
            if !hit {
                continue;
            }
            FIRED.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Err(match a.plan.kind {
                FaultKind::ShortWrite => {
                    io::Error::new(io::ErrorKind::WriteZero, "injected short write")
                }
                FaultKind::Eio => io::Error::other("injected EIO"),
                FaultKind::Enospc => io::Error::from_raw_os_error(28),
                FaultKind::Crash => std::process::abort(),
            });
        }
        Ok(())
    }

    /// For an injected short write, how many bytes actually to leave in
    /// the file (half the buffer) — `None` for other fault kinds.
    pub(super) fn short_write_len(e: &io::Error, len: usize) -> Option<usize> {
        (e.kind() == io::ErrorKind::WriteZero).then_some(len / 2)
    }
}

/// The splitmix64 step — the seed mixer shared by fault plans and the
/// crash harness schedules (no dependency on the vendored `rand`).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("purposectl-tests")
            .join(format!("durable-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn policy_parses_and_round_trips() {
        for (text, policy) in [
            ("always", SyncPolicy::Always),
            ("never", SyncPolicy::Never),
            ("batched", SyncPolicy::Batched(DEFAULT_SYNC_BATCH)),
            ("batched:4", SyncPolicy::Batched(4)),
        ] {
            assert_eq!(SyncPolicy::parse(text).unwrap(), policy);
            assert_eq!(SyncPolicy::parse(&policy.label()).unwrap(), policy);
        }
        assert!(SyncPolicy::parse("sometimes").is_err());
        assert!(SyncPolicy::parse("batched:0").is_err());
    }

    #[test]
    fn atomic_write_replaces_and_counts_fsyncs() {
        let dir = scratch("atomic");
        let path = dir.join("state.ckpt");
        let fsyncs = atomic_write_sync(&path, b"v1", SyncPolicy::Always).unwrap();
        assert!(fsyncs >= 1, "file fsync must happen");
        assert_eq!(fs::read(&path).unwrap(), b"v1");
        let fsyncs = atomic_write_sync(&path, b"v2", SyncPolicy::Never).unwrap();
        assert_eq!(fsyncs, 0);
        assert_eq!(fs::read(&path).unwrap(), b"v2");
        assert!(
            fs::read_dir(&dir).unwrap().count() == 1,
            "no tmp file left behind"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_policy_syncs_every_nth_append() {
        let dir = scratch("batched");
        let mut file = DurableFile::create(&dir.join("log"), SyncPolicy::Batched(3)).unwrap();
        let mut offset = 0u64;
        for _ in 0..7 {
            file.write_at(offset, b"x").unwrap();
            offset += 1;
        }
        assert_eq!(file.stats().fsyncs, 2, "7 appends at n=3 -> 2 syncs");
        let mut always = DurableFile::create(&dir.join("log2"), SyncPolicy::Always).unwrap();
        always.write_at(0, b"x").unwrap();
        assert_eq!(always.stats().fsyncs, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_eio_surfaces_as_typed_error_not_panic() {
        let dir = scratch("fault-eio");
        fault::arm(fault::FaultPlan::new(&dir, fault::FaultKind::Eio, 1));
        let err = atomic_write_sync(&dir.join("x"), b"data", SyncPolicy::Always).unwrap_err();
        assert!(err.to_string().contains("injected EIO"));
        assert!(!dir.join("x").exists(), "failed write leaves no file");
        fault::disarm(&dir);
        atomic_write_sync(&dir.join("x"), b"data", SyncPolicy::Always).unwrap();
        assert_eq!(fs::read(dir.join("x")).unwrap(), b"data");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_short_write_tears_the_tail() {
        let dir = scratch("fault-short");
        fault::arm(fault::FaultPlan::new(&dir, fault::FaultKind::ShortWrite, 2));
        let mut file = DurableFile::create(&dir.join("log"), SyncPolicy::Never).unwrap();
        file.write_at(0, b"aaaa").unwrap();
        let err = file.write_at(4, b"bbbb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(file.stats().injected_faults, 1);
        fault::disarm(&dir);
        // Half the second write landed: the torn tail is real bytes.
        let on_disk = fs::read(dir.join("log")).unwrap();
        assert_eq!(on_disk, b"aaaabb");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_is_persistent_and_detectable() {
        let dir = scratch("fault-enospc");
        fault::arm(fault::FaultPlan::new(&dir, fault::FaultKind::Enospc, 1));
        for _ in 0..3 {
            let err = atomic_write_sync(&dir.join("x"), b"d", SyncPolicy::Never).unwrap_err();
            assert!(is_no_space(&err), "{err}");
        }
        fault::disarm(&dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_scope_does_not_leak_to_other_directories() {
        let dir = scratch("fault-scope");
        let other = scratch("fault-scope-other");
        fault::arm(fault::FaultPlan::new(&dir, fault::FaultKind::Eio, 1));
        atomic_write_sync(&other.join("x"), b"ok", SyncPolicy::Never).unwrap();
        fault::disarm(&dir);
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&other);
    }
}
