//! Errors of the purpose-control engine.

use cows::error::ExploreError;
use std::fmt;

/// Failures of Algorithm 1's machinery (distinct from *verdicts*: an
/// infringement is a result, not an error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The underlying `WeakNext` computation failed (τ-divergence or state
    /// budget) — the process is likely not well-founded.
    Explore(ExploreError),
    /// The configuration set outgrew its bound while consuming the entry at
    /// `entry_index`. Raise [`crate::replay::CheckOptions::max_configurations`]
    /// or reduce OR-gateway fan-out.
    ConfigurationLimit { limit: usize, entry_index: usize },
    /// A case refers to a purpose with no registered process.
    UnknownPurpose { purpose: String },
    /// A case cannot be mapped to any purpose.
    UnresolvedCase { case: String },
    /// The per-case wall-clock deadline
    /// ([`crate::replay::CheckOptions::case_deadline_ms`]) expired while
    /// consuming the entry at `entry_index`. The case is inconclusive, not
    /// infringing — the auditor maps this to
    /// [`crate::auditor::CaseOutcome::Inconclusive`].
    DeadlineExceeded { entry_index: usize, limit_ms: u64 },
    /// The per-case exploration budget
    /// ([`crate::replay::CheckOptions::max_explored`]) was exhausted while
    /// consuming the entry at `entry_index`.
    StepBudgetExhausted { entry_index: usize, limit: usize },
    /// A live-case checkpoint could not be written to or read back from
    /// the spill store (IO failure, or codec failure on rehydration).
    Checkpoint { detail: String },
    /// An engine component was wired inconsistently (e.g. a replay trie
    /// bound to one role hierarchy asked to serve a session under a
    /// different one). Always a configuration bug, never a verdict.
    EngineConfig { detail: String },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Explore(e) => write!(f, "exploration failed: {e}"),
            CheckError::ConfigurationLimit { limit, entry_index } => write!(
                f,
                "configuration set exceeded {limit} while consuming entry {entry_index}"
            ),
            CheckError::UnknownPurpose { purpose } => {
                write!(f, "no process registered for purpose `{purpose}`")
            }
            CheckError::UnresolvedCase { case } => {
                write!(f, "case `{case}` cannot be mapped to a purpose")
            }
            CheckError::DeadlineExceeded {
                entry_index,
                limit_ms,
            } => write!(
                f,
                "case deadline of {limit_ms}ms expired while consuming entry {entry_index}"
            ),
            CheckError::StepBudgetExhausted { entry_index, limit } => write!(
                f,
                "exploration budget of {limit} successors exhausted while consuming entry {entry_index}"
            ),
            CheckError::Checkpoint { detail } => {
                write!(f, "live checkpoint failed: {detail}")
            }
            CheckError::EngineConfig { detail } => {
                write!(f, "engine misconfiguration: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::Explore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExploreError> for CheckError {
    fn from(e: ExploreError) -> CheckError {
        CheckError::Explore(e)
    }
}
