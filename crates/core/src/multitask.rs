//! Multitasking analysis — the §4 mimicry mitigation.
//!
//! "A single user cannot simulate the whole process alone … This threat can
//! be partially mitigated by limiting multi-tasking, i.e. a user \[has\] to
//! complete an activity before starting a new activity."
//!
//! [`multitasking_report`] finds, per user, pairs of task activities whose
//! logged intervals overlap — a user apparently working on two tasks at
//! once (possibly across cases). Overlaps are not infringements by
//! themselves; they shrink the time windows in which a mimicry attack
//! (reusing a live case id) could hide, and give auditors a policy lever.

use audit::time::Timestamp;
use audit::trail::AuditTrail;
use cows::symbol::Symbol;
use std::collections::HashMap;

/// One task activity of one user: the span between its first and last log
/// entries within a case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSpan {
    pub case: Symbol,
    pub task: Symbol,
    pub first: Timestamp,
    pub last: Timestamp,
    pub entries: usize,
}

/// Two overlapping spans of the same user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultitaskFinding {
    pub user: Symbol,
    pub a: TaskSpan,
    pub b: TaskSpan,
    /// Overlap length in minutes.
    pub overlap_minutes: u64,
}

/// Compute all task spans per user.
pub fn task_spans(trail: &AuditTrail) -> HashMap<Symbol, Vec<TaskSpan>> {
    let mut per_user: HashMap<Symbol, HashMap<(Symbol, Symbol), TaskSpan>> = HashMap::new();
    for e in trail {
        let span = per_user
            .entry(e.user)
            .or_default()
            .entry((e.case, e.task))
            .or_insert(TaskSpan {
                case: e.case,
                task: e.task,
                first: e.time,
                last: e.time,
                entries: 0,
            });
        span.first = span.first.min(e.time);
        span.last = span.last.max(e.time);
        span.entries += 1;
    }
    per_user
        .into_iter()
        .map(|(user, spans)| {
            let mut v: Vec<TaskSpan> = spans.into_values().collect();
            v.sort_by_key(|s| (s.first, s.last, s.case, s.task));
            (user, v)
        })
        .collect()
}

/// Report all per-user overlapping task spans.
///
/// Two spans overlap when one starts strictly before the other ends and
/// they are different (case, task) activities. Zero-length spans (single
/// entries) only overlap if they share the exact timestamp of another
/// span's interior.
pub fn multitasking_report(trail: &AuditTrail) -> Vec<MultitaskFinding> {
    let mut findings = Vec::new();
    for (user, spans) in task_spans(trail) {
        for i in 0..spans.len() {
            for j in (i + 1)..spans.len() {
                let (a, b) = (spans[i], spans[j]);
                // Spans are sorted by start; once b starts after a ends, no
                // later span overlaps a either.
                if b.first > a.last {
                    break;
                }
                let overlap_end = a.last.min(b.last);
                findings.push(MultitaskFinding {
                    user,
                    a,
                    b,
                    overlap_minutes: overlap_end.0.saturating_sub(b.first.0),
                });
            }
        }
    }
    findings.sort_by_key(|f| (f.user, f.a.first, f.b.first));
    findings
}

/// Summary statistic: the fraction of users with at least one overlap — a
/// quick health indicator for the §4 "limit multi-tasking" policy.
pub fn multitasking_ratio(trail: &AuditTrail) -> f64 {
    let spans = task_spans(trail);
    if spans.is_empty() {
        return 0.0;
    }
    let users_total = spans.len();
    let findings = multitasking_report(trail);
    let mut offenders: Vec<Symbol> = findings.iter().map(|f| f.user).collect();
    offenders.sort();
    offenders.dedup();
    offenders.len() as f64 / users_total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit::entry::LogEntry;
    use policy::statement::Action;

    fn entry(user: &str, task: &str, case: &str, minute: u64) -> LogEntry {
        LogEntry::success(user, "R", Action::Read, None, task, case, Timestamp(minute))
    }

    #[test]
    fn disjoint_tasks_produce_no_findings() {
        let t = AuditTrail::from_entries(vec![
            entry("u", "A", "c1", 0),
            entry("u", "A", "c1", 10),
            entry("u", "B", "c1", 20),
            entry("u", "B", "c1", 30),
        ]);
        assert!(multitasking_report(&t).is_empty());
        assert_eq!(multitasking_ratio(&t), 0.0);
    }

    #[test]
    fn interleaved_tasks_are_reported() {
        // u works A(0..20) and B(10..30): overlap 10 minutes.
        let t = AuditTrail::from_entries(vec![
            entry("u", "A", "c1", 0),
            entry("u", "B", "c2", 10),
            entry("u", "A", "c1", 20),
            entry("u", "B", "c2", 30),
        ]);
        let f = multitasking_report(&t);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].overlap_minutes, 10);
        assert_eq!(f[0].a.task, cows::sym("A"));
        assert_eq!(f[0].b.task, cows::sym("B"));
        assert_eq!(multitasking_ratio(&t), 1.0);
    }

    #[test]
    fn different_users_never_overlap_each_other() {
        let t = AuditTrail::from_entries(vec![
            entry("u1", "A", "c1", 0),
            entry("u1", "A", "c1", 20),
            entry("u2", "B", "c2", 10),
            entry("u2", "B", "c2", 30),
        ]);
        assert!(multitasking_report(&t).is_empty());
    }

    #[test]
    fn same_task_across_cases_counts_as_multitasking() {
        // The §4 scenario: Bob keeps a treatment case "warm" while feeding
        // his sweep — same task, different cases, overlapping.
        let t = AuditTrail::from_entries(vec![
            entry("bob", "T06", "HT-1", 0),
            entry("bob", "T06", "HT-11", 5),
            entry("bob", "T06", "HT-1", 10),
            entry("bob", "T06", "HT-11", 15),
        ]);
        let f = multitasking_report(&t);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].a.case, cows::sym("HT-1"));
        assert_eq!(f[0].b.case, cows::sym("HT-11"));
    }

    #[test]
    fn spans_aggregate_entries() {
        let t = AuditTrail::from_entries(vec![
            entry("u", "A", "c", 3),
            entry("u", "A", "c", 1),
            entry("u", "A", "c", 2),
        ]);
        let spans = task_spans(&t);
        let s = &spans[&cows::sym("u")][0];
        assert_eq!(s.first, Timestamp(1));
        assert_eq!(s.last, Timestamp(3));
        assert_eq!(s.entries, 3);
    }
}
