//! Live-session checkpoints.
//!
//! The streaming monitor ([`crate::live::LiveAuditor`]) must survive two
//! things a batch auditor never faces: memory pressure (more open cases
//! than it may keep resident) and restarts (a tailer killed mid-stream).
//! Both reduce to the same primitive — serialize an *open* session so it
//! can be rebuilt later, byte-identically.
//!
//! The format deliberately reuses the `.pcas` machinery from
//! [`cows::automaton::snapshot`]: the same versioned+checksummed envelope
//! (magic, format version, content key, payload length, FNV-1a 64
//! checksum), the same local symbol table, and the same fail-open typed
//! errors. A case checkpoint is keyed by its process's
//! [`Encoded::snapshot_key`], so a checkpoint written against yesterday's
//! process model self-invalidates instead of resuming against the wrong
//! automaton.
//!
//! Two envelopes exist:
//!
//! * `PCLC` — one open case: the [`SessionState`] (configurations as COWS
//!   terms, counters, temporal anchor) plus the monitor's per-case
//!   bookkeeping (retained severity-context entries, drop counter, LRU
//!   trail-time). This is both the spill-file format for evicted cases and
//!   the per-case unit inside a monitor checkpoint.
//! * `PCLM` — a whole monitor: the stream offset, every open case (each a
//!   complete nested `PCLC` blob, so spill files and checkpoints are one
//!   code path), the retired [`ClosedCase`] records and the alarm order.
//!
//! Like `.pcas` snapshots, decoded states are re-normalized under the
//! current run's symbol order, so a checkpoint written by one process
//! rehydrates into this run's canonical terms.

use crate::error::CheckError;
use crate::live::ClosedCase;
use crate::replay::{Infringement, InfringementKind};
use crate::session::SessionState;
use crate::severity::SeverityAssessment;
use audit::entry::{LogEntry, TaskStatus};
use audit::time::Timestamp;
use cows::symbol::Symbol;
use cows::{SnapshotError, StableHasher, StateDecoder, StateEncoder};
use policy::object::ObjectId;
use policy::statement::Action;
use std::fmt;

/// Magic for a single-case checkpoint (spill files, nested case blobs).
pub const CASE_MAGIC: [u8; 4] = *b"PCLC";

/// Magic for a whole-monitor checkpoint.
pub const MONITOR_MAGIC: [u8; 4] = *b"PCLM";

/// Magic for a sharded-monitor checkpoint (one nested `PCLM` per shard).
pub const SHARDED_MAGIC: [u8; 4] = *b"PCLS";

/// Checkpoint format version (independent of the `.pcas` version).
/// v2: closed-case records carry the severity breadth set, so resumed
/// monitors keep folding post-alarm entries into the assessment.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Envelope size: magic + version + key + payload length + checksum.
pub const HEADER_LEN: usize = 32;

/// Content key of a monitor envelope: monitors span processes, so the
/// per-process keys live on the nested case blobs instead.
const MONITOR_KEY: u64 = 0;

/// Why a checkpoint could not be restored into a live monitor. Codec
/// failures are the typed `.pcas` errors; the remaining variants are
/// mismatches between the checkpoint and the auditor it is being restored
/// into.
#[derive(Clone, Debug, PartialEq)]
pub enum RestoreError {
    /// The bytes failed envelope or payload validation.
    Codec(SnapshotError),
    /// The checkpoint references a purpose this auditor does not register.
    UnknownPurpose { case: String, purpose: String },
    /// The registered process changed since the checkpoint was written.
    ProcessKeyMismatch {
        purpose: String,
        found: u64,
        expected: u64,
    },
    /// Rebuilding a session failed (τ-budget, configuration limit, …).
    Check(CheckError),
    /// A sharded checkpoint was written with a different shard count.
    ShardCountMismatch { found: usize, expected: usize },
    /// Shards of one sharded checkpoint disagree on the stream offset
    /// their state reflects (a partial or spliced checkpoint). Resuming
    /// at the max would skip entries owed to the lagging shards; resuming
    /// at the min would double-feed the shards already ahead.
    ShardOffsetMismatch { min: u64, max: u64 },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Codec(e) => write!(f, "checkpoint: {e}"),
            RestoreError::UnknownPurpose { case, purpose } => {
                write!(
                    f,
                    "checkpoint case {case}: purpose {purpose} not registered"
                )
            }
            RestoreError::ProcessKeyMismatch {
                purpose,
                found,
                expected,
            } => write!(
                f,
                "checkpoint keyed to a different {purpose} process \
                 (key {found:#018x}, registry has {expected:#018x})"
            ),
            RestoreError::Check(e) => write!(f, "checkpoint rehydration: {e}"),
            RestoreError::ShardCountMismatch { found, expected } => write!(
                f,
                "checkpoint written with {found} shard(s), monitor has {expected}"
            ),
            RestoreError::ShardOffsetMismatch { min, max } => write!(
                f,
                "sharded checkpoint shards disagree on the consumed stream \
                 offset (min {min}, max {max}); refusing to resume from an \
                 inconsistent checkpoint"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<SnapshotError> for RestoreError {
    fn from(e: SnapshotError) -> RestoreError {
        RestoreError::Codec(e)
    }
}

impl From<CheckError> for RestoreError {
    fn from(e: CheckError) -> RestoreError {
        RestoreError::Check(e)
    }
}

/// One open case in portable form: the session state plus the monitor's
/// per-case bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseCheckpoint {
    pub case: Symbol,
    /// The purpose the case resolved to (restore re-resolves the process
    /// through the auditor's registry and validates `process_key`).
    pub purpose: Symbol,
    /// [`Encoded::snapshot_key`] of the process the session was built
    /// against.
    pub process_key: u64,
    pub state: SessionState,
    /// Retained severity-context window (bounded by
    /// `max_entries_per_case`).
    pub entries: Vec<LogEntry>,
    /// Entries shed from the front of the window.
    pub entries_dropped: u64,
    /// Trail-time of the last observed entry (idle-eviction clock).
    pub last_seen: Timestamp,
}

/// A whole monitor in portable form.
#[derive(Clone, Debug, PartialEq)]
pub struct MonitorCheckpoint {
    /// Byte offset the tailer had consumed up to (0 when unused).
    pub stream_offset: u64,
    /// Every open case — resident and spilled alike.
    pub cases: Vec<CaseCheckpoint>,
    /// Alarmed cases retired into compact records.
    pub closed: Vec<ClosedCase>,
    /// Case names in the order their alarms fired.
    pub alarm_order: Vec<Symbol>,
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// Seal a payload in the `.pcas`-shaped envelope.
pub(crate) fn seal(magic: [u8; 4], key: u64, payload: Vec<u8>) -> Vec<u8> {
    let mut checksum = StableHasher::new();
    checksum.write(&payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum.finish().to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validate an envelope and return `(key, payload)`. Strictly fail-open,
/// mirroring `decode_snapshot`.
pub(crate) fn open(bytes: &[u8], magic: [u8; 4]) -> Result<(u64, &[u8]), SnapshotError> {
    if bytes.len() < HEADER_LEN {
        if bytes.len() >= 4 && bytes[..4] != magic {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated);
    }
    if bytes[..4] != magic {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != CHECKPOINT_VERSION {
        return Err(SnapshotError::VersionMismatch {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let key = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
    let stored_checksum = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() < payload_len {
        return Err(SnapshotError::Truncated);
    }
    if payload.len() > payload_len {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    let mut checksum = StableHasher::new();
    checksum.write(payload);
    let computed = checksum.finish();
    if computed != stored_checksum {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_checksum,
            computed,
        });
    }
    Ok((key, payload))
}

// ---------------------------------------------------------------------------
// Field codecs
// ---------------------------------------------------------------------------

fn put_entry(enc: &mut StateEncoder, e: &LogEntry) {
    enc.put_sym(e.user);
    enc.put_sym(e.role);
    enc.put_u8(match e.action {
        Action::Read => 0,
        Action::Write => 1,
        Action::Execute => 2,
        Action::Cancel => 3,
    });
    match &e.object {
        None => enc.put_u8(0),
        Some(obj) => {
            enc.put_u8(1);
            match obj.subject {
                None => enc.put_u8(0),
                Some(s) => {
                    enc.put_u8(1);
                    enc.put_sym(s);
                }
            }
            enc.put_len(obj.path.len());
            for &p in &obj.path {
                enc.put_sym(p);
            }
        }
    }
    enc.put_sym(e.task);
    enc.put_sym(e.case);
    enc.put_u64(e.time.0);
    enc.put_u8(match e.status {
        TaskStatus::Success => 0,
        TaskStatus::Failure => 1,
    });
}

fn get_entry(dec: &mut StateDecoder<'_>) -> Result<LogEntry, SnapshotError> {
    let user = dec.get_sym()?;
    let role = dec.get_sym()?;
    let action = match dec.get_u8()? {
        0 => Action::Read,
        1 => Action::Write,
        2 => Action::Execute,
        3 => Action::Cancel,
        _ => return Err(SnapshotError::Malformed("bad action tag")),
    };
    let object = match dec.get_u8()? {
        0 => None,
        1 => {
            let subject = match dec.get_u8()? {
                0 => None,
                1 => Some(dec.get_sym()?),
                _ => return Err(SnapshotError::Malformed("bad subject flag")),
            };
            let n = dec.get_len()?;
            let path = (0..n).map(|_| dec.get_sym()).collect::<Result<_, _>>()?;
            Some(ObjectId { subject, path })
        }
        _ => return Err(SnapshotError::Malformed("bad object flag")),
    };
    let task = dec.get_sym()?;
    let case = dec.get_sym()?;
    let time = Timestamp(dec.get_u64()?);
    let status = match dec.get_u8()? {
        0 => TaskStatus::Success,
        1 => TaskStatus::Failure,
        _ => return Err(SnapshotError::Malformed("bad status tag")),
    };
    Ok(LogEntry {
        user,
        role,
        action,
        object,
        task,
        case,
        time,
        status,
    })
}

fn put_strings(enc: &mut StateEncoder, v: &[String]) {
    enc.put_len(v.len());
    for s in v {
        enc.put_str(s);
    }
}

fn get_strings(dec: &mut StateDecoder<'_>) -> Result<Vec<String>, SnapshotError> {
    let n = dec.get_len()?;
    (0..n).map(|_| dec.get_str()).collect()
}

fn put_infringement(enc: &mut StateEncoder, inf: &Infringement) {
    enc.put_u64(inf.entry_index as u64);
    put_entry(enc, &inf.entry);
    put_strings(enc, &inf.expected);
    put_strings(enc, &inf.active);
    match inf.kind {
        InfringementKind::ProcessDeviation => enc.put_u8(0),
        InfringementKind::TemporalViolation {
            elapsed_minutes,
            limit_minutes,
        } => {
            enc.put_u8(1);
            enc.put_u64(elapsed_minutes);
            enc.put_u64(limit_minutes);
        }
    }
}

fn get_infringement(dec: &mut StateDecoder<'_>) -> Result<Infringement, SnapshotError> {
    let entry_index = dec.get_u64()? as usize;
    let entry = get_entry(dec)?;
    let expected = get_strings(dec)?;
    let active = get_strings(dec)?;
    let kind = match dec.get_u8()? {
        0 => InfringementKind::ProcessDeviation,
        1 => InfringementKind::TemporalViolation {
            elapsed_minutes: dec.get_u64()?,
            limit_minutes: dec.get_u64()?,
        },
        _ => return Err(SnapshotError::Malformed("bad infringement kind")),
    };
    Ok(Infringement {
        entry_index,
        entry,
        expected,
        active,
        kind,
    })
}

fn put_severity(enc: &mut StateEncoder, s: &SeverityAssessment) {
    enc.put_u64(s.unaccounted_entries as u64);
    enc.put_u64(s.max_sensitivity.to_bits());
    enc.put_u64(s.subjects_touched as u64);
    enc.put_u64(s.score.to_bits());
}

fn get_severity(dec: &mut StateDecoder<'_>) -> Result<SeverityAssessment, SnapshotError> {
    Ok(SeverityAssessment {
        unaccounted_entries: dec.get_u64()? as usize,
        max_sensitivity: f64::from_bits(dec.get_u64()?),
        subjects_touched: dec.get_u64()? as usize,
        score: f64::from_bits(dec.get_u64()?),
    })
}

fn put_opt_str(enc: &mut StateEncoder, s: Option<&str>) {
    match s {
        None => enc.put_u8(0),
        Some(s) => {
            enc.put_u8(1);
            enc.put_str(s);
        }
    }
}

fn get_opt_str(dec: &mut StateDecoder<'_>) -> Result<Option<String>, SnapshotError> {
    match dec.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(dec.get_str()?)),
        _ => Err(SnapshotError::Malformed("bad option flag")),
    }
}

// ---------------------------------------------------------------------------
// Case checkpoints
// ---------------------------------------------------------------------------

/// Serialize one open case. The envelope key is the process's snapshot
/// key, so a stale spill file fails closed at `decode` time rather than
/// resuming against a changed process.
pub fn encode_case(c: &CaseCheckpoint) -> Vec<u8> {
    let mut enc = StateEncoder::new();
    enc.put_sym(c.case);
    enc.put_sym(c.purpose);
    enc.put_u64(c.state.consumed as u64);
    enc.put_u64(c.state.explored as u64);
    enc.put_u64(c.state.peak as u64);
    match c.state.first_time {
        None => enc.put_u8(0),
        Some(t) => {
            enc.put_u8(1);
            enc.put_u64(t.0);
        }
    }
    put_opt_str(&mut enc, c.state.case_name.as_deref());
    enc.put_len(c.entries.len());
    for e in &c.entries {
        put_entry(&mut enc, e);
    }
    enc.put_u64(c.entries_dropped);
    enc.put_u64(c.last_seen.0);
    enc.put_len(c.state.confs.len());
    for m in &c.state.confs {
        enc.put_state(m);
    }
    seal(CASE_MAGIC, c.process_key, enc.into_payload())
}

/// Decode one case checkpoint. States come back re-normalized under this
/// run's symbol order; `process_key` is the envelope key (validated
/// against the auditor's registry by the restore path, not here).
pub fn decode_case(bytes: &[u8]) -> Result<CaseCheckpoint, SnapshotError> {
    let (process_key, payload) = open(bytes, CASE_MAGIC)?;
    let mut dec = StateDecoder::new(payload)?;
    let case = dec.get_sym()?;
    let purpose = dec.get_sym()?;
    let consumed = dec.get_u64()? as usize;
    let explored = dec.get_u64()? as usize;
    let peak = dec.get_u64()? as usize;
    let first_time = match dec.get_u8()? {
        0 => None,
        1 => Some(Timestamp(dec.get_u64()?)),
        _ => return Err(SnapshotError::Malformed("bad first-time flag")),
    };
    let case_name = get_opt_str(&mut dec)?;
    let n = dec.get_len()?;
    let entries = (0..n)
        .map(|_| get_entry(&mut dec))
        .collect::<Result<Vec<_>, _>>()?;
    let entries_dropped = dec.get_u64()?;
    let last_seen = Timestamp(dec.get_u64()?);
    let n = dec.get_len()?;
    let confs = (0..n)
        .map(|_| dec.get_state())
        .collect::<Result<Vec<_>, _>>()?;
    dec.finish()?;
    Ok(CaseCheckpoint {
        case,
        purpose,
        process_key,
        state: SessionState {
            confs,
            peak,
            explored,
            consumed,
            first_time,
            case_name,
        },
        entries,
        entries_dropped,
        last_seen,
    })
}

// ---------------------------------------------------------------------------
// Monitor checkpoints
// ---------------------------------------------------------------------------

/// Serialize a whole monitor. Each open case is a complete nested `PCLC`
/// blob — identical bytes to its spill file.
pub fn encode_monitor(m: &MonitorCheckpoint) -> Vec<u8> {
    let mut enc = StateEncoder::new();
    enc.put_u64(m.stream_offset);
    enc.put_len(m.cases.len());
    let mut nested: Vec<Vec<u8>> = Vec::with_capacity(m.cases.len());
    for c in &m.cases {
        nested.push(encode_case(c));
    }
    let mut payload = enc.into_payload();
    for blob in &nested {
        payload.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        payload.extend_from_slice(blob);
    }
    // Closed cases and alarm order go in a second symbol-table section so
    // the nested raw blobs do not interleave with interned symbols.
    let mut tail = StateEncoder::new();
    tail.put_len(m.closed.len());
    for c in &m.closed {
        tail.put_sym(c.case);
        tail.put_u64(c.after_alarm);
        put_infringement(&mut tail, &c.infringement);
        put_severity(&mut tail, &c.severity);
        // The breadth set: resumed monitors keep absorbing post-alarm
        // entries into the severity assessment.
        tail.put_len(c.subjects.len());
        for &s in &c.subjects {
            tail.put_sym(s);
        }
    }
    tail.put_len(m.alarm_order.len());
    for &c in &m.alarm_order {
        tail.put_sym(c);
    }
    payload.extend_from_slice(&tail.into_payload());
    seal(MONITOR_MAGIC, MONITOR_KEY, payload)
}

/// Decode a whole-monitor checkpoint.
pub fn decode_monitor(bytes: &[u8]) -> Result<MonitorCheckpoint, SnapshotError> {
    let (_, payload) = open(bytes, MONITOR_MAGIC)?;
    // Head section: stream offset + case count.
    let mut dec = StateDecoder::new(payload)?;
    let stream_offset = dec.get_u64()?;
    let ncases = dec.get_len()?;
    let mut pos = dec.consumed_bytes();
    let mut cases = Vec::with_capacity(ncases);
    for _ in 0..ncases {
        if pos + 4 > payload.len() {
            return Err(SnapshotError::Truncated);
        }
        let len = u32::from_le_bytes(payload[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        pos += 4;
        if pos + len > payload.len() {
            return Err(SnapshotError::Truncated);
        }
        cases.push(decode_case(&payload[pos..pos + len])?);
        pos += len;
    }
    // Tail section: closed cases + alarm order.
    let mut tail = StateDecoder::new(&payload[pos..])?;
    let nclosed = tail.get_len()?;
    let mut closed = Vec::with_capacity(nclosed);
    for _ in 0..nclosed {
        let case = tail.get_sym()?;
        let after_alarm = tail.get_u64()?;
        let infringement = get_infringement(&mut tail)?;
        let severity = get_severity(&mut tail)?;
        let nsubjects = tail.get_len()?;
        let subjects = (0..nsubjects)
            .map(|_| tail.get_sym())
            .collect::<Result<std::collections::BTreeSet<_>, _>>()?;
        closed.push(ClosedCase {
            case,
            infringement,
            severity,
            subjects,
            after_alarm,
        });
    }
    let nalarms = tail.get_len()?;
    let alarm_order = (0..nalarms)
        .map(|_| tail.get_sym())
        .collect::<Result<Vec<_>, _>>()?;
    tail.finish()?;
    Ok(MonitorCheckpoint {
        stream_offset,
        cases,
        closed,
        alarm_order,
    })
}

// ---------------------------------------------------------------------------
// Sharded checkpoints
// ---------------------------------------------------------------------------

/// Serialize a sharded monitor: the shard count followed by one complete
/// nested `PCLM` blob per shard, in shard order.
pub fn encode_sharded(shards: &[Vec<u8>]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(shards.len() as u32).to_le_bytes());
    for blob in shards {
        payload.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        payload.extend_from_slice(blob);
    }
    seal(SHARDED_MAGIC, MONITOR_KEY, payload)
}

/// Split a sharded checkpoint back into its per-shard monitor blobs.
pub fn decode_sharded(bytes: &[u8]) -> Result<Vec<Vec<u8>>, SnapshotError> {
    let (_, payload) = open(bytes, SHARDED_MAGIC)?;
    if payload.len() < 4 {
        return Err(SnapshotError::Truncated);
    }
    let n = u32::from_le_bytes(payload[..4].try_into().expect("4 bytes")) as usize;
    let mut pos = 4;
    let mut shards = Vec::with_capacity(n);
    for _ in 0..n {
        if pos + 8 > payload.len() {
            return Err(SnapshotError::Truncated);
        }
        let len = u64::from_le_bytes(payload[pos..pos + 8].try_into().expect("8 bytes")) as usize;
        pos += 8;
        if pos + len > payload.len() {
            return Err(SnapshotError::Truncated);
        }
        shards.push(payload[pos..pos + len].to_vec());
        pos += len;
    }
    if pos != payload.len() {
        return Err(SnapshotError::Malformed("trailing bytes after shards"));
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmn::encode::encode;
    use bpmn::models::fig8_exclusive;
    use cows::sym;
    use policy::statement::Action;

    fn entry(task: &str, case: &str, minute: u64) -> LogEntry {
        LogEntry::success(
            "Bob",
            "Cardiologist",
            Action::Read,
            Some(ObjectId::of_subject("Jane", "EPR/Clinical")),
            task,
            case,
            Timestamp(minute),
        )
    }

    fn sample_case() -> CaseCheckpoint {
        CaseCheckpoint {
            case: sym("HT-7"),
            purpose: sym("treatment"),
            process_key: 0xfeed_beef,
            state: SessionState {
                confs: vec![encode(&fig8_exclusive()).initial()],
                peak: 3,
                explored: 17,
                consumed: 5,
                first_time: Some(Timestamp(201007060900)),
                case_name: Some("HT-7".to_string()),
            },
            entries: vec![entry("T06", "HT-7", 201007060900)],
            entries_dropped: 2,
            last_seen: Timestamp(201007060905),
        }
    }

    #[test]
    fn case_checkpoint_round_trips_byte_identically() {
        let c = sample_case();
        let bytes = encode_case(&c);
        let back = decode_case(&bytes).unwrap();
        assert_eq!(back, c);
        // Re-encoding the decoded checkpoint reproduces the exact bytes —
        // the property eviction/rehydration relies on.
        assert_eq!(encode_case(&back), bytes);
    }

    #[test]
    fn monitor_checkpoint_round_trips() {
        let inf = Infringement {
            entry_index: 0,
            entry: entry("T06", "HT-99", 201007060900),
            expected: vec!["Nurse.T01".to_string(), "sys.Err".to_string()],
            active: vec![],
            kind: InfringementKind::ProcessDeviation,
        };
        let m = MonitorCheckpoint {
            stream_offset: 12_345,
            cases: vec![sample_case()],
            closed: vec![ClosedCase {
                case: sym("HT-99"),
                infringement: inf,
                severity: SeverityAssessment {
                    unaccounted_entries: 2,
                    max_sensitivity: 1.5,
                    subjects_touched: 1,
                    score: 3.25,
                },
                subjects: [sym("Jane")].into_iter().collect(),
                after_alarm: 4,
            }],
            alarm_order: vec![sym("HT-99")],
        };
        let bytes = encode_monitor(&m);
        let back = decode_monitor(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(encode_monitor(&back), bytes);
    }

    #[test]
    fn corruption_is_fail_open() {
        let bytes = encode_case(&sample_case());
        // Magic.
        assert_eq!(decode_case(b"XXXX").unwrap_err(), SnapshotError::BadMagic);
        // Every truncation point fails with a typed error, never a panic.
        for len in 0..bytes.len() {
            assert!(decode_case(&bytes[..len]).is_err());
        }
        // A flipped payload byte trips the checksum.
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 0xff;
        assert!(matches!(
            decode_case(&bad).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));
        // Version bump is rejected.
        let mut vbad = bytes.clone();
        vbad[4] = 99;
        assert_eq!(
            decode_case(&vbad).unwrap_err(),
            SnapshotError::VersionMismatch {
                found: 99,
                expected: CHECKPOINT_VERSION
            }
        );
    }

    #[test]
    fn sharded_checkpoint_round_trips() {
        let m = MonitorCheckpoint {
            stream_offset: 9,
            cases: vec![sample_case()],
            closed: vec![],
            alarm_order: vec![],
        };
        let shards = vec![encode_monitor(&m), encode_monitor(&m)];
        let bytes = encode_sharded(&shards);
        let back = decode_sharded(&bytes).unwrap();
        assert_eq!(back, shards);
        for blob in &back {
            assert_eq!(decode_monitor(blob).unwrap(), m);
        }
        for len in 0..bytes.len() {
            assert!(decode_sharded(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn monitor_rejects_trailing_garbage() {
        let m = MonitorCheckpoint {
            stream_offset: 0,
            cases: vec![],
            closed: vec![],
            alarm_order: vec![],
        };
        let mut bytes = encode_monitor(&m);
        assert_eq!(decode_monitor(&bytes).unwrap(), m);
        bytes.push(0);
        assert!(decode_monitor(&bytes).is_err());
    }
}
