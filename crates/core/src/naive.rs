//! The naïve purpose-control baseline the paper rejects.
//!
//! §1: "A naïve approach for purpose control would be to generate the
//! transition system of the COWS process model and then verify if the audit
//! trail corresponds to a valid trace of the transition system.
//! Unfortunately, the number of possible traces can be infinite, for
//! instance when the process has a loop, making this approach not
//! feasible."
//!
//! This module implements exactly that approach — bounded, so the blow-up
//! surfaces as [`ExploreError::TraceLimit`] instead of divergence — both to
//! reproduce the paper's argument quantitatively (bench `naive_vs_replay`)
//! and as a cross-validation oracle for Algorithm 1 on small loop-free
//! processes.

use audit::entry::{LogEntry, TaskStatus};
use bpmn::encode::Encoded;
use cows::error::ExploreError;
use cows::lts::{explore, ExploreLimits};
use cows::observe::Observation;
use policy::hierarchy::RoleHierarchy;

/// Bounds for the naïve enumeration.
#[derive(Clone, Copy, Debug)]
pub struct NaiveLimits {
    pub explore: ExploreLimits,
    /// Maximum observable-trace length enumerated.
    pub max_trace_len: usize,
    /// Maximum number of distinct traces before giving up.
    pub max_traces: usize,
}

impl Default for NaiveLimits {
    fn default() -> Self {
        NaiveLimits {
            explore: ExploreLimits::default(),
            max_trace_len: 64,
            max_traces: 1_000_000,
        }
    }
}

/// Statistics of a naïve check — the cost the paper's Algorithm 1 avoids.
#[derive(Clone, Debug)]
pub struct NaiveCheck {
    pub accepted: bool,
    pub lts_states: usize,
    pub traces_enumerated: usize,
}

/// Collapse a case projection into the observation sequence it induces:
/// consecutive successful entries of the same `(role, task)` are one task
/// start; a failure is `sys·Err`.
///
/// This collapse is exact only when repeated task entries are adjacent —
/// with interleaved parallel branches the naïve approach cannot tell an
/// absorbed action from a fresh start, one more reason the paper's
/// configuration-based algorithm is needed.
pub fn collapse_entries(entries: &[&LogEntry]) -> Vec<(cows::Symbol, cows::Symbol, TaskStatus)> {
    let mut out: Vec<(cows::Symbol, cows::Symbol, TaskStatus)> = Vec::new();
    for e in entries {
        match out.last() {
            Some(&(r, t, TaskStatus::Success))
                if e.status == TaskStatus::Success && r == e.role && t == e.task => {}
            _ => out.push((e.role, e.task, e.status)),
        }
    }
    out
}

/// Naïvely check a case projection: enumerate every observable trace of
/// the process LTS (bounded) and test whether the collapsed entry sequence
/// occurs among them.
pub fn naive_check(
    encoded: &Encoded,
    hierarchy: &RoleHierarchy,
    entries: &[&LogEntry],
    limits: &NaiveLimits,
) -> Result<NaiveCheck, ExploreError> {
    let lts = explore(&encoded.service, limits.explore)?;
    let traces = lts.observable_traces(
        &encoded.observability,
        limits.max_trace_len.min(entries.len().max(1)),
        limits.max_traces,
    )?;
    let want = collapse_entries(entries);
    let accepted = traces.iter().any(|trace| {
        trace.len() == want.len()
            && trace
                .iter()
                .zip(&want)
                .all(|(obs, &(role, task, status))| match (obs, status) {
                    (Observation::Task { role: r, task: t }, TaskStatus::Success) => {
                        *t == task && hierarchy.is_specialization_of(role, *r)
                    }
                    (Observation::Error, TaskStatus::Failure) => true,
                    _ => false,
                })
    });
    Ok(NaiveCheck {
        accepted,
        lts_states: lts.state_count(),
        traces_enumerated: traces.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{check_case, CheckOptions};
    use audit::time::Timestamp;
    use bpmn::encode::encode;
    use bpmn::models::{fig10_message_cycle, fig8_exclusive};
    use policy::statement::Action;

    fn ok(role: &str, task: &str, minute: u64) -> LogEntry {
        LogEntry {
            user: cows::sym("u"),
            role: cows::sym(role),
            action: Action::Read,
            object: None,
            task: cows::sym(task),
            case: cows::sym("c"),
            time: Timestamp(minute),
            status: TaskStatus::Success,
        }
    }

    #[test]
    fn collapse_merges_adjacent_runs() {
        let entries = [ok("P", "T", 1), ok("P", "T", 2), ok("P", "T1", 3)];
        let refs: Vec<&LogEntry> = entries.iter().collect();
        let c = collapse_entries(&refs);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn naive_agrees_with_algorithm1_on_loop_free_process() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        let good = [ok("P", "T", 1), ok("P", "T2", 2)];
        let bad = [ok("P", "T2", 1)];
        for (entries, expect) in [(&good[..], true), (&bad[..], false)] {
            let refs: Vec<&LogEntry> = entries.iter().collect();
            let naive = naive_check(&encoded, &h, &refs, &NaiveLimits::default()).unwrap();
            let replay = check_case(&encoded, &h, &refs, &CheckOptions::default()).unwrap();
            assert_eq!(naive.accepted, expect);
            assert_eq!(replay.verdict.is_compliant(), expect);
        }
    }

    #[test]
    fn loops_blow_up_the_naive_enumeration() {
        // Fig. 10's cycle makes the trace set unbounded; with a small trace
        // budget the enumeration must fail where Algorithm 1 succeeds.
        let encoded = encode(&fig10_message_cycle());
        let h = RoleHierarchy::new();
        let entries: Vec<LogEntry> = (0..40)
            .map(|i| {
                ok(
                    if i % 2 == 0 { "P1" } else { "P2" },
                    if i % 2 == 0 { "T1" } else { "T2" },
                    i,
                )
            })
            .collect();
        let refs: Vec<&LogEntry> = entries.iter().collect();
        let err = naive_check(
            &encoded,
            &h,
            &refs,
            &NaiveLimits {
                max_traces: 30,
                ..NaiveLimits::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, ExploreError::TraceLimit { limit: 30 });
        // Algorithm 1 replays the same 40 entries without trouble.
        let replay = check_case(&encoded, &h, &refs, &CheckOptions::default()).unwrap();
        assert!(replay.verdict.is_compliant());
    }
}
