//! Incremental replay sessions.
//!
//! §4: "the analysis of the audit trail may lead the computation to a state
//! for which further activities are still possible. In this case the
//! analysis should be resumed when new actions within the process instance
//! are recorded." A [`ReplaySession`] is that resumable computation: feed
//! it log entries as they arrive; it maintains the configuration set of
//! Algorithm 1 across calls and reports the deviation the moment an entry
//! cannot be simulated.
//!
//! The session also enforces the §4 temporal constraint: "if a maximum
//! duration for the process is defined, an infringement can be raised in
//! the case where this temporal constraint is violated."
//!
//! [`SessionCore`] is the borrow-free state machine underneath — shared
//! with [`crate::live::LiveAuditor`], which owns its processes through
//! `Arc` instead of borrowing them.

use crate::error::CheckError;
use crate::replay::{
    CaseCheck, CheckOptions, Configuration, Engine, Infringement, InfringementKind, MatchKind,
    StepRecord, Verdict,
};
use crate::trie::ReplayTrie;
use audit::entry::{LogEntry, TaskStatus};
use audit::time::Timestamp;
use bpmn::encode::Encoded;
use cows::automaton::frontier::FrontierId;
use cows::automaton::{ProcessAutomaton, StateId};
use cows::observe::Observation;
use cows::weaknext::{can_terminate_silently, weak_next_traced, Marked, WeakSuccessor};
use obs::{CaseEvidence, EvidenceStep, EvidenceViolation, ObsEvent, Recorder};
use policy::hierarchy::RoleHierarchy;
use std::collections::HashSet;
use std::sync::Arc;

/// Outcome of feeding one entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FeedOutcome {
    /// The entry is explainable; the session advanced.
    Accepted { matches: Vec<MatchKind> },
    /// The entry deviates; the session is closed with this infringement
    /// (subsequent feeds return it again).
    Rejected(Infringement),
}

/// The configuration set of Algorithm 1, in the representation of the
/// selected [`Engine`].
///
/// All variants track the same mathematical set of Def. 6 configurations.
/// `Direct` owns the `Marked` states and their precomputed successors;
/// `Automaton` holds dense [`StateId`]s into the process's shared
/// [`ProcessAutomaton`], whose invariant here is that every live id has
/// already been expanded (its edges are compiled), so a feed step is pure
/// table walking. `Trie` holds the same ids as an interned
/// [`FrontierId`] row in a shared [`ReplayTrie`], so whole
/// `configuration-set × observation` steps memoize across cases.
#[derive(Clone, Debug)]
enum ConfSet {
    Direct(Vec<Configuration>),
    Automaton {
        auto: Arc<ProcessAutomaton>,
        ids: Vec<StateId>,
    },
    Trie {
        trie: Arc<ReplayTrie>,
        frontier: FrontierId,
        /// The dense row behind `frontier` (shared with the trie's table).
        ids: Arc<[StateId]>,
    },
}

impl ConfSet {
    fn len(&self) -> usize {
        match self {
            ConfSet::Direct(confs) => confs.len(),
            ConfSet::Automaton { ids, .. } => ids.len(),
            ConfSet::Trie { ids, .. } => ids.len(),
        }
    }
}

/// The automaton-engine invariant: ids stored in the live set were expanded
/// when inserted, so their edges are always compiled.
const PRE_EXPANDED: &str = "live configuration ids are expanded on insertion";

/// The portable state of an open session — what
/// [`SessionCore::export_state`] extracts and [`SessionCore::from_state`]
/// rebuilds. Configurations are owned [`Marked`] states in live-set order;
/// the counters are Algorithm 1's bookkeeping, carried verbatim so a
/// rehydrated session is indistinguishable from one that never left
/// memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionState {
    /// The live configuration set (Def. 6), in set order.
    pub confs: Vec<Marked>,
    /// Largest configuration-set size seen.
    pub peak: usize,
    /// Total successors explored (the `max_explored` budget's counter).
    pub explored: usize,
    /// Entries consumed so far.
    pub consumed: usize,
    /// Timestamp of the first fed entry (temporal-constraint anchor).
    pub first_time: Option<Timestamp>,
    /// Case label adopted from the first fed entry.
    pub case_name: Option<String>,
}

/// The session's Algorithm-1 bookkeeping without the configuration set —
/// the run-independent half of [`SessionState`]. The churn spill path
/// pairs this with raw automaton [`StateId`]s (run-local) instead of
/// owned [`Marked`] states, skipping the deep clone that makes
/// [`SessionCore::export_state`] too expensive for eviction traffic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionMeta {
    /// Largest configuration-set size seen.
    pub peak: usize,
    /// Total successors explored (the `max_explored` budget's counter).
    pub explored: usize,
    /// Entries consumed so far.
    pub consumed: usize,
    /// Timestamp of the first fed entry (temporal-constraint anchor).
    pub first_time: Option<Timestamp>,
    /// Case label adopted from the first fed entry.
    pub case_name: Option<String>,
}

/// The configuration set of one evidence step, in capture form.
///
/// Evidence capture sits on Algorithm 1's per-entry hot path, so it must
/// not allocate or render strings there. Under the automaton engine a step
/// stores only the interned state ids (inline when there is a single live
/// configuration, the common case); the active/token sets and frontier are
/// recovered from the shared automaton at materialization time — interned
/// states and their compiled edges are immutable, so the late lookup sees
/// exactly what the replay saw. The direct engine clones whole `Marked`
/// states per step anyway, so its evidence is captured eagerly.
#[derive(Clone, Debug)]
enum RawConfs {
    Eager {
        active: Vec<String>,
        tokens: Vec<String>,
        frontier: usize,
        configurations: usize,
    },
    One(StateId),
    Many(Vec<StateId>),
}

/// One consumed entry in capture form: its projection index, how the first
/// configuration accepted it, and the surviving configuration set.
#[derive(Clone, Debug)]
struct RawStep {
    index: usize,
    matched: MatchKind,
    confs: RawConfs,
}

/// The un-rendered evidence trace of one case — everything
/// [`obs::CaseEvidence`] needs, keyed rather than stringified.
///
/// Produced by [`SessionCore::finish`] (via [`CaseCheck::evidence`]);
/// rendered by [`RawEvidence::materialize`]. The split keeps the replay
/// loop near-free under `record_evidence` while the rendered trace stays
/// byte-identical to eager capture.
#[derive(Clone, Debug)]
pub struct RawEvidence {
    /// Case label adopted from the first fed entry; the auditor overwrites
    /// it with the canonical case name after purpose resolution.
    pub case: String,
    /// Empty at the session layer; the auditor fills it in.
    pub purpose: String,
    engine: &'static str,
    verdict: &'static str,
    steps: Vec<RawStep>,
    violation: Option<EvidenceViolation>,
    /// The shared automaton the step ids point into (automaton engine only).
    auto: Option<Arc<ProcessAutomaton>>,
}

impl RawEvidence {
    /// Render the serializable trace: resolve state ids into active/token
    /// task sets and frontier sizes, and attach each step's log line.
    /// `entries` must be the same chronological case projection that was
    /// replayed.
    pub fn materialize(&self, encoded: &Encoded, entries: &[&LogEntry]) -> CaseEvidence {
        CaseEvidence {
            case: self.case.clone(),
            purpose: self.purpose.clone(),
            engine: self.engine.to_string(),
            verdict: self.verdict.to_string(),
            steps: self
                .steps
                .iter()
                .map(|s| self.render_step(encoded, entries, s))
                .collect(),
            violation: self.violation.clone(),
        }
    }

    fn render_step(&self, encoded: &Encoded, entries: &[&LogEntry], s: &RawStep) -> EvidenceStep {
        let entry = entries.get(s.index).copied();
        let matched = match (s.matched, entry) {
            (MatchKind::Absorbed, Some(e)) => format!("absorbed:{}.{}", e.role, e.task),
            (MatchKind::Started, Some(e)) => format!("started:{}.{}", e.role, e.task),
            _ => "err:sys.Err".to_string(),
        };
        let (active, tokens, frontier, configurations) = match &s.confs {
            RawConfs::Eager {
                active,
                tokens,
                frontier,
                configurations,
            } => (active.clone(), tokens.clone(), *frontier, *configurations),
            RawConfs::One(id) => self.resolve(encoded, std::slice::from_ref(id)),
            RawConfs::Many(ids) => self.resolve(encoded, ids),
        };
        EvidenceStep {
            index: s.index,
            entry: entry.map(|e| e.to_string()).unwrap_or_default(),
            matched,
            active,
            tokens,
            frontier,
            configurations,
        }
    }

    fn resolve(
        &self,
        encoded: &Encoded,
        ids: &[StateId],
    ) -> (Vec<String>, Vec<String>, usize, usize) {
        let auto = self
            .auto
            .as_deref()
            .expect("automaton evidence steps carry their automaton");
        let mut active: Vec<String> = Vec::new();
        let mut tokens: Vec<String> = Vec::new();
        let mut frontier = 0usize;
        for &id in ids {
            let state = auto.state(id);
            active.extend(state.running.iter().map(|(r, q)| format!("{r}.{q}")));
            tokens.extend(
                auto.token_tasks(id, &encoded.observability)
                    .iter()
                    .map(|(r, q)| format!("{r}.{q}")),
            );
            frontier += auto.cached_edges(id).expect(PRE_EXPANDED).len();
        }
        active.sort();
        active.dedup();
        tokens.sort();
        tokens.dedup();
        (active, tokens, frontier, ids.len())
    }
}

/// The borrow-free Algorithm-1 state machine: the configuration set plus
/// bookkeeping, independent of how the process and hierarchy are owned.
#[derive(Clone, Debug)]
pub struct SessionCore {
    opts: CheckOptions,
    confs: ConfSet,
    steps: Vec<StepRecord>,
    peak: usize,
    explored: usize,
    consumed: usize,
    first_time: Option<Timestamp>,
    infringement: Option<Infringement>,
    /// Wall-clock cutoff derived from `opts.case_deadline_ms` at open.
    deadline: Option<std::time::Instant>,
    /// Event sink for replay telemetry (noop by default, so the plain
    /// constructors pay one branch per would-be event).
    recorder: Recorder,
    /// Case name adopted from the first fed entry, for evidence labeling.
    case_name: Option<String>,
    /// Per-entry evidence in capture form, accumulated when
    /// `opts.record_evidence` is set.
    evidence_steps: Vec<RawStep>,
    evidence_violation: Option<EvidenceViolation>,
    /// Whether the trie (if any) has been fingerprint-bound to the role
    /// hierarchy this session replays under. Constructors that receive the
    /// hierarchy bind eagerly; the hierarchy-free fallback binds on the
    /// first feed. Always `true` for the other engines.
    trie_bound: bool,
}

impl SessionCore {
    /// Open at the process's initial configuration.
    pub fn new(encoded: &Encoded, opts: CheckOptions) -> Result<SessionCore, CheckError> {
        SessionCore::with_recorder(encoded, opts, Recorder::noop())
    }

    /// [`SessionCore::new`] with an event recorder: replay lifecycle events
    /// (entry steps, automaton expansions, `WeakNext` computations) are
    /// emitted on it as the session advances.
    pub fn with_recorder(
        encoded: &Encoded,
        opts: CheckOptions,
        recorder: Recorder,
    ) -> Result<SessionCore, CheckError> {
        let (confs, explored, trie_bound) = match opts.engine {
            Engine::Direct => {
                let state = encoded.initial();
                let next =
                    weak_next_traced(&state, &encoded.observability, opts.weaknext, &recorder)?;
                let explored = next.len();
                (
                    ConfSet::Direct(vec![Configuration { state, next }]),
                    explored,
                    true,
                )
            }
            Engine::Automaton => {
                let auto = encoded.automaton.clone();
                let id = auto.initial_id(&encoded.service);
                let edges =
                    auto.successors_traced(id, &encoded.observability, opts.weaknext, &recorder)?;
                let explored = edges.len();
                (
                    ConfSet::Automaton {
                        auto,
                        ids: vec![id],
                    },
                    explored,
                    true,
                )
            }
            Engine::Trie => {
                // Hierarchy-free fallback: a private per-session trie that
                // binds lazily on the first feed. Correct (same verdicts)
                // but unshared — callers wanting cross-case memoization go
                // through [`SessionCore::with_trie`] instead.
                let trie = Arc::new(ReplayTrie::new(encoded.automaton.clone()));
                let (frontier, ids, explored) = trie.root(encoded, opts.weaknext, &recorder)?;
                (
                    ConfSet::Trie {
                        trie,
                        frontier,
                        ids,
                    },
                    explored,
                    false,
                )
            }
        };
        Ok(SessionCore {
            opts,
            confs,
            steps: Vec::new(),
            peak: 1,
            explored,
            consumed: 0,
            first_time: None,
            infringement: None,
            deadline: opts
                .case_deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms)),
            recorder,
            case_name: None,
            evidence_steps: Vec::new(),
            evidence_violation: None,
            trie_bound,
        })
    }

    /// Open at the process's initial configuration under a *shared*
    /// [`ReplayTrie`] — the cross-case memoizing variant of the
    /// [`Engine::Trie`] engine. The trie is fingerprint-bound to
    /// `hierarchy` here, so a trie reused under a different role hierarchy
    /// fails fast with [`CheckError::EngineConfig`] instead of serving
    /// cached transitions computed under different specialization rules.
    pub fn with_trie(
        encoded: &Encoded,
        opts: CheckOptions,
        trie: Arc<ReplayTrie>,
        hierarchy: &RoleHierarchy,
        recorder: Recorder,
    ) -> Result<SessionCore, CheckError> {
        debug_assert!(matches!(opts.engine, Engine::Trie));
        trie.bind(hierarchy)?;
        let (frontier, ids, explored) = trie.root(encoded, opts.weaknext, &recorder)?;
        Ok(SessionCore {
            opts,
            confs: ConfSet::Trie {
                trie,
                frontier,
                ids,
            },
            steps: Vec::new(),
            peak: 1,
            explored,
            consumed: 0,
            first_time: None,
            infringement: None,
            deadline: opts
                .case_deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms)),
            recorder,
            case_name: None,
            evidence_steps: Vec::new(),
            evidence_violation: None,
            trie_bound: true,
        })
    }

    /// Materialize the live configurations (Def. 6). Under the automaton
    /// engine this reconstructs owned `Marked` states and successor vectors
    /// from the compiled tables — use the session for replay and this only
    /// for inspection.
    pub fn configurations(&self) -> Vec<Configuration> {
        match &self.confs {
            ConfSet::Direct(confs) => confs.clone(),
            ConfSet::Automaton { auto, ids } => Self::materialize_ids(auto, ids),
            ConfSet::Trie { trie, ids, .. } => Self::materialize_ids(trie.automaton(), ids),
        }
    }

    fn materialize_ids(auto: &Arc<ProcessAutomaton>, ids: &[StateId]) -> Vec<Configuration> {
        ids.iter()
            .map(|&id| {
                let edges = auto.cached_edges(id).expect(PRE_EXPANDED);
                Configuration {
                    state: (*auto.state(id)).clone(),
                    next: edges
                        .iter()
                        .map(|&(observation, sid)| WeakSuccessor {
                            observation,
                            state: (*auto.state(sid)).clone(),
                        })
                        .collect(),
                }
            })
            .collect()
    }

    pub fn consumed(&self) -> usize {
        self.consumed
    }

    pub fn is_closed(&self) -> bool {
        self.infringement.is_some()
    }

    pub fn infringement(&self) -> Option<&Infringement> {
        self.infringement.as_ref()
    }

    /// The observations the process would accept next.
    pub fn expected_observations(&self) -> Vec<String> {
        let mut v: Vec<String> = Vec::new();
        match &self.confs {
            ConfSet::Direct(confs) => {
                for c in confs {
                    v.extend(c.next.iter().map(|s| s.observation.to_string()));
                }
            }
            ConfSet::Automaton { auto, ids } => {
                for &id in ids {
                    let edges = auto.cached_edges(id).expect(PRE_EXPANDED);
                    v.extend(edges.iter().map(|(o, _)| o.to_string()));
                }
            }
            ConfSet::Trie { trie, ids, .. } => {
                let auto = trie.automaton();
                for &id in ids.iter() {
                    let edges = auto.cached_edges(id).expect(PRE_EXPANDED);
                    v.extend(edges.iter().map(|(o, _)| o.to_string()));
                }
            }
        }
        v.sort();
        v.dedup();
        v
    }

    /// Tasks currently running in some configuration.
    pub fn active_tasks(&self) -> Vec<String> {
        let mut v: Vec<String> = Vec::new();
        match &self.confs {
            ConfSet::Direct(confs) => {
                for c in confs {
                    v.extend(c.state.running.iter().map(|(r, q)| format!("{r}.{q}")));
                }
            }
            ConfSet::Automaton { auto, ids } => {
                for &id in ids {
                    let state = auto.state(id);
                    v.extend(state.running.iter().map(|(r, q)| format!("{r}.{q}")));
                }
            }
            ConfSet::Trie { trie, ids, .. } => {
                let auto = trie.automaton();
                for &id in ids.iter() {
                    let state = auto.state(id);
                    v.extend(state.running.iter().map(|(r, q)| format!("{r}.{q}")));
                }
            }
        }
        v.sort();
        v.dedup();
        v
    }

    /// Total `WeakNext` frontier size: the sum of expected-next observation
    /// counts across the live configurations.
    fn frontier_size(&self) -> usize {
        match &self.confs {
            ConfSet::Direct(confs) => confs.iter().map(|c| c.next.len()).sum(),
            ConfSet::Automaton { auto, ids } => ids
                .iter()
                .map(|&id| auto.cached_edges(id).expect(PRE_EXPANDED).len())
                .sum(),
            ConfSet::Trie { trie, ids, .. } => {
                let auto = trie.automaton();
                ids.iter()
                    .map(|&id| auto.cached_edges(id).expect(PRE_EXPANDED).len())
                    .sum()
            }
        }
    }

    /// Token tasks (Fig. 6) flattened across configurations, sorted and
    /// deduplicated — the evidence-trace rendering of "what could still
    /// start".
    fn token_task_set(&self, encoded: &Encoded) -> Vec<String> {
        let mut v: Vec<String> = match &self.confs {
            ConfSet::Direct(confs) => confs
                .iter()
                .flat_map(|c| {
                    c.state
                        .token_tasks(&encoded.observability)
                        .iter()
                        .map(|(r, q)| format!("{r}.{q}"))
                        .collect::<Vec<_>>()
                })
                .collect(),
            ConfSet::Automaton { auto, ids } => ids
                .iter()
                .flat_map(|&id| {
                    auto.token_tasks(id, &encoded.observability)
                        .iter()
                        .map(|(r, q)| format!("{r}.{q}"))
                        .collect::<Vec<_>>()
                })
                .collect(),
            ConfSet::Trie { trie, ids, .. } => {
                let auto = trie.automaton();
                ids.iter()
                    .flat_map(|&id| {
                        auto.token_tasks(id, &encoded.observability)
                            .iter()
                            .map(|(r, q)| format!("{r}.{q}"))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            }
        };
        v.sort();
        v.dedup();
        v
    }

    /// Feed the next log entry of the case (chronological order is the
    /// caller's responsibility, as in Def. 5).
    pub fn feed(
        &mut self,
        encoded: &Encoded,
        hierarchy: &RoleHierarchy,
        entry: &LogEntry,
    ) -> Result<FeedOutcome, CheckError> {
        if let Some(inf) = &self.infringement {
            return Ok(FeedOutcome::Rejected(inf.clone()));
        }
        let entry_index = self.consumed;
        if self.case_name.is_none() {
            self.case_name = Some(entry.case.to_string());
        }

        // Chaos failpoints (inert unless a test armed them).
        if self.opts.failpoints.panic_case == Some(entry.case) {
            panic!(
                "failpoint: forced panic while consuming case {}",
                entry.case
            );
        }
        if let Some((case, ms)) = self.opts.failpoints.stall_case {
            if case == entry.case {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }

        // Fault isolation: a case that outlives its wall-clock budget is
        // aborted as *inconclusive* — an engine limit, never a verdict.
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                return Err(CheckError::DeadlineExceeded {
                    entry_index,
                    limit_ms: self.opts.case_deadline_ms.unwrap_or(0),
                });
            }
        }

        // Temporal constraint (§4): the whole case must fit in the window.
        let start = *self.first_time.get_or_insert(entry.time);
        if let Some(limit) = self.opts.max_case_minutes {
            let elapsed = entry.time.0.saturating_sub(start.0);
            if elapsed > limit {
                let inf = Infringement {
                    entry_index,
                    entry: entry.clone(),
                    expected: Vec::new(),
                    active: self.active_tasks(),
                    kind: InfringementKind::TemporalViolation {
                        elapsed_minutes: elapsed,
                        limit_minutes: limit,
                    },
                };
                if self.opts.record_evidence {
                    self.evidence_violation = Some(EvidenceViolation {
                        entry_index,
                        entry: entry.to_string(),
                        expected: Vec::new(),
                        kind: "temporal-violation".to_string(),
                    });
                }
                self.infringement = Some(inf.clone());
                return Ok(FeedOutcome::Rejected(inf));
            }
        }

        let role_matches = |entry_role: cows::Symbol, pool_role: cows::Symbol| {
            hierarchy.is_specialization_of(entry_role, pool_role)
        };

        let mut matches: Vec<MatchKind> = Vec::new();

        let next_confs: ConfSet = match &self.confs {
            ConfSet::Direct(confs) => {
                let mut next_confs: Vec<Configuration> = Vec::new();
                let mut seen: HashSet<Marked> = HashSet::new();
                for conf in confs {
                    let task_running = conf
                        .state
                        .running
                        .iter()
                        .any(|&(r, q)| q == entry.task && role_matches(entry.role, r));

                    // Line 8: absorbed only if active and successful.
                    if task_running && entry.status == TaskStatus::Success {
                        if seen.insert(conf.state.clone()) {
                            next_confs.push(conf.clone());
                        }
                        matches.push(MatchKind::Absorbed);
                        continue;
                    }

                    // Lines 9–13: consume an observable successor.
                    for succ in &conf.next {
                        let accept = match (succ.observation, entry.status) {
                            (Observation::Task { role, task }, TaskStatus::Success) => {
                                task == entry.task && role_matches(entry.role, role)
                            }
                            (Observation::Error, TaskStatus::Failure) => true,
                            _ => false,
                        };
                        if !accept {
                            continue;
                        }
                        matches.push(match succ.observation {
                            Observation::Error => MatchKind::Failed,
                            Observation::Task { .. } => MatchKind::Started,
                        });
                        if seen.insert(succ.state.clone()) {
                            let next = weak_next_traced(
                                &succ.state,
                                &encoded.observability,
                                self.opts.weaknext,
                                &self.recorder,
                            )?;
                            self.explored += next.len();
                            next_confs.push(Configuration {
                                state: succ.state.clone(),
                                next,
                            });
                        }
                    }
                }
                ConfSet::Direct(next_confs)
            }
            ConfSet::Automaton { auto, ids } => {
                // The same loop over interned ids: interning is bijective
                // with `Marked` equality and edge order equals `weak_next`
                // order, so matches, dedup and exploration counts are
                // identical to the direct arm.
                let mut next_ids: Vec<StateId> = Vec::new();
                let mut seen: HashSet<StateId> = HashSet::new();
                for &id in ids {
                    let state = auto.state(id);
                    let task_running = state
                        .running
                        .iter()
                        .any(|&(r, q)| q == entry.task && role_matches(entry.role, r));

                    // Line 8: absorbed only if active and successful.
                    if task_running && entry.status == TaskStatus::Success {
                        if seen.insert(id) {
                            next_ids.push(id);
                        }
                        matches.push(MatchKind::Absorbed);
                        continue;
                    }

                    // Lines 9–13: consume a compiled observable edge.
                    let edges = auto.cached_edges(id).expect(PRE_EXPANDED);
                    for &(observation, succ_id) in edges.iter() {
                        let accept = match (observation, entry.status) {
                            (Observation::Task { role, task }, TaskStatus::Success) => {
                                task == entry.task && role_matches(entry.role, role)
                            }
                            (Observation::Error, TaskStatus::Failure) => true,
                            _ => false,
                        };
                        if !accept {
                            continue;
                        }
                        matches.push(match observation {
                            Observation::Error => MatchKind::Failed,
                            Observation::Task { .. } => MatchKind::Started,
                        });
                        if seen.insert(succ_id) {
                            // Expand eagerly (maintaining the invariant) so
                            // τ-budget errors surface on the same entry as
                            // the direct engine; a warmed automaton answers
                            // from the compiled table.
                            let succ_edges = auto.successors_traced(
                                succ_id,
                                &encoded.observability,
                                self.opts.weaknext,
                                &self.recorder,
                            )?;
                            self.explored += succ_edges.len();
                            next_ids.push(succ_id);
                        }
                    }
                }
                ConfSet::Automaton {
                    auto: auto.clone(),
                    ids: next_ids,
                }
            }
            ConfSet::Trie { trie, frontier, .. } => {
                // One memoized step: the cache key covers everything the
                // loops above inspect (frontier row, entry role/task,
                // success-vs-failure), so a hit replays the exact match
                // vector, survivors and exploration delta the automaton
                // arm would have produced.
                if !self.trie_bound {
                    trie.bind(hierarchy)?;
                    self.trie_bound = true;
                }
                let step = trie.step(
                    encoded,
                    hierarchy,
                    *frontier,
                    entry,
                    self.opts.weaknext,
                    &self.recorder,
                )?;
                self.explored += step.explored_delta;
                matches.extend_from_slice(&step.matches);
                ConfSet::Trie {
                    trie: trie.clone(),
                    frontier: step.next,
                    ids: step.next_row.clone(),
                }
            }
        };

        // Fault isolation: the step budget caps total exploration work per
        // case. Checked before the verdict so an exhausted case reads as
        // inconclusive rather than as a spurious infringement.
        if let Some(limit) = self.opts.max_explored {
            if self.explored > limit {
                return Err(CheckError::StepBudgetExhausted { entry_index, limit });
            }
        }

        if next_confs.len() == 0 {
            // Line 21: the entry cannot be simulated by the process.
            let inf = Infringement {
                entry_index,
                entry: entry.clone(),
                expected: self.expected_observations(),
                active: self.active_tasks(),
                kind: InfringementKind::ProcessDeviation,
            };
            if self.opts.record_evidence {
                self.evidence_violation = Some(EvidenceViolation {
                    entry_index,
                    entry: entry.to_string(),
                    expected: inf.expected.clone(),
                    kind: "process-deviation".to_string(),
                });
            }
            self.recorder.emit(|| ObsEvent::EntryStep {
                case: entry.case.to_string(),
                index: entry_index,
                matched: "err:sys.Err".to_string(),
                frontier: 0,
            });
            self.infringement = Some(inf.clone());
            return Ok(FeedOutcome::Rejected(inf));
        }
        if next_confs.len() > self.opts.max_configurations {
            return Err(CheckError::ConfigurationLimit {
                limit: self.opts.max_configurations,
                entry_index,
            });
        }
        self.peak = self.peak.max(next_confs.len());
        if self.opts.record_trace {
            let token_tasks: Vec<Vec<String>> = match &next_confs {
                ConfSet::Direct(confs) => confs
                    .iter()
                    .map(|c| {
                        c.state
                            .token_tasks(&encoded.observability)
                            .iter()
                            .map(|(r, q)| format!("{r}.{q}"))
                            .collect()
                    })
                    .collect(),
                ConfSet::Automaton { auto, ids } => ids
                    .iter()
                    .map(|&id| {
                        auto.token_tasks(id, &encoded.observability)
                            .iter()
                            .map(|(r, q)| format!("{r}.{q}"))
                            .collect()
                    })
                    .collect(),
                ConfSet::Trie { trie, ids, .. } => {
                    let auto = trie.automaton();
                    ids.iter()
                        .map(|&id| {
                            auto.token_tasks(id, &encoded.observability)
                                .iter()
                                .map(|(r, q)| format!("{r}.{q}"))
                                .collect()
                        })
                        .collect()
                }
            };
            self.steps.push(StepRecord {
                entry_index,
                matches: matches.clone(),
                configurations: next_confs.len(),
                token_tasks,
            });
        }
        self.confs = next_confs;
        self.consumed += 1;
        if self.opts.record_evidence {
            let confs = match &self.confs {
                ConfSet::Direct(_) => RawConfs::Eager {
                    active: self.active_tasks(),
                    tokens: self.token_task_set(encoded),
                    frontier: self.frontier_size(),
                    configurations: self.confs.len(),
                },
                ConfSet::Automaton { ids, .. } => match ids.as_slice() {
                    [id] => RawConfs::One(*id),
                    _ => RawConfs::Many(ids.clone()),
                },
                ConfSet::Trie { ids, .. } => match ids.as_ref() {
                    [id] => RawConfs::One(*id),
                    _ => RawConfs::Many(ids.to_vec()),
                },
            };
            self.evidence_steps.push(RawStep {
                index: entry_index,
                matched: matches.first().copied().unwrap_or(MatchKind::Failed),
                confs,
            });
        }
        self.recorder.emit(|| ObsEvent::EntryStep {
            case: entry.case.to_string(),
            index: entry_index,
            matched: matched_label(&matches, entry),
            frontier: self.frontier_size(),
        });
        Ok(FeedOutcome::Accepted { matches })
    }

    /// Extract the portable state of an *open* session: everything `feed`
    /// mutates, with the configuration set as owned [`Marked`] states so
    /// the result is engine- and run-independent (automaton ids are
    /// run-local and never exported).
    ///
    /// Closed sessions are not exportable — the live monitor retires them
    /// into compact records instead of checkpointing them — and trace or
    /// evidence accumulation (`record_trace` / `record_evidence`) does not
    /// survive a checkpoint: those buffers replay history, which eviction
    /// exists to shed.
    pub fn export_state(&self) -> SessionState {
        debug_assert!(
            self.infringement.is_none(),
            "closed sessions are retired, not checkpointed"
        );
        let confs = match &self.confs {
            ConfSet::Direct(confs) => confs.iter().map(|c| c.state.clone()).collect(),
            ConfSet::Automaton { auto, ids } => {
                ids.iter().map(|&id| (*auto.state(id)).clone()).collect()
            }
            ConfSet::Trie { trie, ids, .. } => {
                let auto = trie.automaton();
                ids.iter().map(|&id| (*auto.state(id)).clone()).collect()
            }
        };
        SessionState {
            confs,
            peak: self.peak,
            explored: self.explored,
            consumed: self.consumed,
            first_time: self.first_time,
            case_name: self.case_name.clone(),
        }
    }

    /// The live configuration set as shared-automaton ids, or `None` under
    /// the direct engine. Ids are run-local (see [`SessionMeta`]); with
    /// [`SessionCore::export_meta`] they form the cheap churn checkpoint.
    pub fn conf_ids(&self) -> Option<&[StateId]> {
        match &self.confs {
            ConfSet::Direct(_) => None,
            ConfSet::Automaton { ids, .. } => Some(ids),
            ConfSet::Trie { ids, .. } => Some(ids),
        }
    }

    /// The bookkeeping half of [`SessionCore::export_state`], without
    /// cloning any configuration state.
    pub fn export_meta(&self) -> SessionMeta {
        debug_assert!(
            self.infringement.is_none(),
            "closed sessions are retired, not checkpointed"
        );
        SessionMeta {
            peak: self.peak,
            explored: self.explored,
            consumed: self.consumed,
            first_time: self.first_time,
            case_name: self.case_name.clone(),
        }
    }

    /// Rebuild an automaton-engine session from raw state ids — the cheap
    /// rehydrate matching [`SessionCore::conf_ids`] / `export_meta`.
    ///
    /// The ids must come from the same run and the same shared automaton
    /// (which only ever grows, so any id this process issued stays valid);
    /// an out-of-range id is rejected as a checkpoint error rather than
    /// trusted. Edges are already compiled for every id the live set ever
    /// held — `successors_traced` is then a cache hit — so the
    /// [`PRE_EXPANDED`] invariant is restored without exploration work,
    /// and like [`SessionCore::from_state`] none of it counts toward
    /// `explored`.
    pub fn from_interned(
        encoded: &Encoded,
        opts: CheckOptions,
        ids: Vec<StateId>,
        meta: SessionMeta,
    ) -> Result<SessionCore, CheckError> {
        debug_assert!(matches!(opts.engine, Engine::Automaton));
        let auto = encoded.automaton.clone();
        let known = auto.len() as u64;
        for &id in &ids {
            if u64::from(id) >= known {
                return Err(CheckError::Checkpoint {
                    detail: format!("churn checkpoint id {id} outside automaton ({known} states)"),
                });
            }
            auto.successors_traced(id, &encoded.observability, opts.weaknext, &Recorder::noop())?;
        }
        Ok(SessionCore {
            opts,
            confs: ConfSet::Automaton { auto, ids },
            steps: Vec::new(),
            peak: meta.peak,
            explored: meta.explored,
            consumed: meta.consumed,
            first_time: meta.first_time,
            infringement: None,
            deadline: opts
                .case_deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms)),
            recorder: Recorder::noop(),
            case_name: meta.case_name,
            evidence_steps: Vec::new(),
            evidence_violation: None,
            trie_bound: true,
        })
    }

    /// [`SessionCore::from_interned`] for the trie engine: the ids are
    /// validated and re-expanded against the trie's automaton, then
    /// interned as a frontier row so the rehydrated session resumes
    /// memoized stepping exactly where the evicted one left off.
    pub fn from_interned_with_trie(
        encoded: &Encoded,
        opts: CheckOptions,
        trie: Arc<ReplayTrie>,
        hierarchy: &RoleHierarchy,
        ids: Vec<StateId>,
        meta: SessionMeta,
    ) -> Result<SessionCore, CheckError> {
        debug_assert!(matches!(opts.engine, Engine::Trie));
        trie.bind(hierarchy)?;
        let auto = trie.automaton().clone();
        let known = auto.len() as u64;
        for &id in &ids {
            if u64::from(id) >= known {
                return Err(CheckError::Checkpoint {
                    detail: format!("churn checkpoint id {id} outside automaton ({known} states)"),
                });
            }
            auto.successors_traced(id, &encoded.observability, opts.weaknext, &Recorder::noop())?;
        }
        let (frontier, row) = trie.intern_frontier(&ids);
        Ok(SessionCore {
            opts,
            confs: ConfSet::Trie {
                trie,
                frontier,
                ids: row,
            },
            steps: Vec::new(),
            peak: meta.peak,
            explored: meta.explored,
            consumed: meta.consumed,
            first_time: meta.first_time,
            infringement: None,
            deadline: opts
                .case_deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms)),
            recorder: Recorder::noop(),
            case_name: meta.case_name,
            evidence_steps: Vec::new(),
            evidence_violation: None,
            trie_bound: true,
        })
    }

    /// Rebuild a session from an exported state — the rehydrate half of
    /// checkpoint/evict/rehydrate.
    ///
    /// Configurations are re-admitted in export order. Under the automaton
    /// engine each state is interned (a no-op when the shared automaton
    /// already knows it) and its successor table compiled, restoring the
    /// [`PRE_EXPANDED`] invariant; under the direct engine `weak_next` is
    /// recomputed. Neither counts toward `explored` — the exported counter
    /// already includes everything the original session explored, so a
    /// rehydrated session and its unevicted twin keep identical counters.
    /// The wall-clock `case_deadline_ms` budget is re-armed at rehydration
    /// (wall time spent evicted is not replay work).
    pub fn from_state(
        encoded: &Encoded,
        opts: CheckOptions,
        state: SessionState,
    ) -> Result<SessionCore, CheckError> {
        SessionCore::from_state_with_recorder(encoded, opts, state, Recorder::noop())
    }

    /// [`SessionCore::from_state`] with an event recorder.
    pub fn from_state_with_recorder(
        encoded: &Encoded,
        opts: CheckOptions,
        state: SessionState,
        recorder: Recorder,
    ) -> Result<SessionCore, CheckError> {
        let (confs, trie_bound) = match opts.engine {
            Engine::Direct => {
                let mut confs = Vec::with_capacity(state.confs.len());
                for m in state.confs {
                    let next =
                        weak_next_traced(&m, &encoded.observability, opts.weaknext, &recorder)?;
                    confs.push(Configuration { state: m, next });
                }
                (ConfSet::Direct(confs), true)
            }
            Engine::Automaton => {
                let auto = encoded.automaton.clone();
                let mut ids = Vec::with_capacity(state.confs.len());
                for m in state.confs {
                    let id = auto.intern(m);
                    auto.successors_traced(id, &encoded.observability, opts.weaknext, &recorder)?;
                    ids.push(id);
                }
                (ConfSet::Automaton { auto, ids }, true)
            }
            Engine::Trie => {
                // Hierarchy-free fallback (see `with_recorder`); use
                // [`SessionCore::from_state_with_trie`] for sharing.
                let trie = Arc::new(ReplayTrie::new(encoded.automaton.clone()));
                let confs =
                    Self::trie_confs_from_state(encoded, opts, &trie, state.confs, &recorder)?;
                (confs, false)
            }
        };
        Ok(SessionCore {
            opts,
            confs,
            steps: Vec::new(),
            peak: state.peak,
            explored: state.explored,
            consumed: state.consumed,
            first_time: state.first_time,
            infringement: None,
            deadline: opts
                .case_deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms)),
            recorder,
            case_name: state.case_name,
            evidence_steps: Vec::new(),
            evidence_violation: None,
            trie_bound,
        })
    }

    /// [`SessionCore::from_state`] for the trie engine with a *shared*
    /// trie: states are re-interned and expanded against the trie's
    /// automaton and the live set becomes an interned frontier row.
    pub fn from_state_with_trie(
        encoded: &Encoded,
        opts: CheckOptions,
        trie: Arc<ReplayTrie>,
        hierarchy: &RoleHierarchy,
        state: SessionState,
        recorder: Recorder,
    ) -> Result<SessionCore, CheckError> {
        debug_assert!(matches!(opts.engine, Engine::Trie));
        trie.bind(hierarchy)?;
        let confs = Self::trie_confs_from_state(encoded, opts, &trie, state.confs, &recorder)?;
        Ok(SessionCore {
            opts,
            confs,
            steps: Vec::new(),
            peak: state.peak,
            explored: state.explored,
            consumed: state.consumed,
            first_time: state.first_time,
            infringement: None,
            deadline: opts
                .case_deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms)),
            recorder,
            case_name: state.case_name,
            evidence_steps: Vec::new(),
            evidence_violation: None,
            trie_bound: true,
        })
    }

    /// Intern exported `Marked` states into the trie's automaton, restore
    /// the [`PRE_EXPANDED`] invariant, and intern the resulting live set as
    /// a frontier row.
    fn trie_confs_from_state(
        encoded: &Encoded,
        opts: CheckOptions,
        trie: &Arc<ReplayTrie>,
        states: Vec<Marked>,
        recorder: &Recorder,
    ) -> Result<ConfSet, CheckError> {
        let auto = trie.automaton().clone();
        let mut ids = Vec::with_capacity(states.len());
        for m in states {
            let id = auto.intern(m);
            auto.successors_traced(id, &encoded.observability, opts.weaknext, recorder)?;
            ids.push(id);
        }
        let (frontier, row) = trie.intern_frontier(&ids);
        Ok(ConfSet::Trie {
            trie: trie.clone(),
            frontier,
            ids: row,
        })
    }

    /// Test hook: tighten the τ-budget of an open session after the fact,
    /// to exercise finish-time budget exhaustion without touching feeds.
    #[cfg(test)]
    pub(crate) fn set_weaknext_limits(&mut self, limits: cows::weaknext::WeakNextLimits) {
        self.opts.weaknext = limits;
    }

    /// Snapshot the Algorithm-1 result for everything fed so far. The
    /// session can keep being fed afterwards — this is what "resume when
    /// new actions are recorded" needs.
    pub fn finish(&self, encoded: &Encoded) -> Result<CaseCheck, CheckError> {
        let verdict = match &self.infringement {
            Some(inf) => Verdict::Infringement(inf.clone()),
            None => {
                let mut can_complete = false;
                match &self.confs {
                    ConfSet::Direct(confs) => {
                        for conf in confs {
                            if can_terminate_silently(
                                &conf.state,
                                &encoded.observability,
                                self.opts.weaknext,
                            )? {
                                can_complete = true;
                                break;
                            }
                        }
                    }
                    ConfSet::Automaton { auto, ids } => {
                        for &id in ids {
                            if auto.can_quiesce(id, &encoded.observability, self.opts.weaknext)? {
                                can_complete = true;
                                break;
                            }
                        }
                    }
                    ConfSet::Trie { trie, ids, .. } => {
                        let auto = trie.automaton();
                        for &id in ids.iter() {
                            if auto.can_quiesce(id, &encoded.observability, self.opts.weaknext)? {
                                can_complete = true;
                                break;
                            }
                        }
                    }
                }
                Verdict::Compliant { can_complete }
            }
        };
        let evidence = if self.opts.record_evidence {
            Some(RawEvidence {
                case: self.case_name.clone().unwrap_or_default(),
                // The session does not know the purpose; the auditor fills
                // it in after purpose resolution.
                purpose: String::new(),
                engine: match self.opts.engine {
                    Engine::Direct => "direct",
                    Engine::Automaton => "automaton",
                    Engine::Trie => "trie",
                },
                verdict: match &verdict {
                    Verdict::Compliant { can_complete: true } => "compliant",
                    Verdict::Compliant {
                        can_complete: false,
                    } => "compliant-incomplete",
                    Verdict::Infringement(_) => "infringement",
                },
                steps: self.evidence_steps.clone(),
                violation: self.evidence_violation.clone(),
                auto: match &self.confs {
                    ConfSet::Direct(_) => None,
                    ConfSet::Automaton { auto, .. } => Some(auto.clone()),
                    ConfSet::Trie { trie, .. } => Some(trie.automaton().clone()),
                },
            })
        } else {
            None
        };
        Ok(CaseCheck {
            verdict,
            steps: self.steps.clone(),
            peak_configurations: self.peak,
            explored_successors: self.explored,
            evidence,
        })
    }
}

/// The stable evidence label of how an accepted entry matched: the first
/// match in configuration order (identical across engines — the
/// equivalence tests pin match vectors). `absorbed:R.T` and `started:R.T`
/// use the *entry's* role and task; a consumed `sys·Err` edge renders as
/// `err:sys.Err`.
fn matched_label(matches: &[MatchKind], entry: &LogEntry) -> String {
    match matches.first() {
        Some(MatchKind::Absorbed) => format!("absorbed:{}.{}", entry.role, entry.task),
        Some(MatchKind::Started) => format!("started:{}.{}", entry.role, entry.task),
        Some(MatchKind::Failed) | None => "err:sys.Err".to_string(),
    }
}

/// A resumable Algorithm-1 computation over one case, borrowing its process.
pub struct ReplaySession<'a> {
    encoded: &'a Encoded,
    hierarchy: &'a RoleHierarchy,
    core: SessionCore,
}

impl<'a> ReplaySession<'a> {
    /// Open a session at the process's initial configuration.
    pub fn new(
        encoded: &'a Encoded,
        hierarchy: &'a RoleHierarchy,
        opts: CheckOptions,
    ) -> Result<ReplaySession<'a>, CheckError> {
        Ok(ReplaySession {
            encoded,
            hierarchy,
            core: SessionCore::new(encoded, opts)?,
        })
    }

    /// [`ReplaySession::new`] with an event recorder (see
    /// [`SessionCore::with_recorder`]).
    pub fn with_recorder(
        encoded: &'a Encoded,
        hierarchy: &'a RoleHierarchy,
        opts: CheckOptions,
        recorder: Recorder,
    ) -> Result<ReplaySession<'a>, CheckError> {
        Ok(ReplaySession {
            encoded,
            hierarchy,
            core: SessionCore::with_recorder(encoded, opts, recorder)?,
        })
    }

    /// The live configurations (Def. 6), materialized (see
    /// [`SessionCore::configurations`]).
    pub fn configurations(&self) -> Vec<Configuration> {
        self.core.configurations()
    }

    /// Entries consumed so far.
    pub fn consumed(&self) -> usize {
        self.core.consumed()
    }

    /// Whether the session already found a deviation.
    pub fn is_closed(&self) -> bool {
        self.core.is_closed()
    }

    /// Feed the next log entry of the case.
    pub fn feed(&mut self, entry: &LogEntry) -> Result<FeedOutcome, CheckError> {
        self.core.feed(self.encoded, self.hierarchy, entry)
    }

    /// Feed a batch of entries; stops at the first rejection.
    pub fn feed_all<'e>(
        &mut self,
        entries: impl IntoIterator<Item = &'e LogEntry>,
    ) -> Result<Option<Infringement>, CheckError> {
        for e in entries {
            if let FeedOutcome::Rejected(inf) = self.feed(e)? {
                return Ok(Some(inf));
            }
        }
        Ok(None)
    }

    /// The observations the process would accept next.
    pub fn expected_observations(&self) -> Vec<String> {
        self.core.expected_observations()
    }

    /// Tasks currently running in some configuration.
    pub fn active_tasks(&self) -> Vec<String> {
        self.core.active_tasks()
    }

    /// Close the session and produce the Algorithm-1 result for everything
    /// fed so far (a snapshot — feeding can continue afterwards).
    pub fn finish(&self) -> Result<CaseCheck, CheckError> {
        self.core.finish(self.encoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmn::encode::encode;
    use bpmn::models::fig8_exclusive;
    use policy::statement::Action;

    fn entry(task: &str, minute: u64) -> LogEntry {
        LogEntry::success("u", "P", Action::Read, None, task, "c", Timestamp(minute))
    }

    #[test]
    fn session_matches_batch_check() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        let mut session = ReplaySession::new(&encoded, &h, CheckOptions::default()).unwrap();
        assert!(matches!(
            session.feed(&entry("T", 1)).unwrap(),
            FeedOutcome::Accepted { .. }
        ));
        // Mid-flight snapshot: compliant but incomplete.
        let snap = session.finish().unwrap();
        assert_eq!(
            snap.verdict,
            Verdict::Compliant {
                can_complete: false
            }
        );
        // Resume with the rest.
        assert!(matches!(
            session.feed(&entry("T1", 2)).unwrap(),
            FeedOutcome::Accepted { .. }
        ));
        let done = session.finish().unwrap();
        assert_eq!(done.verdict, Verdict::Compliant { can_complete: true });
    }

    #[test]
    fn session_rejects_and_stays_closed() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        let mut session = ReplaySession::new(&encoded, &h, CheckOptions::default()).unwrap();
        let out = session.feed(&entry("T2", 1)).unwrap();
        let FeedOutcome::Rejected(inf) = out else {
            panic!("expected rejection");
        };
        assert_eq!(inf.kind, InfringementKind::ProcessDeviation);
        assert!(session.is_closed());
        // Feeding more keeps reporting the same infringement.
        let again = session.feed(&entry("T", 2)).unwrap();
        assert!(matches!(again, FeedOutcome::Rejected(i) if i.entry_index == inf.entry_index));
    }

    #[test]
    fn temporal_constraint_raises_infringement() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        let opts = CheckOptions {
            max_case_minutes: Some(60),
            ..CheckOptions::default()
        };
        let mut session = ReplaySession::new(&encoded, &h, opts).unwrap();
        assert!(matches!(
            session.feed(&entry("T", 0)).unwrap(),
            FeedOutcome::Accepted { .. }
        ));
        // A process-valid entry arriving past the window is still flagged.
        let out = session.feed(&entry("T1", 100)).unwrap();
        let FeedOutcome::Rejected(inf) = out else {
            panic!("expected temporal rejection");
        };
        assert_eq!(
            inf.kind,
            InfringementKind::TemporalViolation {
                elapsed_minutes: 100,
                limit_minutes: 60
            }
        );
    }

    #[test]
    fn expired_deadline_aborts_as_engine_error_not_verdict() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        let opts = CheckOptions {
            // An already-expired deadline plus a stall failpoint: the very
            // first feed must abort with DeadlineExceeded.
            case_deadline_ms: Some(0),
            ..CheckOptions::default()
        };
        let mut session = ReplaySession::new(&encoded, &h, opts).unwrap();
        let err = session.feed(&entry("T", 1)).unwrap_err();
        assert_eq!(
            err,
            CheckError::DeadlineExceeded {
                entry_index: 0,
                limit_ms: 0
            }
        );
    }

    #[test]
    fn exhausted_step_budget_aborts_with_entry_index() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        let opts = CheckOptions {
            max_explored: Some(0),
            ..CheckOptions::default()
        };
        let mut session = ReplaySession::new(&encoded, &h, opts).unwrap();
        let err = session.feed(&entry("T", 1)).unwrap_err();
        assert!(
            matches!(err, CheckError::StepBudgetExhausted { limit: 0, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn panic_failpoint_fires_only_for_armed_case() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        let opts = CheckOptions {
            failpoints: crate::replay::FailPoints {
                panic_case: Some(cows::sym("poisoned")),
                ..Default::default()
            },
            ..CheckOptions::default()
        };
        // Entries of other cases replay normally.
        let mut session = ReplaySession::new(&encoded, &h, opts).unwrap();
        assert!(matches!(
            session.feed(&entry("T", 1)).unwrap(),
            FeedOutcome::Accepted { .. }
        ));
        // The armed case panics (caught here; in production the auditor's
        // catch_unwind turns this into CaseOutcome::Inconclusive).
        let poisoned =
            LogEntry::success("u", "P", Action::Read, None, "T", "poisoned", Timestamp(1));
        let mut session = ReplaySession::new(&encoded, &h, opts).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = session.feed(&poisoned);
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn exported_state_rehydrates_to_an_identical_twin() {
        for engine in [Engine::Direct, Engine::Automaton, Engine::Trie] {
            let encoded = encode(&fig8_exclusive());
            let h = RoleHierarchy::new();
            let opts = CheckOptions {
                engine,
                ..CheckOptions::default()
            };
            let mut twin = SessionCore::new(&encoded, opts).unwrap();
            twin.feed(&encoded, &h, &entry("T", 1)).unwrap();

            // Checkpoint mid-case, rebuild, and compare against the twin
            // that never left memory.
            let state = twin.export_state();
            let mut back = SessionCore::from_state(&encoded, opts, state.clone()).unwrap();
            assert_eq!(back.export_state(), state, "export is a fixed point");
            let e = entry("T1", 2);
            let a = twin.feed(&encoded, &h, &e).unwrap();
            let b = back.feed(&encoded, &h, &e).unwrap();
            assert_eq!(a, b, "{engine:?}: outcomes diverged");
            assert_eq!(back.export_state(), twin.export_state());
            assert_eq!(
                back.finish(&encoded).unwrap().verdict,
                twin.finish(&encoded).unwrap().verdict
            );
            assert_eq!(
                back.finish(&encoded).unwrap().explored_successors,
                twin.finish(&encoded).unwrap().explored_successors
            );
        }
    }

    #[test]
    fn expected_observations_exposed() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        let session = ReplaySession::new(&encoded, &h, CheckOptions::default()).unwrap();
        assert_eq!(session.expected_observations(), vec!["P.T".to_string()]);
        assert!(session.active_tasks().is_empty());
    }
}
