//! Parallel per-case auditing.
//!
//! §7: "the analysis of process instances is independent from each other,
//! allowing for massive parallelization". Cases share nothing but the
//! read-only auditor and trail, so the audit scales across worker threads
//! with no synchronization beyond result collection.

use crate::auditor::{AuditReport, Auditor, CaseResult};
use audit::trail::AuditTrail;
use cows::symbol::Symbol;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Audit every case of `trail` using `threads` worker threads.
///
/// Produces the same `cases` vector as [`Auditor::audit`] (sorted by case),
/// plus the preventive pass (run once, on the calling thread).
pub fn audit_parallel(auditor: &Auditor, trail: &AuditTrail, threads: usize) -> AuditReport {
    let cases: Vec<Symbol> = trail.cases().into_iter().collect();
    let results = check_cases_parallel(auditor, trail, &cases, threads);
    let preventive = auditor.preventive_check(trail);
    if let Some(registry) = &auditor.metrics {
        registry.add_counter("audit_preventive_violations", preventive.len() as u64);
    }
    AuditReport {
        cases: results,
        preventive_violations: preventive,
    }
}

/// The parallel core: replay `cases` across `threads` workers, work-stealing
/// from a shared counter.
pub fn check_cases_parallel(
    auditor: &Auditor,
    trail: &AuditTrail,
    cases: &[Symbol],
    threads: usize,
) -> Vec<CaseResult> {
    let threads = threads.max(1).min(cases.len().max(1));
    if threads == 1 {
        let results: Vec<CaseResult> = cases
            .iter()
            .map(|&c| auditor.check_one_case(trail, c))
            .collect();
        if let Some(registry) = &auditor.metrics {
            let mut shard = registry.shard();
            for r in &results {
                crate::metrics::record_case_metrics(&mut shard, r);
            }
            shard.flush(registry);
        }
        return results;
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, CaseResult)>> = Mutex::new(Vec::with_capacity(cases.len()));
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                // Metrics go into a worker-owned shard — the replay hot
                // loop records with plain map writes and the registry lock
                // is taken exactly once per worker, at join.
                let mut shard = auditor.metrics.as_deref().map(|m| m.shard());
                let mut local: Vec<(usize, CaseResult)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cases.len() {
                        break;
                    }
                    let result = auditor.check_one_case(trail, cases[i]);
                    if let Some(shard) = shard.as_mut() {
                        crate::metrics::record_case_metrics(shard, &result);
                    }
                    local.push((i, result));
                }
                if let (Some(mut shard), Some(registry)) = (shard, auditor.metrics.as_deref()) {
                    shard.flush(registry);
                }
                results.lock().extend(local);
            });
        }
    })
    .expect("audit worker panicked");
    let mut out = results.into_inner();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Audit a specific set of cases in parallel.
pub fn audit_cases_parallel(
    auditor: &Auditor,
    trail: &AuditTrail,
    cases: &BTreeSet<Symbol>,
    threads: usize,
) -> AuditReport {
    let cases: Vec<Symbol> = cases.iter().copied().collect();
    let results = check_cases_parallel(auditor, trail, &cases, threads);
    let preventive = auditor.preventive_check(trail);
    if let Some(registry) = &auditor.metrics {
        registry.add_counter("audit_preventive_violations", preventive.len() as u64);
    }
    AuditReport {
        cases: results,
        preventive_violations: preventive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{CaseOutcome, ProcessRegistry};
    use audit::samples::figure4_trail;
    use bpmn::models::{clinical_trial, healthcare_treatment};
    use policy::samples::{
        clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
    };

    fn auditor() -> Auditor {
        let mut registry = ProcessRegistry::new();
        registry.register(treatment(), healthcare_treatment());
        registry.register(clinical_trial_purpose(), clinical_trial());
        registry.add_case_prefix("HT-", treatment());
        registry.add_case_prefix("CT-", clinical_trial_purpose());
        Auditor::new(registry, extended_hospital_policy(), hospital_context())
    }

    fn outcome_key(o: &CaseOutcome) -> &'static str {
        match o {
            CaseOutcome::Compliant { .. } => "compliant",
            CaseOutcome::Infringement { .. } => "infringement",
            CaseOutcome::Unresolved(_) => "unresolved",
            CaseOutcome::Failed(_) => "failed",
            CaseOutcome::Inconclusive { .. } => "inconclusive",
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = auditor();
        let trail = figure4_trail();
        let seq = a.audit(&trail);
        for threads in [1, 2, 4, 8] {
            let par = audit_parallel(&a, &trail, threads);
            assert_eq!(par.cases.len(), seq.cases.len());
            for (p, s) in par.cases.iter().zip(&seq.cases) {
                assert_eq!(p.case, s.case);
                assert_eq!(outcome_key(&p.outcome), outcome_key(&s.outcome));
            }
        }
    }

    #[test]
    fn more_threads_than_cases_is_fine() {
        let a = auditor();
        let trail = figure4_trail();
        let par = audit_parallel(&a, &trail, 64);
        assert_eq!(par.cases.len(), trail.cases().len());
    }

    // --- fault isolation ------------------------------------------------
    //
    // One deliberately poisoned case (panic or deadline) must not alter
    // any other case's outcome, at any thread count, deterministically.

    fn assert_blast_radius_confined(poison: crate::replay::FailPoints, expect_reason: &str) {
        use crate::auditor::InconclusiveReason;
        let trail = figure4_trail();
        let clean = auditor().audit(&trail);
        let poisoned_case = cows::sym("HT-2");

        let mut a = auditor();
        a.options.failpoints = poison;
        if poison.stall_case.is_some() {
            // Generous enough that every healthy Fig. 4 case finishes well
            // inside it even in debug builds; the stalled case sleeps past
            // it deterministically.
            a.options.case_deadline_ms = Some(300);
        }
        for threads in [1, 2, 8] {
            // Two runs per thread count: determinism, not luck.
            for _ in 0..2 {
                let par = audit_parallel(&a, &trail, threads);
                assert_eq!(par.cases.len(), clean.cases.len());
                for (p, s) in par.cases.iter().zip(&clean.cases) {
                    assert_eq!(p.case, s.case);
                    if p.case == poisoned_case {
                        let CaseOutcome::Inconclusive { reason } = &p.outcome else {
                            panic!("poisoned case must be inconclusive, got {:?}", p.outcome);
                        };
                        match expect_reason {
                            "panicked" => {
                                assert!(matches!(reason, InconclusiveReason::Panicked { .. }))
                            }
                            "deadline" => assert!(matches!(
                                reason,
                                InconclusiveReason::DeadlineExceeded { .. }
                            )),
                            other => unreachable!("{other}"),
                        }
                    } else {
                        assert_eq!(
                            outcome_key(&p.outcome),
                            outcome_key(&s.outcome),
                            "case {} outcome changed at {threads} threads",
                            p.case
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn panicking_case_does_not_poison_the_run() {
        assert_blast_radius_confined(
            crate::replay::FailPoints {
                panic_case: Some(cows::sym("HT-2")),
                ..Default::default()
            },
            "panicked",
        );
    }

    #[test]
    fn deadline_blown_case_does_not_poison_the_run() {
        assert_blast_radius_confined(
            crate::replay::FailPoints {
                stall_case: Some((cows::sym("HT-2"), 600)),
                ..Default::default()
            },
            "deadline",
        );
    }
}
