//! Cross-case prefix-sharing replay trie.
//!
//! Thousands of cases of one process replay the same observation prefixes
//! (ROADMAP "Raw replay speed"): admissions look alike, so Algorithm 1
//! recomputes the same `configuration-set × observation →
//! configuration-set` transition once per case. [`ReplayTrie`] memoizes
//! those transitions at the *case* level, keyed on interned configuration
//! sets ([`cows::automaton::frontier::FrontierTable`]) and the observation
//! triple `(role, task, failed)` — everything the transition depends on.
//! Duplicate prefixes across cases then cost one automaton walk plus a
//! read-locked map probe per entry, skipping the per-edge role-hierarchy
//! DFS and the per-step dedup/alloc of the automaton arm.
//!
//! The trie is a *pure cache* over the automaton engine: a memoized step
//! stores exactly what the [`Engine::Automaton`](crate::replay::Engine)
//! arm would have produced (match vector, successor frontier in insertion
//! order, explored-successor delta), so verdicts, traces, counters and
//! evidence are byte-identical — property-tested in `tests/trie.rs`.
//!
//! **Sharing.** One trie lives on each
//! [`RegisteredProcess`](crate::auditor::RegisteredProcess), so
//! `audit_parallel` workers, live-monitor shards and served tenants of the
//! same process share a read-mostly root: after warm-up every worker hits
//! the same compiled transitions behind sharded read locks, and only a
//! novel transition takes a write lock.
//!
//! **Safety.** Transitions bake in role-hierarchy decisions, so the trie
//! binds to [`RoleHierarchy::fingerprint`] on first use and refuses (typed
//! [`CheckError::EngineConfig`]) to serve a session under a different
//! hierarchy. Memory is bounded: the transition cache flushes wholesale at
//! a transition cap (frontier rows persist — sessions hold [`FrontierId`]s
//! into the append-only table, and distinct live configuration sets are
//! few).

use crate::error::CheckError;
use crate::replay::{CaseCheck, CheckOptions, Infringement, InfringementKind, MatchKind, Verdict};
use audit::entry::{LogEntry, TaskStatus};
use bpmn::encode::Encoded;
use cows::automaton::frontier::{DenseBitSet, FrontierId, FrontierTable, FxBuildHasher};
use cows::automaton::{ProcessAutomaton, StateId};
use cows::observe::Observation;
use cows::weaknext::WeakNextLimits;
use cows::Symbol;
use obs::Recorder;
use parking_lot::RwLock;
use policy::hierarchy::RoleHierarchy;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Same invariant as the session's automaton arm: ids in interned frontier
/// rows were expanded when inserted, so their edges are always compiled.
const PRE_EXPANDED: &str = "trie frontier ids are expanded on insertion";

/// Transition-cache shards (keys are hashed ids; contention is write-only
/// and writes stop once the workload's transitions are warm).
const EDGE_SHARDS: usize = 16;

/// Whole-case outcome-cache shards.
const CASE_SHARDS: usize = 16;

/// Default transition cap before a wholesale flush (~tens of MB worst
/// case; realistic workloads stay orders of magnitude below it).
const DEFAULT_MAX_TRANSITIONS: usize = 1 << 18;

/// The memoization key: which configuration set consumed which
/// observation. `role`/`task`/`failed` are the only entry fields the
/// Algorithm 1 step inspects, so user, object, case and time variance
/// across cases still hits the cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct TransitionKey {
    frontier: u32,
    role: Symbol,
    task: Symbol,
    failed: bool,
}

/// One memoized `configuration-set × observation` step — exactly the
/// automaton arm's output for that step, engine-equivalence-grade.
#[derive(Debug)]
pub struct CachedStep {
    /// Match vector in configuration/edge order (the evidence labels).
    pub matches: Vec<MatchKind>,
    /// The successor configuration set, interned. Empty row ⇒ the entry
    /// cannot be simulated (process deviation).
    pub next: FrontierId,
    /// The dense successor row (shared with the table; saves a lookup).
    pub next_row: Arc<[StateId]>,
    /// What the step added to the session's `explored` counter.
    pub explored_delta: usize,
}

/// Key of the whole-case outcome cache: the replay-relevant projection of
/// a case — Algorithm 1 inspects only `(role, task, failed)` of each
/// entry — plus every budget that can change what a replay returns. Two
/// cases with equal keys *must* produce equal outcomes modulo the
/// offending entry itself, which is re-materialized per case.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CaseKey {
    max_tau_states: usize,
    max_explored: Option<usize>,
    max_configurations: usize,
    steps: Vec<(Symbol, Symbol, bool)>,
}

/// A memoized whole-case outcome, outcome-template form: everything in a
/// [`CaseCheck`] that is a pure function of the [`CaseKey`]. The
/// infringement's offending `LogEntry` is the one piece that varies across
/// cases sharing a key, so it is filled in at materialization.
enum CachedVerdict {
    Compliant {
        can_complete: bool,
    },
    Deviation {
        entry_index: usize,
        expected: Vec<String>,
        active: Vec<String>,
    },
}

struct CachedCase {
    verdict: CachedVerdict,
    peak: usize,
    explored: usize,
}

impl CachedCase {
    fn from_check(check: &CaseCheck) -> Option<CachedCase> {
        let verdict = match &check.verdict {
            Verdict::Compliant { can_complete } => CachedVerdict::Compliant {
                can_complete: *can_complete,
            },
            Verdict::Infringement(inf) => match inf.kind {
                InfringementKind::ProcessDeviation => CachedVerdict::Deviation {
                    entry_index: inf.entry_index,
                    expected: inf.expected.clone(),
                    active: inf.active.clone(),
                },
                // Cannot arise under memo-eligible options (no temporal
                // limit is set), but refuse to cache rather than assume.
                InfringementKind::TemporalViolation { .. } => return None,
            },
        };
        Some(CachedCase {
            verdict,
            peak: check.peak_configurations,
            explored: check.explored_successors,
        })
    }

    fn materialize(&self, entries: &[&LogEntry]) -> CaseCheck {
        let verdict = match &self.verdict {
            CachedVerdict::Compliant { can_complete } => Verdict::Compliant {
                can_complete: *can_complete,
            },
            CachedVerdict::Deviation {
                entry_index,
                expected,
                active,
            } => Verdict::Infringement(Infringement {
                entry_index: *entry_index,
                entry: entries[*entry_index].clone(),
                expected: expected.clone(),
                active: active.clone(),
                kind: InfringementKind::ProcessDeviation,
            }),
        };
        CaseCheck {
            verdict,
            steps: Vec::new(),
            peak_configurations: self.peak,
            explored_successors: self.explored,
            evidence: None,
        }
    }

    /// Entries the memoized replay consumed (for hit accounting).
    fn consumed(&self, total: usize) -> usize {
        match &self.verdict {
            CachedVerdict::Compliant { .. } => total,
            CachedVerdict::Deviation { entry_index, .. } => entry_index + 1,
        }
    }
}

/// Monotone counters of one trie (exported via
/// [`TrieStats::export_into`], `add_counter` semantics so multiple
/// per-purpose tries sum in one registry).
#[derive(Clone, Copy, Debug, Default)]
pub struct TrieStats {
    /// Distinct configuration-set rows interned.
    pub frontiers: u64,
    /// Transitions currently memoized.
    pub transitions: u64,
    /// Steps served from the cache.
    pub hits: u64,
    /// Steps computed (and memoized).
    pub misses: u64,
    /// Approximate bytes held (frontier rows + transition cache).
    pub bytes: u64,
}

impl TrieStats {
    pub fn export_into(&self, registry: &obs::Registry) {
        registry.add_counter("trie_frontiers", self.frontiers);
        registry.add_counter("trie_transitions", self.transitions);
        registry.add_counter("trie_hits", self.hits);
        registry.add_counter("trie_misses", self.misses);
        registry.add_counter("trie_bytes", self.bytes);
    }
}

/// The shared prefix-sharing replay cache of one process. See the module
/// docs for the contract; sessions drive it through
/// [`SessionCore::with_trie`](crate::session::SessionCore::with_trie).
pub struct ReplayTrie {
    auto: Arc<ProcessAutomaton>,
    frontiers: FrontierTable,
    edges: [RwLock<HashMap<TransitionKey, Arc<CachedStep>, FxBuildHasher>>; EDGE_SHARDS],
    /// Whole-case outcome cache: entire replays memoized by their
    /// replay-relevant projection (see [`CaseKey`]). Sits above the
    /// transition cache — a duplicate case costs one key hash and one
    /// probe instead of a per-entry session walk.
    cases: [RwLock<HashMap<CaseKey, Arc<CachedCase>, FxBuildHasher>>; CASE_SHARDS],
    /// `RoleHierarchy::fingerprint` this trie's transitions are valid for.
    bound: OnceLock<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Memoized transitions across shards (approximate, for the cap).
    transitions: AtomicUsize,
    /// Memoized whole-case outcomes (same cap as transitions).
    case_count: AtomicUsize,
    case_bytes: AtomicUsize,
    max_transitions: usize,
}

impl std::fmt::Debug for ReplayTrie {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ReplayTrie")
            .field("frontiers", &s.frontiers)
            .field("transitions", &s.transitions)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl ReplayTrie {
    /// An empty trie over `auto` with the default transition cap.
    pub fn new(auto: Arc<ProcessAutomaton>) -> ReplayTrie {
        ReplayTrie::with_max_transitions(auto, DEFAULT_MAX_TRANSITIONS)
    }

    /// An empty trie with an explicit transition cap (tests exercise the
    /// flush path with tiny caps).
    pub fn with_max_transitions(auto: Arc<ProcessAutomaton>, max: usize) -> ReplayTrie {
        ReplayTrie {
            auto,
            frontiers: FrontierTable::new(),
            edges: std::array::from_fn(|_| RwLock::new(HashMap::default())),
            cases: std::array::from_fn(|_| RwLock::new(HashMap::default())),
            bound: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            transitions: AtomicUsize::new(0),
            case_count: AtomicUsize::new(0),
            case_bytes: AtomicUsize::new(0),
            max_transitions: max.max(1),
        }
    }

    /// The automaton the memoized transitions walk.
    pub fn automaton(&self) -> &Arc<ProcessAutomaton> {
        &self.auto
    }

    /// Bind the trie to `hierarchy` (first caller wins) or verify the
    /// binding. Memoized transitions bake in role-specialization
    /// decisions, so serving them under a different hierarchy would be
    /// silently wrong — that mismatch is a typed error instead.
    pub fn bind(&self, hierarchy: &RoleHierarchy) -> Result<(), CheckError> {
        let key = hierarchy.fingerprint();
        let bound = *self.bound.get_or_init(|| key);
        if bound != key {
            return Err(CheckError::EngineConfig {
                detail: format!(
                    "replay trie bound to role hierarchy {bound:#018x}, \
                     session uses {key:#018x}"
                ),
            });
        }
        Ok(())
    }

    /// Open a session's initial frontier: the interned row holding the
    /// process's (expanded) initial state, plus the initial explored
    /// count — exactly `SessionCore::with_recorder`'s automaton arm.
    pub fn root(
        &self,
        encoded: &Encoded,
        limits: WeakNextLimits,
        recorder: &Recorder,
    ) -> Result<(FrontierId, Arc<[StateId]>, usize), CheckError> {
        debug_assert!(Arc::ptr_eq(&self.auto, &encoded.automaton));
        let id = self.auto.initial_id(&encoded.service);
        let edges = self
            .auto
            .successors_traced(id, &encoded.observability, limits, recorder)?;
        let fid = self.frontiers.intern(&[id]);
        Ok((fid, self.frontiers.row(fid), edges.len()))
    }

    /// Intern an explicit frontier row (rehydration paths). Every id must
    /// already satisfy the expanded-on-insertion invariant.
    pub fn intern_frontier(&self, ids: &[StateId]) -> (FrontierId, Arc<[StateId]>) {
        let fid = self.frontiers.intern(ids);
        (fid, self.frontiers.row(fid))
    }

    /// One Algorithm-1 step: consume `entry` from the configuration set
    /// `frontier`. Served from the cache when this set has consumed this
    /// observation before (on any case); computed via the shared automaton
    /// and memoized otherwise. τ-budget errors propagate uncached, like
    /// the automaton's own edge cache.
    pub fn step(
        &self,
        encoded: &Encoded,
        hierarchy: &RoleHierarchy,
        frontier: FrontierId,
        entry: &LogEntry,
        limits: WeakNextLimits,
        recorder: &Recorder,
    ) -> Result<Arc<CachedStep>, CheckError> {
        let key = TransitionKey {
            frontier: frontier.0,
            role: entry.role,
            task: entry.task,
            failed: entry.status == TaskStatus::Failure,
        };
        let shard = &self.edges[shard_of(&key)];
        if let Some(hit) = shard.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let step = Arc::new(self.compute(encoded, hierarchy, frontier, entry, limits, recorder)?);
        if self.transitions.load(Ordering::Relaxed) >= self.max_transitions {
            self.flush();
        }
        let mut map = shard.write();
        if map.insert(key, step.clone()).is_none() {
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(step)
    }

    /// The automaton arm of `SessionCore::feed`, verbatim: absorbed check,
    /// compiled-edge acceptance, insertion-order dedup (bitset instead of
    /// `HashSet`), eager successor expansion.
    fn compute(
        &self,
        encoded: &Encoded,
        hierarchy: &RoleHierarchy,
        frontier: FrontierId,
        entry: &LogEntry,
        limits: WeakNextLimits,
        recorder: &Recorder,
    ) -> Result<CachedStep, CheckError> {
        let ids = self.frontiers.row(frontier);
        let mut matches: Vec<MatchKind> = Vec::new();
        let mut next_ids: Vec<StateId> = Vec::new();
        let mut seen = DenseBitSet::with_capacity(self.auto.len());
        let mut explored_delta = 0usize;
        for &id in ids.iter() {
            let state = self.auto.state(id);
            let task_running = state
                .running
                .iter()
                .any(|&(r, q)| q == entry.task && hierarchy.is_specialization_of(entry.role, r));

            // Line 8: absorbed only if active and successful.
            if task_running && entry.status == TaskStatus::Success {
                if seen.insert(id) {
                    next_ids.push(id);
                }
                matches.push(MatchKind::Absorbed);
                continue;
            }

            // Lines 9–13: consume a compiled observable edge.
            let edges = self.auto.cached_edges(id).expect(PRE_EXPANDED);
            for &(observation, succ_id) in edges.iter() {
                let accept = match (observation, entry.status) {
                    (Observation::Task { role, task }, TaskStatus::Success) => {
                        task == entry.task && hierarchy.is_specialization_of(entry.role, role)
                    }
                    (Observation::Error, TaskStatus::Failure) => true,
                    _ => false,
                };
                if !accept {
                    continue;
                }
                matches.push(match observation {
                    Observation::Error => MatchKind::Failed,
                    Observation::Task { .. } => MatchKind::Started,
                });
                if seen.insert(succ_id) {
                    let succ_edges = self.auto.successors_traced(
                        succ_id,
                        &encoded.observability,
                        limits,
                        recorder,
                    )?;
                    explored_delta += succ_edges.len();
                    next_ids.push(succ_id);
                }
            }
        }
        let next = self.frontiers.intern(&next_ids);
        Ok(CachedStep {
            matches,
            next,
            next_row: self.frontiers.row(next),
            explored_delta,
        })
    }

    /// Drop every memoized transition (the cap eviction policy). Frontier
    /// rows persist — sessions hold ids into the append-only table.
    fn flush(&self) {
        for shard in &self.edges {
            shard.write().clear();
        }
        self.transitions.store(0, Ordering::Relaxed);
    }

    fn lookup_case(&self, key: &CaseKey) -> Option<Arc<CachedCase>> {
        self.cases[case_shard_of(key)].read().get(key).cloned()
    }

    fn insert_case(&self, key: CaseKey, value: CachedCase) {
        if self.case_count.load(Ordering::Relaxed) >= self.max_transitions {
            for shard in &self.cases {
                shard.write().clear();
            }
            self.case_count.store(0, Ordering::Relaxed);
            self.case_bytes.store(0, Ordering::Relaxed);
        }
        // Key triples + template strings + map/Arc overhead, approximate.
        let bytes = key.steps.len() * 12 + 128;
        let mut map = self.cases[case_shard_of(&key)].write();
        if map.insert(key, Arc::new(value)).is_none() {
            self.case_count.fetch_add(1, Ordering::Relaxed);
            self.case_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> TrieStats {
        let transitions = self.transitions.load(Ordering::Relaxed) as u64;
        // Key + Arc pointer + CachedStep header + the small match/row
        // payloads; close enough for a memory gauge.
        let per_transition = 96u64;
        TrieStats {
            frontiers: self.frontiers.len() as u64,
            transitions,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes: self.frontiers.bytes() as u64
                + transitions * per_transition
                + self.case_bytes.load(Ordering::Relaxed) as u64,
        }
    }
}

/// Whether `opts` permit serving a memoized whole-case outcome: the cached
/// result must be a pure function of the replay-relevant projection plus
/// the budgets baked into [`CaseKey`]. Trace and evidence capture need
/// per-step data, the temporal constraint reads timestamps, the deadline
/// reads the wall clock and failpoints match on the case name — any of
/// those forces the step-by-step path.
pub(crate) fn case_memo_eligible(opts: &CheckOptions) -> bool {
    !opts.record_trace
        && !opts.record_evidence
        && opts.max_case_minutes.is_none()
        && opts.case_deadline_ms.is_none()
        && opts.failpoints.is_inert()
}

/// Replay one case through the trie with whole-case memoization: a case
/// whose replay-relevant projection has been seen before returns its
/// cached outcome after a single hash-and-probe; a novel case replays
/// through the transition cache and memoizes the result. Only called for
/// [`case_memo_eligible`] options; error outcomes are never cached.
pub(crate) fn replay_case_memoized(
    encoded: &Encoded,
    hierarchy: &RoleHierarchy,
    entries: &[&LogEntry],
    opts: &CheckOptions,
    recorder: &Recorder,
    trie: &Arc<ReplayTrie>,
) -> Result<CaseCheck, CheckError> {
    debug_assert!(case_memo_eligible(opts));
    trie.bind(hierarchy)?;
    let key = CaseKey {
        max_tau_states: opts.weaknext.max_tau_states,
        max_explored: opts.max_explored,
        max_configurations: opts.max_configurations,
        steps: entries
            .iter()
            .map(|e| (e.role, e.task, e.status == TaskStatus::Failure))
            .collect(),
    };
    if let Some(hit) = trie.lookup_case(&key) {
        // Count the steps the memo saved, so hit/miss keeps meaning
        // "replay steps served from cache vs computed".
        trie.hits
            .fetch_add(hit.consumed(entries.len()) as u64, Ordering::Relaxed);
        return Ok(hit.materialize(entries));
    }
    let mut core = crate::session::SessionCore::with_trie(
        encoded,
        *opts,
        trie.clone(),
        hierarchy,
        recorder.clone(),
    )?;
    for e in entries {
        if let crate::session::FeedOutcome::Rejected(_) = core.feed(encoded, hierarchy, e)? {
            break;
        }
    }
    let check = core.finish(encoded)?;
    if let Some(cached) = CachedCase::from_check(&check) {
        trie.insert_case(key, cached);
    }
    Ok(check)
}

#[inline]
fn case_shard_of(key: &CaseKey) -> usize {
    use std::hash::BuildHasher;
    (FxBuildHasher::default().hash_one(key) as usize) % CASE_SHARDS
}

#[inline]
fn shard_of(key: &TransitionKey) -> usize {
    use std::hash::BuildHasher;
    (FxBuildHasher::default().hash_one(key) as usize) % EDGE_SHARDS
}
