//! The auditing pipeline.
//!
//! The [`Auditor`] interlinks the three components of §3 — data protection
//! policies, organizational processes and audit trails — and automates the
//! a-posteriori analysis the paper motivates with the Geneva University
//! Hospitals example (>20,000 record opens per day, §1):
//!
//! 1. a **preventive pass** re-evaluates every logged access against the
//!    policy (Def. 3) — the complementary enforcement §3.5 calls for;
//! 2. a **purpose-control pass** groups the trail by case, maps each case
//!    to the process implementing its purpose, and replays it with
//!    Algorithm 1;
//! 3. infringements are scored with the §7 severity metrics.

use crate::error::CheckError;
use crate::replay::{check_case_with, CaseCheck, CheckOptions, Infringement, Verdict};
use crate::severity::{assess, SensitivityModel, SeverityAssessment};
use crate::trie::ReplayTrie;
use audit::entry::LogEntry;
use audit::trail::AuditTrail;
use bpmn::encode::{encode, Encoded};
use bpmn::model::ProcessModel;
use cows::symbol::Symbol;
use policy::context::PolicyContext;
use policy::statement::{AccessRequest, Decision, Policy};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// A process registered as the implementation of a purpose.
#[derive(Clone, Debug)]
pub struct RegisteredProcess {
    pub purpose: Symbol,
    pub model: ProcessModel,
    pub encoded: Encoded,
    /// Per-process replay trie, shared by every case replayed under
    /// [`crate::replay::Engine::Trie`] (batch, parallel and live); inert
    /// under the other engines.
    pub trie: Arc<ReplayTrie>,
}

/// Purpose → process registry, with case-name resolution rules.
///
/// Cases can be resolved explicitly (via
/// [`policy::context::PolicyContext::register_case`]) or by prefix
/// convention (`HT-…` → treatment), matching how the paper names instances.
#[derive(Clone, Debug, Default)]
pub struct ProcessRegistry {
    by_purpose: HashMap<Symbol, Arc<RegisteredProcess>>,
    prefix_rules: Vec<(String, Symbol)>,
}

impl ProcessRegistry {
    pub fn new() -> ProcessRegistry {
        ProcessRegistry::default()
    }

    /// Register `model` as the implementation of `purpose`.
    pub fn register(&mut self, purpose: impl Into<Symbol>, model: ProcessModel) {
        let purpose = purpose.into();
        let encoded = encode(&model);
        let trie = Arc::new(ReplayTrie::new(encoded.automaton.clone()));
        self.by_purpose.insert(
            purpose,
            Arc::new(RegisteredProcess {
                purpose,
                model,
                encoded,
                trie,
            }),
        );
    }

    /// Map case names starting with `prefix` to `purpose`.
    pub fn add_case_prefix(&mut self, prefix: &str, purpose: impl Into<Symbol>) {
        self.prefix_rules.push((prefix.to_string(), purpose.into()));
    }

    pub fn process_for(&self, purpose: Symbol) -> Option<&Arc<RegisteredProcess>> {
        self.by_purpose.get(&purpose)
    }

    pub fn purposes(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.by_purpose.keys().copied()
    }

    fn purpose_by_prefix(&self, case: Symbol) -> Option<Symbol> {
        let name = case.as_str();
        self.prefix_rules
            .iter()
            .filter(|(p, _)| name.starts_with(p.as_str()))
            .max_by_key(|(p, _)| p.len())
            .map(|&(_, purpose)| purpose)
    }
}

/// One entry that failed the preventive (Def. 3) check.
#[derive(Clone, Debug)]
pub struct PreventiveViolation {
    pub entry_index: usize,
    pub entry: LogEntry,
    pub decision: Decision,
}

/// Why a case could not be brought to a verdict (fault isolation: the
/// failure stays confined to the case; every other case still gets its
/// normal outcome).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InconclusiveReason {
    /// The replay panicked; the panic was caught at the case boundary.
    Panicked { detail: String },
    /// The per-case wall-clock deadline expired
    /// ([`CheckOptions::case_deadline_ms`]).
    DeadlineExceeded { entry_index: usize, limit_ms: u64 },
    /// The per-case exploration budget ran out
    /// ([`CheckOptions::max_explored`]).
    StepBudgetExhausted { entry_index: usize, limit: usize },
}

impl fmt::Display for InconclusiveReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InconclusiveReason::Panicked { detail } => write!(f, "replay panicked: {detail}"),
            InconclusiveReason::DeadlineExceeded {
                entry_index,
                limit_ms,
            } => write!(f, "deadline of {limit_ms}ms expired at entry {entry_index}"),
            InconclusiveReason::StepBudgetExhausted { entry_index, limit } => {
                write!(f, "step budget of {limit} exhausted at entry {entry_index}")
            }
        }
    }
}

/// Outcome for one case.
#[derive(Clone, Debug)]
pub enum CaseOutcome {
    Compliant {
        can_complete: bool,
    },
    Infringement {
        infringement: Infringement,
        severity: SeverityAssessment,
    },
    /// No purpose could be resolved or no process is registered for it.
    Unresolved(CheckError),
    /// The replay machinery failed (e.g. configuration blow-up).
    Failed(CheckError),
    /// The case hit a fault-isolation boundary (panic, deadline or step
    /// budget): no verdict, but the rest of the run is unaffected.
    Inconclusive {
        reason: InconclusiveReason,
    },
}

impl CaseOutcome {
    pub fn is_compliant(&self) -> bool {
        matches!(self, CaseOutcome::Compliant { .. })
    }

    pub fn is_infringement(&self) -> bool {
        matches!(self, CaseOutcome::Infringement { .. })
    }

    pub fn is_inconclusive(&self) -> bool {
        matches!(self, CaseOutcome::Inconclusive { .. })
    }
}

/// Per-case result.
#[derive(Clone, Debug)]
pub struct CaseResult {
    pub case: Symbol,
    pub purpose: Option<Symbol>,
    pub entries: usize,
    pub outcome: CaseOutcome,
    pub peak_configurations: usize,
    /// The replayed configuration path in capture form (present iff
    /// [`CheckOptions::record_evidence`] and the case reached replay);
    /// render it with [`Auditor::case_evidence`].
    pub evidence: Option<crate::session::RawEvidence>,
}

/// The full audit report.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    pub cases: Vec<CaseResult>,
    pub preventive_violations: Vec<PreventiveViolation>,
}

impl AuditReport {
    pub fn compliant_cases(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.outcome.is_compliant())
            .count()
    }

    pub fn infringing_cases(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.outcome.is_infringement())
            .count()
    }

    pub fn inconclusive_cases(&self) -> usize {
        self.cases
            .iter()
            .filter(|c| c.outcome.is_inconclusive())
            .count()
    }

    /// Infringing cases ordered by decreasing severity — the §7
    /// "narrow down the number of situations to be investigated" queue.
    pub fn triage(&self) -> Vec<&CaseResult> {
        let mut v: Vec<&CaseResult> = self
            .cases
            .iter()
            .filter(|c| c.outcome.is_infringement())
            .collect();
        v.sort_by(|a, b| {
            let sa = match &a.outcome {
                CaseOutcome::Infringement { severity, .. } => severity.score,
                _ => 0.0,
            };
            let sb = match &b.outcome {
                CaseOutcome::Infringement { severity, .. } => severity.score,
                _ => 0.0,
            };
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit report: {} cases ({} compliant, {} infringing",
            self.cases.len(),
            self.compliant_cases(),
            self.infringing_cases(),
        )?;
        if self.inconclusive_cases() > 0 {
            write!(f, ", {} inconclusive", self.inconclusive_cases())?;
        }
        writeln!(
            f,
            "), {} preventive violations",
            self.preventive_violations.len()
        )?;
        for c in &self.cases {
            if let CaseOutcome::Inconclusive { reason } = &c.outcome {
                writeln!(f, "  [inconclusive] case {}: {}", c.case, reason)?;
            }
        }
        for c in self.triage() {
            if let CaseOutcome::Infringement {
                infringement,
                severity,
            } = &c.outcome
            {
                writeln!(
                    f,
                    "  [severity {:.2}] case {}: entry {} ({}) deviates; expected {:?}",
                    severity.score,
                    c.case,
                    infringement.entry_index,
                    infringement.entry,
                    infringement.expected
                )?;
            }
        }
        Ok(())
    }
}

/// The purpose-control auditor.
#[derive(Clone, Debug)]
pub struct Auditor {
    pub registry: ProcessRegistry,
    pub policy: Policy,
    pub context: PolicyContext,
    pub options: CheckOptions,
    pub sensitivity: SensitivityModel,
    /// Event sink for replay telemetry (noop by default). Shared by all
    /// cases of a run; under [`crate::parallel`] the workers clone it and
    /// the ring serializes internally.
    pub recorder: obs::Recorder,
    /// Metrics registry; when set, per-case outcome counters and
    /// histograms are recorded (shard-buffered — no hot-path locking).
    pub metrics: Option<Arc<obs::Registry>>,
}

impl Auditor {
    pub fn new(registry: ProcessRegistry, policy: Policy, context: PolicyContext) -> Auditor {
        let mut auditor = Auditor {
            registry,
            policy,
            context,
            options: CheckOptions::default(),
            sensitivity: SensitivityModel::default(),
            recorder: obs::Recorder::noop(),
            metrics: None,
        };
        // Make every registered process's task set known to the policy
        // context (condition (iv) of Def. 3).
        let tasks: Vec<(Symbol, Vec<Symbol>)> = auditor
            .registry
            .by_purpose
            .values()
            .map(|p| (p.purpose, p.model.tasks().map(|t| t.name).collect()))
            .collect();
        for (purpose, names) in tasks {
            auditor.context.register_purpose_tasks(purpose, names);
        }
        auditor
    }

    /// Resolve the purpose of a case: explicit registration first, then
    /// prefix rules.
    pub fn resolve_case(&self, case: Symbol) -> Option<Symbol> {
        self.context
            .purpose_of_case(case)
            .or_else(|| self.registry.purpose_by_prefix(case))
    }

    /// The preventive pass: Def. 3 on every logged access that carries an
    /// object. (Objectless entries such as task cancellations have nothing
    /// to authorize.)
    pub fn preventive_check(&self, trail: &AuditTrail) -> Vec<PreventiveViolation> {
        // Make every case's purpose known to the evaluation context
        // (explicit registrations win; prefix rules fill the rest), so that
        // condition (iv) of Def. 3 can be checked.
        let mut ctx = self.context.clone();
        for case in trail.cases() {
            if ctx.purpose_of_case(case).is_none() {
                if let Some(p) = self.registry.purpose_by_prefix(case) {
                    ctx.register_case(case, p);
                }
            }
        }
        // Users with no registered activation are evaluated under the role
        // the log recorded for them — Def. 4 stores "the role held by the
        // user at the time the action was performed" precisely so that the
        // a-posteriori check can reconstruct the authentication context.
        for e in trail {
            if ctx.active_roles(e.user).is_empty() {
                ctx.assign_role(e.user, e.role);
            }
        }
        let mut out = Vec::new();
        for (entry_index, e) in trail.iter().enumerate() {
            let Some(object) = &e.object else { continue };
            let req = AccessRequest {
                user: e.user,
                action: e.action,
                object: object.clone(),
                task: e.task,
                case: e.case,
            };
            let decision = self.policy.evaluate(&req, &ctx);
            if !decision.is_permit() {
                out.push(PreventiveViolation {
                    entry_index,
                    entry: e.clone(),
                    decision,
                });
            }
        }
        out
    }

    /// Run Algorithm 1 on one case of the trail.
    pub fn check_one_case(&self, trail: &AuditTrail, case: Symbol) -> CaseResult {
        let result = self.check_one_case_inner(trail, case);
        self.recorder.emit(|| obs::ObsEvent::CaseEnd {
            case: case.to_string(),
            verdict: outcome_label(&result.outcome).to_string(),
        });
        result
    }

    fn check_one_case_inner(&self, trail: &AuditTrail, case: Symbol) -> CaseResult {
        let entries = trail.project_case(case);
        let n = entries.len();
        self.recorder.emit(|| obs::ObsEvent::CaseStart {
            case: case.to_string(),
            entries: n,
        });
        let Some(purpose) = self.resolve_case(case) else {
            return CaseResult {
                case,
                purpose: None,
                entries: n,
                outcome: CaseOutcome::Unresolved(CheckError::UnresolvedCase {
                    case: case.to_string(),
                }),
                peak_configurations: 0,
                evidence: None,
            };
        };
        let Some(process) = self.registry.process_for(purpose) else {
            return CaseResult {
                case,
                purpose: Some(purpose),
                entries: n,
                outcome: CaseOutcome::Unresolved(CheckError::UnknownPurpose {
                    purpose: purpose.to_string(),
                }),
                peak_configurations: 0,
                evidence: None,
            };
        };
        let hierarchy = self.context.roles();
        // Fault isolation: a panic anywhere in one case's replay is caught
        // at this boundary and reported as Inconclusive — it must never
        // take down the run (or, under `parallel`, a worker thread). The
        // auditor and entries are only read, so unwind safety is not a
        // correctness concern beyond the poisoned case itself.
        let checked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_case_with(
                &process.encoded,
                hierarchy,
                &entries,
                &self.options,
                &self.recorder,
                Some(&process.trie),
            )
        }));
        let checked = match checked {
            Ok(result) => result,
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return CaseResult {
                    case,
                    purpose: Some(purpose),
                    entries: n,
                    outcome: CaseOutcome::Inconclusive {
                        reason: InconclusiveReason::Panicked { detail },
                    },
                    peak_configurations: 0,
                    evidence: None,
                };
            }
        };
        // The session labels evidence with what it saw; the auditor knows
        // the resolved purpose and the canonical case name.
        let adopt = |mut ev: crate::session::RawEvidence| {
            ev.case = case.to_string();
            ev.purpose = purpose.to_string();
            ev
        };
        match checked {
            Ok(CaseCheck {
                verdict: Verdict::Compliant { can_complete },
                peak_configurations,
                evidence,
                ..
            }) => CaseResult {
                case,
                purpose: Some(purpose),
                entries: n,
                outcome: CaseOutcome::Compliant { can_complete },
                peak_configurations,
                evidence: evidence.map(adopt),
            },
            Ok(CaseCheck {
                verdict: Verdict::Infringement(infringement),
                peak_configurations,
                evidence,
                ..
            }) => {
                let severity = assess(&infringement, &entries, &self.sensitivity);
                CaseResult {
                    case,
                    purpose: Some(purpose),
                    entries: n,
                    outcome: CaseOutcome::Infringement {
                        infringement,
                        severity,
                    },
                    peak_configurations,
                    evidence: evidence.map(adopt),
                }
            }
            // Budget exhaustion is an isolation boundary, not a machinery
            // failure: the case is inconclusive, the run goes on.
            Err(CheckError::DeadlineExceeded {
                entry_index,
                limit_ms,
            }) => CaseResult {
                case,
                purpose: Some(purpose),
                entries: n,
                outcome: CaseOutcome::Inconclusive {
                    reason: InconclusiveReason::DeadlineExceeded {
                        entry_index,
                        limit_ms,
                    },
                },
                peak_configurations: 0,
                evidence: None,
            },
            Err(CheckError::StepBudgetExhausted { entry_index, limit }) => CaseResult {
                case,
                purpose: Some(purpose),
                entries: n,
                outcome: CaseOutcome::Inconclusive {
                    reason: InconclusiveReason::StepBudgetExhausted { entry_index, limit },
                },
                peak_configurations: 0,
                evidence: None,
            },
            Err(e) => CaseResult {
                case,
                purpose: Some(purpose),
                entries: n,
                outcome: CaseOutcome::Failed(e),
                peak_configurations: 0,
                evidence: None,
            },
        }
    }

    /// Audit every case of the trail (sequentially; see
    /// [`crate::parallel::audit_parallel`] for the multi-threaded variant).
    pub fn audit(&self, trail: &AuditTrail) -> AuditReport {
        let cases = trail.cases();
        self.audit_cases(trail, &cases)
    }

    /// Audit a selected set of cases.
    pub fn audit_cases(&self, trail: &AuditTrail, cases: &BTreeSet<Symbol>) -> AuditReport {
        let results: Vec<CaseResult> = cases
            .iter()
            .map(|&c| self.check_one_case(trail, c))
            .collect();
        let preventive = self.preventive_check(trail);
        if let Some(registry) = &self.metrics {
            let mut shard = registry.shard();
            for r in &results {
                crate::metrics::record_case_metrics(&mut shard, r);
            }
            shard.add_counter("audit_preventive_violations", preventive.len() as u64);
            shard.flush(registry);
        }
        AuditReport {
            cases: results,
            preventive_violations: preventive,
        }
    }

    /// Render one audited case's evidence trace as a serializable
    /// [`obs::CaseEvidence`].
    ///
    /// Replay captures evidence compactly (interned state ids), keeping the
    /// hot loop near-free; this resolves it against the purpose's process
    /// and the case's entries. `None` when the case carries no evidence
    /// (recording off, or the case never reached replay).
    pub fn case_evidence(
        &self,
        trail: &AuditTrail,
        result: &CaseResult,
    ) -> Option<obs::CaseEvidence> {
        let raw = result.evidence.as_ref()?;
        let process = self.registry.process_for(result.purpose?)?;
        let entries = trail.project_case(result.case);
        Some(raw.materialize(&process.encoded, &entries))
    }

    /// §4: audit only the cases in which `object` was accessed — "it is not
    /// necessary to repeat the analysis of the same process instance for
    /// different objects", and conversely an investigation of one object
    /// only needs its cases.
    pub fn audit_object(
        &self,
        trail: &AuditTrail,
        object: &policy::object::ObjectId,
    ) -> AuditReport {
        let cases = trail.cases_touching(object);
        self.audit_cases(trail, &cases)
    }
}

/// Stable short label of an outcome, for `CaseEnd` events and metric
/// bucket selection.
pub fn outcome_label(outcome: &CaseOutcome) -> &'static str {
    match outcome {
        CaseOutcome::Compliant { .. } => "compliant",
        CaseOutcome::Infringement { .. } => "infringement",
        CaseOutcome::Unresolved(_) => "unresolved",
        CaseOutcome::Failed(_) => "failed",
        CaseOutcome::Inconclusive { .. } => "inconclusive",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit::samples::figure4_trail;
    use bpmn::models::{clinical_trial, healthcare_treatment};
    use cows::sym;
    use policy::samples::{
        clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
    };

    fn hospital_auditor() -> Auditor {
        let mut registry = ProcessRegistry::new();
        registry.register(treatment(), healthcare_treatment());
        registry.register(clinical_trial_purpose(), clinical_trial());
        registry.add_case_prefix("HT-", treatment());
        registry.add_case_prefix("CT-", clinical_trial_purpose());
        Auditor::new(registry, extended_hospital_policy(), hospital_context())
    }

    #[test]
    fn case_resolution_uses_prefixes_and_registrations() {
        let mut a = hospital_auditor();
        assert_eq!(a.resolve_case(sym("HT-7")), Some(treatment()));
        assert_eq!(a.resolve_case(sym("CT-3")), Some(clinical_trial_purpose()));
        assert_eq!(a.resolve_case(sym("XX-1")), None);
        a.context.register_case("XX-1", treatment());
        assert_eq!(a.resolve_case(sym("XX-1")), Some(treatment()));
    }

    #[test]
    fn fig4_ht1_is_compliant() {
        let a = hospital_auditor();
        let r = a.check_one_case(&figure4_trail(), sym("HT-1"));
        assert!(
            r.outcome.is_compliant(),
            "HT-1 must replay cleanly, got {:?}",
            r.outcome
        );
    }

    #[test]
    fn fig4_ht11_is_infringement() {
        // §4: Jane's EPR was accessed under HT-11, but the trail of HT-11
        // is not a valid execution of the treatment process (it starts at
        // T06).
        let a = hospital_auditor();
        let r = a.check_one_case(&figure4_trail(), sym("HT-11"));
        match &r.outcome {
            CaseOutcome::Infringement { infringement, .. } => {
                assert_eq!(infringement.entry_index, 0);
                assert_eq!(infringement.entry.task, sym("T06"));
            }
            other => panic!("expected infringement, got {other:?}"),
        }
    }

    #[test]
    fn fig4_ct1_replays_as_clinical_trial() {
        // Bob's CT-1 bookkeeping does follow the Fig. 2 process — the
        // infringement is in the HT-labeled EPR sweep, not in CT-1 itself.
        let a = hospital_auditor();
        let r = a.check_one_case(&figure4_trail(), sym("CT-1"));
        assert!(r.outcome.is_compliant(), "got {:?}", r.outcome);
    }

    #[test]
    fn object_scoped_audit_selects_janes_cases() {
        let a = hospital_auditor();
        let report = a.audit_object(
            &figure4_trail(),
            &policy::object::ObjectId::of_subject("Jane", "EPR"),
        );
        assert_eq!(report.cases.len(), 2); // HT-1 and HT-11
        assert_eq!(report.compliant_cases(), 1);
        assert_eq!(report.infringing_cases(), 1);
    }

    #[test]
    fn full_fig4_audit_flags_the_repurposing_sweep() {
        let a = hospital_auditor();
        let report = a.audit(&figure4_trail());
        // The five single-read sweep cases printed in Fig. 4 (HT-10,
        // HT-11, HT-20, HT-21, HT-30) are invalid executions; HT-1, HT-2
        // and CT-1 are valid.
        assert_eq!(report.infringing_cases(), 5);
        assert_eq!(report.compliant_cases(), 3);
        // Triage is sorted by severity.
        let triage = report.triage();
        for w in triage.windows(2) {
            let s = |c: &CaseResult| match &c.outcome {
                CaseOutcome::Infringement { severity, .. } => severity.score,
                _ => 0.0,
            };
            assert!(s(w[0]) >= s(w[1]));
        }
    }

    #[test]
    fn preventive_pass_accepts_fig4_accesses() {
        // All Fig. 4 accesses are individually authorized (that is the
        // paper's point: prevention alone cannot catch the re-purposing).
        let a = hospital_auditor();
        let violations = a.preventive_check(&figure4_trail());
        assert!(
            violations.is_empty(),
            "unexpected preventive violations: {violations:?}"
        );
    }

    #[test]
    fn poisoned_case_is_inconclusive_and_visible_in_report() {
        let mut a = hospital_auditor();
        a.options.failpoints = crate::replay::FailPoints {
            panic_case: Some(sym("HT-1")),
            ..Default::default()
        };
        let report = a.audit(&figure4_trail());
        // The panic is confined to HT-1; the other seven cases keep their
        // normal verdicts (Fig. 4: HT-2 + CT-1 compliant, five infringing).
        assert_eq!(report.inconclusive_cases(), 1);
        assert_eq!(report.compliant_cases(), 2);
        assert_eq!(report.infringing_cases(), 5);
        let text = report.to_string();
        assert!(text.contains("1 inconclusive"), "{text}");
        assert!(text.contains("[inconclusive] case HT-1"), "{text}");
        assert!(text.contains("replay panicked"), "{text}");
    }

    #[test]
    fn report_renders() {
        let a = hospital_auditor();
        let report = a.audit(&figure4_trail());
        let text = report.to_string();
        assert!(text.contains("audit report"));
        assert!(text.contains("severity"));
    }
}
