//! Thread-safe handles over sharded monitors — the embedding surface for
//! long-lived services.
//!
//! [`crate::sharded::ShardedMonitor`] is deliberately `&mut`-driven: one
//! ingest loop owns it and drives all shards. A resident service
//! (`purposectl serve`) has *many* drivers — HTTP readers snapshotting
//! verdicts while an ingest worker feeds entries and an admin endpoint
//! checkpoints — so it needs a shared handle with interior locking.
//! [`MonitorHandle`] is that handle: a clonable `Arc<Mutex<_>>` newtype
//! whose methods scope the lock to one monitor operation, so no caller can
//! hold it across I/O. [`MonitorPool`] names many handles (one per
//! tenant/purpose universe) and provides the whole-pool operations a
//! daemon needs at checkpoint time.

use crate::error::CheckError;
use crate::live::{ClosedCase, LiveStats};
use crate::replay::CaseCheck;
use crate::sharded::ShardedMonitor;
use audit::entry::LogEntry;
use cows::symbol::Symbol;
use obs::Registry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A clonable, lock-scoped handle to one [`ShardedMonitor`].
#[derive(Clone)]
pub struct MonitorHandle {
    inner: Arc<Mutex<ShardedMonitor>>,
}

impl MonitorHandle {
    pub fn new(monitor: ShardedMonitor) -> MonitorHandle {
        MonitorHandle {
            inner: Arc::new(Mutex::new(monitor)),
        }
    }

    /// Run one operation under the monitor lock. The closure must not
    /// block on anything that waits for this handle (classic re-entrancy
    /// rule); every other method here is implemented through this.
    pub fn with<R>(&self, f: impl FnOnce(&mut ShardedMonitor) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        f(&mut guard)
    }

    /// Feed a batch through all shards (see [`ShardedMonitor::ingest`]).
    pub fn ingest(&self, entries: &[LogEntry]) -> Result<(), CheckError> {
        self.with(|m| m.ingest(entries).map(|_| ()))
    }

    /// Install a request tracer on every shard of the monitor.
    pub fn set_tracer(&self, tracer: &obs::Tracer) {
        self.with(|m| m.set_tracer(tracer));
    }

    /// [`MonitorHandle::ingest`] with a trace context: spill/rehydrate
    /// spans emitted while this batch replays link under `ctx`'s parent
    /// span. The context is set and cleared under one lock scope, so
    /// concurrent ingests never borrow another request's trace.
    pub fn ingest_traced(
        &self,
        entries: &[LogEntry],
        ctx: Option<(obs::TraceId, obs::SpanId)>,
    ) -> Result<(), CheckError> {
        self.with(|m| {
            m.set_trace_context(ctx);
            let result = m.ingest(entries);
            m.set_trace_context(None);
            result.map(|_| ())
        })
    }

    /// One case's verdict, wherever its shard keeps it.
    pub fn snapshot(&self, case: Symbol) -> Option<Result<CaseCheck, CheckError>> {
        self.with(|m| m.snapshot(case))
    }

    /// One case's retirement record, cloned out of the lock.
    pub fn closed_case(&self, case: Symbol) -> Option<ClosedCase> {
        self.with(|m| m.closed_case(case).cloned())
    }

    /// Alarmed case names, sorted (cross-shard chronology is not defined).
    pub fn alarmed_cases(&self) -> Vec<Symbol> {
        self.with(|m| m.alarms().iter().map(|(c, _)| *c).collect())
    }

    pub fn stats(&self) -> LiveStats {
        self.with(|m| m.stats())
    }

    pub fn open_cases(&self) -> usize {
        self.with(|m| m.open_cases())
    }

    pub fn tracked_cases(&self) -> usize {
        self.with(|m| m.tracked_cases())
    }

    /// Retire completed cases and run the idle sweep — the between-batches
    /// housekeeping an ingest worker performs.
    pub fn housekeep(&self) -> Result<(), CheckError> {
        self.with(|m| {
            let _ = m.retire_completed();
            m.maintain().map(|_| ())
        })
    }

    /// Flush per-shard counter deltas into `registry`.
    pub fn flush_metrics(&self, registry: &Registry) {
        self.with(|m| m.flush_metrics(registry));
    }

    /// Serialize the whole monitor at `stream_offset` (see
    /// [`ShardedMonitor::checkpoint`]).
    pub fn checkpoint(&self, stream_offset: u64) -> Result<Vec<u8>, CheckError> {
        self.with(|m| m.checkpoint(stream_offset))
    }
}

/// `(name, checkpoint bytes)` per tenant, or the first failing tenant.
pub type CheckpointAllResult = Result<Vec<(String, Vec<u8>)>, (String, CheckError)>;

/// Named monitors — one per tenant — with whole-pool operations.
#[derive(Default)]
pub struct MonitorPool {
    tenants: BTreeMap<String, MonitorHandle>,
}

impl MonitorPool {
    pub fn new() -> MonitorPool {
        MonitorPool::default()
    }

    /// Register a tenant's monitor. Returns the previous handle if the
    /// name was already taken (callers treat that as a config error).
    pub fn insert(
        &mut self,
        name: impl Into<String>,
        monitor: ShardedMonitor,
    ) -> Option<MonitorHandle> {
        self.tenants
            .insert(name.into(), MonitorHandle::new(monitor))
    }

    pub fn get(&self, name: &str) -> Option<&MonitorHandle> {
        self.tenants.get(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tenants.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &MonitorHandle)> {
        self.tenants.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// Checkpoint every tenant with its own stream offset (looked up by
    /// name; missing names default to 0). Returns `(name, bytes)` pairs
    /// in name order, or the first failure.
    pub fn checkpoint_all(&self, offsets: &BTreeMap<String, u64>) -> CheckpointAllResult {
        let mut out = Vec::with_capacity(self.tenants.len());
        for (name, handle) in &self.tenants {
            let offset = offsets.get(name).copied().unwrap_or(0);
            match handle.checkpoint(offset) {
                Ok(bytes) => out.push((name.clone(), bytes)),
                Err(e) => return Err((name.clone(), e)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::{Auditor, ProcessRegistry};
    use crate::live::LiveConfig;
    use audit::samples::figure4_trail;
    use bpmn::models::{clinical_trial, healthcare_treatment};
    use cows::sym;
    use policy::samples::{
        clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
    };

    fn auditor() -> Auditor {
        let mut registry = ProcessRegistry::new();
        registry.register(treatment(), healthcare_treatment());
        registry.register(clinical_trial_purpose(), clinical_trial());
        registry.add_case_prefix("HT-", treatment());
        registry.add_case_prefix("CT-", clinical_trial_purpose());
        Auditor::new(registry, extended_hospital_policy(), hospital_context())
    }

    fn monitor() -> ShardedMonitor {
        ShardedMonitor::new(auditor(), &LiveConfig::default(), 2)
    }

    #[test]
    fn handle_is_shareable_across_threads() {
        let handle = MonitorHandle::new(monitor());
        let trail = figure4_trail();
        let mid = trail.len() / 2;
        let (front, back) = trail.entries().split_at(mid);
        std::thread::scope(|scope| {
            let h1 = handle.clone();
            let h2 = handle.clone();
            scope.spawn(move || h1.ingest(front).unwrap());
            scope.spawn(move || h2.ingest(back).unwrap());
        });
        assert_eq!(handle.stats().entries, trail.len() as u64);
        // The Fig. 4 misuse case alarms regardless of batch split.
        assert!(handle.alarmed_cases().contains(&sym("HT-11")));
        assert!(handle.closed_case(sym("HT-11")).is_some());
        assert!(handle.snapshot(sym("HT-1")).is_some());
    }

    #[test]
    fn pool_names_and_checkpoints_every_tenant() {
        let mut pool = MonitorPool::new();
        assert!(pool.insert("clinic", monitor()).is_none());
        assert!(pool.insert("trial", monitor()).is_none());
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.names().collect::<Vec<_>>(), vec!["clinic", "trial"]);

        let trail = figure4_trail();
        pool.get("clinic").unwrap().ingest(trail.entries()).unwrap();

        let mut offsets = BTreeMap::new();
        offsets.insert("clinic".to_string(), trail.len() as u64);
        let blobs = pool.checkpoint_all(&offsets).unwrap();
        assert_eq!(blobs.len(), 2);
        assert_eq!(blobs[0].0, "clinic");
        // Each blob restores independently with the recorded offset.
        let (restored, offset) =
            ShardedMonitor::restore(auditor(), &LiveConfig::default(), 2, &blobs[0].1).unwrap();
        assert_eq!(offset, trail.len() as u64);
        assert_eq!(
            restored.tracked_cases(),
            pool.get("clinic").unwrap().tracked_cases()
        );
        // The untouched tenant checkpoints at offset 0.
        let (_, offset) =
            ShardedMonitor::restore(auditor(), &LiveConfig::default(), 2, &blobs[1].1).unwrap();
        assert_eq!(offset, 0);
    }

    #[test]
    fn duplicate_insert_returns_previous_handle() {
        let mut pool = MonitorPool::new();
        assert!(pool.insert("t", monitor()).is_none());
        assert!(pool.insert("t", monitor()).is_some());
        assert_eq!(pool.len(), 1);
    }
}
