//! Tolerant replay for partial audit trails — the §7 future-work item.
//!
//! "Process specifications may contain human activities that cannot be
//! logged by the IT system (e.g., a physician discussing patient data over
//! the phone for second opinion). These silent activities make it not
//! possible to determine if an audit trail corresponds to a valid execution
//! of the organization process. Therefore, we need a method for analyzing
//! user behavior and the purpose of data usage when audit trails are
//! partial."
//!
//! [`check_case_lenient`] extends Algorithm 1 with a *silent-activity
//! budget*: whenever a log entry cannot be simulated directly, the replay
//! may assume that up to `max_silent` observable activities happened
//! without being logged, and continue past them. The verdict reports which
//! activities had to be assumed — evidence an auditor can take to the
//! humans involved.
//!
//! With `max_silent = 0` this coincides exactly with [`crate::replay::check_case`]
//! (checked by a test), preserving Theorem 2 on complete trails.

use crate::error::CheckError;
use crate::replay::{CheckOptions, Engine, Infringement, InfringementKind, Verdict};
use audit::entry::{LogEntry, TaskStatus};
use bpmn::encode::Encoded;
use cows::observe::Observation;
use cows::weaknext::{can_terminate_silently, weak_next, Marked, WeakSuccessor};
use policy::hierarchy::RoleHierarchy;
use std::collections::HashMap;

/// `WeakNext(state)` through the engine selected by `opts`: the direct path
/// recomputes per call; the automaton path interns the state into the
/// process's shared [`cows::automaton::ProcessAutomaton`] and materializes
/// the compiled edges, so the lenient replay also benefits from (and
/// contributes to) cross-case warming.
fn expand(
    encoded: &Encoded,
    state: &Marked,
    opts: &CheckOptions,
) -> Result<Vec<WeakSuccessor>, CheckError> {
    match opts.engine {
        Engine::Direct => Ok(weak_next(state, &encoded.observability, opts.weaknext)?),
        // The lenient replay explores hypothetical silent steps, which the
        // replay trie does not memoize; the trie engine therefore rides the
        // plain interned-automaton path here.
        Engine::Automaton | Engine::Trie => {
            let id = encoded.automaton.intern(state.clone());
            Ok(encoded
                .automaton
                .weak_successors(id, &encoded.observability, opts.weaknext)?)
        }
    }
}

/// Engine-dispatched `can_terminate_silently`.
fn quiesces(encoded: &Encoded, state: &Marked, opts: &CheckOptions) -> Result<bool, CheckError> {
    match opts.engine {
        Engine::Direct => Ok(can_terminate_silently(
            state,
            &encoded.observability,
            opts.weaknext,
        )?),
        Engine::Automaton | Engine::Trie => {
            let id = encoded.automaton.intern(state.clone());
            Ok(encoded
                .automaton
                .can_quiesce(id, &encoded.observability, opts.weaknext)?)
        }
    }
}

/// Options for the tolerant replay.
#[derive(Clone, Copy, Debug)]
pub struct LenientOptions {
    pub base: CheckOptions,
    /// Maximum number of unlogged (silent) observable activities the whole
    /// replay may assume.
    pub max_silent: usize,
}

impl Default for LenientOptions {
    fn default() -> Self {
        LenientOptions {
            base: CheckOptions::default(),
            max_silent: 1,
        }
    }
}

/// The tolerant verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LenientCheck {
    pub verdict: Verdict,
    /// Fewest silent activities any surviving explanation needed.
    pub min_silent_used: usize,
    /// The assumed-silent activities of one minimal explanation (rendered
    /// `role.task`), in order.
    pub assumed: Vec<String>,
    /// Peak configuration count.
    pub peak_configurations: usize,
}

#[derive(Clone, Debug)]
struct LenientConf {
    state: Marked,
    next: Vec<WeakSuccessor>,
    skips: usize,
    assumed: Vec<String>,
}

fn role_matches(h: &RoleHierarchy, entry_role: cows::Symbol, pool_role: cows::Symbol) -> bool {
    h.is_specialization_of(entry_role, pool_role)
}

/// Replay `entries`, assuming at most `opts.max_silent` unlogged activities.
pub fn check_case_lenient(
    encoded: &Encoded,
    hierarchy: &RoleHierarchy,
    entries: &[&LogEntry],
    opts: &LenientOptions,
) -> Result<LenientCheck, CheckError> {
    let initial = encoded.initial();
    let next = expand(encoded, &initial, &opts.base)?;
    let mut confs: Vec<LenientConf> = vec![LenientConf {
        state: initial,
        next,
        skips: 0,
        assumed: Vec::new(),
    }];
    let mut peak = 1usize;

    for (entry_index, entry) in entries.iter().enumerate() {
        // Iterative deepening over assumed-silent steps: depth d explores
        // explanations that skip d activities before this entry.
        let mut matched: HashMap<(Marked, usize), LenientConf> = HashMap::new();
        let mut frontier: Vec<LenientConf> = confs.clone();
        let mut visited: HashMap<Marked, usize> = HashMap::new(); // state → fewest skips seen

        loop {
            // Try to consume the entry from every frontier configuration.
            for conf in &frontier {
                let task_running = conf
                    .state
                    .running
                    .iter()
                    .any(|&(r, q)| q == entry.task && role_matches(hierarchy, entry.role, r));
                if task_running && entry.status == TaskStatus::Success {
                    insert_better(&mut matched, conf.clone());
                    continue;
                }
                for succ in &conf.next {
                    let accept = match (succ.observation, entry.status) {
                        (Observation::Task { role, task }, TaskStatus::Success) => {
                            task == entry.task && role_matches(hierarchy, entry.role, role)
                        }
                        (Observation::Error, TaskStatus::Failure) => true,
                        _ => false,
                    };
                    if !accept {
                        continue;
                    }
                    let next = expand(encoded, &succ.state, &opts.base)?;
                    insert_better(
                        &mut matched,
                        LenientConf {
                            state: succ.state.clone(),
                            next,
                            skips: conf.skips,
                            assumed: conf.assumed.clone(),
                        },
                    );
                }
            }

            // Expand one silent step for configurations with budget left.
            let mut expanded: Vec<LenientConf> = Vec::new();
            for conf in &frontier {
                if conf.skips >= opts.max_silent {
                    continue;
                }
                for succ in &conf.next {
                    let skips = conf.skips + 1;
                    match visited.get(&succ.state) {
                        Some(&best) if best <= skips => continue,
                        _ => {}
                    }
                    visited.insert(succ.state.clone(), skips);
                    let next = expand(encoded, &succ.state, &opts.base)?;
                    let mut assumed = conf.assumed.clone();
                    assumed.push(succ.observation.to_string());
                    expanded.push(LenientConf {
                        state: succ.state.clone(),
                        next,
                        skips,
                        assumed,
                    });
                }
            }
            if expanded.is_empty() {
                break;
            }
            if matched.len() + expanded.len() > opts.base.max_configurations {
                return Err(CheckError::ConfigurationLimit {
                    limit: opts.base.max_configurations,
                    entry_index,
                });
            }
            frontier = expanded;
        }

        if matched.is_empty() {
            let expected: Vec<String> = {
                let mut v: Vec<String> = confs
                    .iter()
                    .flat_map(|c| c.next.iter().map(|s| s.observation.to_string()))
                    .collect();
                v.sort();
                v.dedup();
                v
            };
            let active: Vec<String> = {
                let mut v: Vec<String> = confs
                    .iter()
                    .flat_map(|c| c.state.running.iter().map(|(r, q)| format!("{r}.{q}")))
                    .collect();
                v.sort();
                v.dedup();
                v
            };
            return Ok(LenientCheck {
                verdict: Verdict::Infringement(Infringement {
                    entry_index,
                    entry: (*entry).clone(),
                    expected,
                    active,
                    kind: InfringementKind::ProcessDeviation,
                }),
                min_silent_used: confs.iter().map(|c| c.skips).min().unwrap_or(0),
                assumed: Vec::new(),
                peak_configurations: peak,
            });
        }

        confs = matched.into_values().collect();
        confs.sort_by(|a, b| {
            (a.skips, &a.state.running, &a.state.service).cmp(&(
                b.skips,
                &b.state.running,
                &b.state.service,
            ))
        });
        if confs.len() > opts.base.max_configurations {
            return Err(CheckError::ConfigurationLimit {
                limit: opts.base.max_configurations,
                entry_index,
            });
        }
        peak = peak.max(confs.len());
    }

    let best = confs
        .iter()
        .min_by_key(|c| c.skips)
        .expect("configurations nonempty on the compliant path");
    let mut can_complete = false;
    for conf in &confs {
        if quiesces(encoded, &conf.state, &opts.base)? {
            can_complete = true;
            break;
        }
    }
    Ok(LenientCheck {
        verdict: Verdict::Compliant { can_complete },
        min_silent_used: best.skips,
        assumed: best.assumed.clone(),
        peak_configurations: peak,
    })
}

/// Keep the explanation with the fewest skips per resulting state.
fn insert_better(map: &mut HashMap<(Marked, usize), LenientConf>, conf: LenientConf) {
    // Key on (state, skips): distinct skip counts are distinct explanations;
    // equal keys keep the first (assumed lists of equal length).
    map.entry((conf.state.clone(), conf.skips)).or_insert(conf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::check_case;
    use audit::time::Timestamp;
    use bpmn::encode::encode;
    use bpmn::models::{fig7_sequence, fig8_exclusive};
    use bpmn::ProcessBuilder;
    use policy::statement::Action;

    fn ok(task: &str, minute: u64) -> LogEntry {
        LogEntry::success("u", "P", Action::Read, None, task, "c", Timestamp(minute))
    }

    /// S → A → B → C → E, all tasks.
    fn three_seq() -> bpmn::ProcessModel {
        let mut b = ProcessBuilder::new("seq3");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let a = b.task(p, "A");
        let t = b.task(p, "B");
        let c2 = b.task(p, "C");
        let e = b.end(p, "E");
        b.chain(&[s, a, t, c2, e]);
        b.build().unwrap()
    }

    #[test]
    fn zero_budget_equals_strict_replay() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        for entries in [&[ok("T", 1), ok("T1", 2)][..], &[ok("T1", 1)][..]] {
            let refs: Vec<&LogEntry> = entries.iter().collect();
            let strict = check_case(&encoded, &h, &refs, &CheckOptions::default()).unwrap();
            let lenient = check_case_lenient(
                &encoded,
                &h,
                &refs,
                &LenientOptions {
                    max_silent: 0,
                    ..LenientOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                strict.verdict.is_compliant(),
                lenient.verdict.is_compliant()
            );
        }
    }

    #[test]
    fn one_silent_activity_is_bridged_and_reported() {
        let encoded = encode(&three_seq());
        let h = RoleHierarchy::new();
        // B happened off-system: log shows A then C.
        let entries = [ok("A", 1), ok("C", 2)];
        let refs: Vec<&LogEntry> = entries.iter().collect();

        let strict = check_case(&encoded, &h, &refs, &CheckOptions::default()).unwrap();
        assert!(!strict.verdict.is_compliant(), "strict replay must reject");

        let lenient = check_case_lenient(&encoded, &h, &refs, &LenientOptions::default()).unwrap();
        assert!(lenient.verdict.is_compliant());
        assert_eq!(lenient.min_silent_used, 1);
        assert_eq!(lenient.assumed, vec!["P.B".to_string()]);
    }

    #[test]
    fn budget_is_respected() {
        let encoded = encode(&three_seq());
        let h = RoleHierarchy::new();
        // Both A and B unlogged: needs 2 skips.
        let entries = [ok("C", 1)];
        let refs: Vec<&LogEntry> = entries.iter().collect();
        let one = check_case_lenient(
            &encoded,
            &h,
            &refs,
            &LenientOptions {
                max_silent: 1,
                ..LenientOptions::default()
            },
        )
        .unwrap();
        assert!(!one.verdict.is_compliant());
        let two = check_case_lenient(
            &encoded,
            &h,
            &refs,
            &LenientOptions {
                max_silent: 2,
                ..LenientOptions::default()
            },
        )
        .unwrap();
        assert!(two.verdict.is_compliant());
        assert_eq!(two.min_silent_used, 2);
        assert_eq!(two.assumed, vec!["P.A".to_string(), "P.B".to_string()]);
    }

    #[test]
    fn genuinely_invalid_trails_stay_detected() {
        let encoded = encode(&fig7_sequence());
        let h = RoleHierarchy::new();
        // A task that does not exist cannot be explained by any number of
        // silent steps.
        let entries = [ok("Bogus", 1)];
        let refs: Vec<&LogEntry> = entries.iter().collect();
        let out = check_case_lenient(
            &encoded,
            &h,
            &refs,
            &LenientOptions {
                max_silent: 3,
                ..LenientOptions::default()
            },
        )
        .unwrap();
        assert!(!out.verdict.is_compliant());
    }

    #[test]
    fn complete_trails_use_no_budget() {
        let encoded = encode(&three_seq());
        let h = RoleHierarchy::new();
        let entries = [ok("A", 1), ok("B", 2), ok("C", 3)];
        let refs: Vec<&LogEntry> = entries.iter().collect();
        let out = check_case_lenient(&encoded, &h, &refs, &LenientOptions::default()).unwrap();
        assert!(out.verdict.is_compliant());
        assert_eq!(out.min_silent_used, 0);
        assert!(out.assumed.is_empty());
    }
}
