//! The audit metric vocabulary and recording helpers.
//!
//! The name set is **closed**: [`register_audit_metrics`] pre-declares
//! every counter, gauge and histogram the auditing pipeline can ever
//! touch, zero-valued. Declared-but-untouched metrics still appear in the
//! JSON/Prometheus exports, which is what lets `schemas/metrics.schema.json`
//! require every key *and* forbid unknown ones — a missing metric means a
//! codepath silently stopped reporting, an extra one means an undeclared
//! name leaked in; CI fails on both.
//!
//! Hot paths never touch the registry directly: workers record into a
//! thread-owned [`obs::Shard`] (plain map writes) and flush once at join —
//! see [`crate::parallel`].

use crate::auditor::{CaseOutcome, CaseResult};
use obs::{Registry, Shard};

/// Every counter the pipeline records, sorted.
pub const AUDIT_COUNTERS: &[&str] = &[
    "audit_cases_compliant",
    "audit_cases_failed",
    "audit_cases_inconclusive",
    "audit_cases_infringing",
    "audit_cases_total",
    "audit_cases_unresolved",
    "audit_entries_total",
    "audit_preventive_violations",
    "automaton_edge_hits",
    "automaton_edge_misses",
    "automaton_expanded",
    "automaton_loaded_edges",
    "automaton_loaded_states",
    "automaton_states",
    "durable_enospc_degradations",
    "durable_fsyncs",
    "durable_injected_faults",
    "durable_torn_tail_truncations",
    "live_after_alarm_total",
    "live_alarms_total",
    "live_cap_rebalances",
    "live_entries_total",
    "live_evictions_avoided",
    "live_evictions_total",
    "live_rehydrations_total",
    "live_retired_total",
    "live_spill_compactions",
    "live_spill_disk_demotions",
    "live_spill_log_bytes",
    "live_spill_tier_hits",
    "live_spilled_bytes_total",
    "live_unresolved_total",
    "obs_events_dropped",
    "recorder_events_dropped",
    "semantics_cache_evictions",
    "semantics_cache_hits",
    "semantics_cache_misses",
    "serve_batches_accepted",
    "serve_batches_rejected",
    "serve_checkpoints_total",
    "serve_entries_audited",
    "serve_http_errors_total",
    "serve_lines_accepted",
    "serve_lines_quarantined",
    "serve_requests_total",
    "startup_cold_total",
    "startup_warm_total",
    "trace_spans_total",
    "trace_traces_kept",
    "trie_bytes",
    "trie_frontiers",
    "trie_hits",
    "trie_misses",
    "trie_transitions",
];

/// Every gauge, sorted.
pub const AUDIT_GAUGES: &[&str] = &[
    "live_open_cases",
    "semantics_cache_entries",
    "serve_queue_depth",
    "trail_cases",
    "trail_entries",
    "trail_failures",
    "trail_span_minutes",
    "trail_users",
];

/// Every histogram, sorted. The `stage_latency_us_*` family is one
/// histogram per tracing stage ([`obs::STAGES`]) so per-stage latency
/// distributions survive the closed-vocabulary check.
pub const AUDIT_HISTOGRAMS: &[&str] = &[
    "case_entries",
    "case_peak_configurations",
    "stage_latency_us_accept",
    "stage_latency_us_admission",
    "stage_latency_us_queue_wait",
    "stage_latency_us_rehydrate",
    "stage_latency_us_replay",
    "stage_latency_us_spill",
    "stage_latency_us_verdict",
];

/// Declare the full audit metric vocabulary on `registry`, zero-valued.
pub fn register_audit_metrics(registry: &Registry) {
    for name in AUDIT_COUNTERS {
        registry.declare_counter(name);
    }
    for name in AUDIT_GAUGES {
        registry.declare_gauge(name);
    }
    for name in AUDIT_HISTOGRAMS {
        registry.declare_histogram(name);
    }
}

/// Record one case's outcome into a thread-owned shard (no locking).
pub fn record_case_metrics(shard: &mut Shard, result: &CaseResult) {
    shard.add_counter("audit_cases_total", 1);
    let bucket = match &result.outcome {
        CaseOutcome::Compliant { .. } => "audit_cases_compliant",
        CaseOutcome::Infringement { .. } => "audit_cases_infringing",
        CaseOutcome::Inconclusive { .. } => "audit_cases_inconclusive",
        CaseOutcome::Unresolved(_) => "audit_cases_unresolved",
        CaseOutcome::Failed(_) => "audit_cases_failed",
    };
    shard.add_counter(bucket, 1);
    shard.add_counter("audit_entries_total", result.entries as u64);
    shard.observe("case_entries", result.entries as u64);
    shard.observe(
        "case_peak_configurations",
        result.peak_configurations as u64,
    );
}

/// Record streaming-monitor counter *deltas* into a thread-owned shard.
/// Callers hand in the difference between the current [`crate::live::LiveStats`]
/// and the last flushed snapshot so repeated flushes never double-count.
pub fn record_live_metrics(shard: &mut Shard, delta: &crate::live::LiveStats) {
    shard.add_counter("live_entries_total", delta.entries);
    shard.add_counter("live_alarms_total", delta.alarms);
    shard.add_counter("live_after_alarm_total", delta.after_alarm);
    shard.add_counter("live_unresolved_total", delta.unresolved);
    shard.add_counter("live_evictions_total", delta.evictions);
    shard.add_counter("live_rehydrations_total", delta.rehydrations);
    shard.add_counter("live_retired_total", delta.retired);
    shard.add_counter("live_spilled_bytes_total", delta.spilled_bytes);
    shard.add_counter("live_evictions_avoided", delta.evictions_avoided);
    shard.add_counter("live_spill_tier_hits", delta.spill_tier_hits);
    shard.add_counter("live_spill_disk_demotions", delta.spill_disk_demotions);
    shard.add_counter("live_spill_log_bytes", delta.spill_log_bytes);
    shard.add_counter("live_spill_compactions", delta.spill_compactions);
    shard.add_counter("live_cap_rebalances", delta.cap_rebalances);
    shard.add_counter("durable_fsyncs", delta.durable_fsyncs);
    shard.add_counter(
        "durable_torn_tail_truncations",
        delta.durable_torn_tail_truncations,
    );
    shard.add_counter("durable_injected_faults", delta.durable_injected_faults);
    shard.add_counter(
        "durable_enospc_degradations",
        delta.durable_enospc_degradations,
    );
}

/// Export the observability layer's own loss and volume counters. The
/// `obs_events_dropped` aggregate (recorder ring + flight-recorder ring +
/// tracer finished-ring evictions) is the first-class signal that the
/// telemetry itself lost data — silent drops were previously invisible.
pub fn record_observability_metrics(
    registry: &Registry,
    recorder: &obs::Recorder,
    tracer: &obs::Tracer,
) {
    registry.set_counter(
        "obs_events_dropped",
        recorder
            .dropped()
            .saturating_add(obs::flight::dropped())
            .saturating_add(tracer.dropped()),
    );
    registry.set_counter("trace_spans_total", tracer.spans_total());
    registry.set_counter("trace_traces_kept", tracer.traces_kept());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_sorted_and_distinct() {
        for list in [AUDIT_COUNTERS, AUDIT_GAUGES, AUDIT_HISTOGRAMS] {
            for w in list.windows(2) {
                assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn register_predeclares_everything_zero_valued() {
        let reg = Registry::new();
        register_audit_metrics(&reg);
        let json = reg.to_json();
        for name in AUDIT_COUNTERS.iter().chain(AUDIT_GAUGES) {
            assert!(json.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert_eq!(reg.counter_value("audit_cases_total"), 0);
        assert_eq!(reg.histogram("case_entries").count, 0);
    }

    #[test]
    fn every_tracing_stage_has_a_declared_histogram() {
        for stage in obs::STAGES {
            assert!(
                AUDIT_HISTOGRAMS.contains(&stage.histogram_name()),
                "stage {stage} missing from AUDIT_HISTOGRAMS"
            );
        }
    }

    #[test]
    fn recorder_ring_overflow_surfaces_as_obs_events_dropped() {
        let recorder = obs::Recorder::with_capacity(4);
        for i in 0..9u64 {
            recorder.emit(|| obs::ObsEvent::Diagnostic {
                detail: format!("event {i}"),
            });
        }
        assert_eq!(recorder.dropped(), 5, "9 emits into a 4-slot ring drop 5");

        let reg = Registry::new();
        register_audit_metrics(&reg);
        record_observability_metrics(&reg, &recorder, &obs::Tracer::noop());
        assert!(
            reg.counter_value("obs_events_dropped") >= 5,
            "ring drops must surface in the closed vocabulary (flight ring \
             drops from concurrently running tests may add to the floor)"
        );
    }
}
