//! Sharded front for the streaming monitor.
//!
//! Cases are independent (§7), so a live workload shards the same way the
//! batch audit parallelizes: a stable hash of the case name routes every
//! entry of a case to the same [`LiveAuditor`], and shards never touch
//! each other's state. [`ShardedMonitor::ingest`] drives all shards from
//! one interleaved entry stream with scoped threads; per-shard metrics go
//! into worker-owned `obs` shards and are flushed once per
//! [`ShardedMonitor::flush_metrics`] call, exactly as `audit_parallel`
//! flushes once per worker at join.

use crate::auditor::Auditor;
use crate::checkpoint::{decode_sharded, encode_sharded, RestoreError};
use crate::error::CheckError;
use crate::live::{LiveAuditor, LiveConfig, LiveEvent, LiveStats};
use crate::replay::Infringement;
use audit::entry::LogEntry;
use cows::symbol::Symbol;
use obs::Registry;

/// How many entries [`ShardedMonitor::ingest`] observes between automatic
/// resident-budget rebalances.
const REBALANCE_EVERY: u64 = 4096;

/// N independent [`LiveAuditor`]s behind a stable case-hash router.
///
/// The resident budget is adaptive: the per-shard `max_open_cases` from
/// the config is pooled (`N × base`) and periodically redistributed in
/// proportion to each shard's demand — open cases plus recent eviction
/// pressure — so a hot shard borrows headroom an idle one is not using.
pub struct ShardedMonitor {
    shards: Vec<LiveAuditor>,
    /// Per-shard cap the pool was built from.
    base_cap: usize,
    /// Entries ingested since the last automatic rebalance.
    since_rebalance: u64,
    /// Per-shard eviction counters at the last rebalance (rate window).
    evictions_then: Vec<u64>,
    /// Budget redistributions performed.
    rebalances: u64,
    /// `rebalances` already pushed to metrics (delta tracking).
    flushed_rebalances: u64,
}

/// Route a case to a shard: FNV-1a over the case name, reduced mod N.
/// Stable across runs and processes (no `DefaultHasher` seeding), so a
/// checkpoint written by one run routes identically in the next. The key
/// derivation is shared with every other router via [`audit::case_key`] —
/// `watch` and `serve` must agree on where a case lives.
pub fn shard_of(case: Symbol, shards: usize) -> usize {
    audit::partition_of(audit::case_key(case.as_str()), shards)
}

impl ShardedMonitor {
    /// `shards` monitors sharing one auditor configuration. When `config`
    /// spills to a directory, each shard gets its own `shard-N`
    /// subdirectory so spill files never collide across shards.
    pub fn new(auditor: Auditor, config: &LiveConfig, shards: usize) -> ShardedMonitor {
        let n = shards.max(1);
        ShardedMonitor {
            shards: (0..n)
                .map(|i| LiveAuditor::with_config(auditor.clone(), shard_config(config, i)))
                .collect(),
            base_cap: config.max_open_cases.max(1),
            since_rebalance: 0,
            evictions_then: vec![0; n],
            rebalances: 0,
            flushed_rebalances: 0,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Install a request tracer on every shard (cheap `Arc` clones).
    pub fn set_tracer(&mut self, tracer: &obs::Tracer) {
        for s in &mut self.shards {
            s.set_tracer(tracer.clone());
        }
    }

    /// Set (or clear) the trace context spill/rehydrate spans attach to
    /// for entries ingested next. Shards run on independent threads but
    /// each owns its context, so one batch-wide set/clear is race-free.
    pub fn set_trace_context(&mut self, ctx: Option<(obs::TraceId, obs::SpanId)>) {
        for s in &mut self.shards {
            s.set_trace_context(ctx);
        }
    }

    /// Route one entry to its case's shard.
    pub fn observe(&mut self, entry: &LogEntry) -> Result<LiveEvent, CheckError> {
        let i = shard_of(entry.case, self.shards.len());
        self.shards[i].observe(entry)
    }

    /// Drive all shards from one interleaved stream: entries are
    /// partitioned by case hash (preserving relative order, which is all
    /// the per-case sessions need) and every shard consumes its partition
    /// on its own scoped thread. Returns the events in input order.
    pub fn ingest(&mut self, entries: &[LogEntry]) -> Result<Vec<LiveEvent>, CheckError> {
        let n = self.shards.len();
        let mut batches: Vec<Vec<(usize, &LogEntry)>> = vec![Vec::new(); n];
        for (i, e) in entries.iter().enumerate() {
            batches[shard_of(e.case, n)].push((i, e));
        }
        let mut results: Vec<Result<Vec<(usize, LiveEvent)>, CheckError>> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(batches)
                .map(|(shard, batch)| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(batch.len());
                        for (i, e) in batch {
                            out.push((i, shard.observe(e)?));
                        }
                        Ok(out)
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("shard worker panicked"));
            }
        });
        let mut events: Vec<(usize, LiveEvent)> = Vec::with_capacity(entries.len());
        for r in results {
            events.extend(r?);
        }
        events.sort_by_key(|(i, _)| *i);
        self.since_rebalance += entries.len() as u64;
        if self.since_rebalance >= REBALANCE_EVERY {
            self.since_rebalance = 0;
            self.rebalance_caps()?;
        }
        Ok(events.into_iter().map(|(_, e)| e).collect())
    }

    /// Redistribute the pooled resident budget (`N × max_open_cases`)
    /// across shards in proportion to demand: each shard's open cases
    /// plus its evictions since the previous rebalance (the pressure a
    /// too-small cap shows up as). Every shard keeps a small floor so an
    /// idle shard can still admit without immediately thrashing.
    ///
    /// [`ShardedMonitor::ingest`] calls this automatically every
    /// [`REBALANCE_EVERY`] entries; it is public for drivers that feed
    /// entries through [`ShardedMonitor::observe`] one at a time.
    pub fn rebalance_caps(&mut self) -> Result<(), CheckError> {
        let n = self.shards.len();
        if n < 2 {
            return Ok(());
        }
        let floor = self.base_cap.min(2);
        let budget = self.base_cap * n;
        let spread = budget - floor * n;
        let demands: Vec<u64> = self
            .shards
            .iter()
            .zip(&self.evictions_then)
            .map(|(s, &then)| s.open_cases() as u64 + (s.stats().evictions - then))
            .collect();
        let total: u64 = demands.iter().sum();
        let mut caps: Vec<usize> = if total == 0 {
            vec![self.base_cap; n]
        } else {
            demands
                .iter()
                .map(|&d| floor + (spread as u64 * d / total) as usize)
                .collect()
        };
        // Integer division leaves a few slots on the floor; hand them to
        // the hottest shards so the pool is always fully allocated.
        let mut leftover = budget.saturating_sub(caps.iter().sum());
        let mut by_demand: Vec<usize> = (0..n).collect();
        by_demand.sort_by_key(|&i| std::cmp::Reverse(demands[i]));
        for &i in by_demand.iter().cycle().take(leftover.min(budget)) {
            caps[i] += 1;
            leftover -= 1;
            if leftover == 0 {
                break;
            }
        }
        for (shard, cap) in self.shards.iter_mut().zip(caps) {
            shard.set_resident_cap(cap);
            shard.shrink_to_cap()?;
        }
        self.evictions_then = self.shards.iter().map(|s| s.stats().evictions).collect();
        self.rebalances += 1;
        Ok(())
    }

    /// Budget redistributions performed so far.
    pub fn cap_rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Current per-shard resident caps (diagnostics and tests).
    pub fn resident_caps(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.resident_cap()).collect()
    }

    /// Alarms across all shards, sorted by case name (shards race, so
    /// cross-shard chronology is not meaningful; per-shard order is
    /// preserved inside each [`LiveAuditor`]).
    pub fn alarms(&self) -> Vec<(Symbol, &Infringement)> {
        let mut all: Vec<(Symbol, &Infringement)> =
            self.shards.iter().flat_map(|s| s.alarms()).collect();
        all.sort_by_key(|(c, _)| *c);
        all
    }

    /// Counter totals across all shards, plus the monitor-level
    /// rebalance count.
    pub fn stats(&self) -> LiveStats {
        let mut total = self
            .shards
            .iter()
            .fold(LiveStats::default(), |acc, s| acc.plus(&s.stats()));
        total.cap_rebalances = self.rebalances;
        total
    }

    pub fn open_cases(&self) -> usize {
        self.shards.iter().map(|s| s.open_cases()).sum()
    }

    pub fn tracked_cases(&self) -> usize {
        self.shards.iter().map(|s| s.tracked_cases()).sum()
    }

    /// Per-shard access (the router is public so callers can pre-compute
    /// [`shard_of`]).
    pub fn shard(&self, i: usize) -> &LiveAuditor {
        &self.shards[i]
    }

    /// Snapshot one case's verdict, wherever its shard keeps it.
    pub fn snapshot(&self, case: Symbol) -> Option<Result<crate::replay::CaseCheck, CheckError>> {
        self.shards[shard_of(case, self.shards.len())].snapshot(case)
    }

    /// The compact retirement record of one alarmed case, if it has one.
    pub fn closed_case(&self, case: Symbol) -> Option<&crate::live::ClosedCase> {
        self.shards[shard_of(case, self.shards.len())]
            .closed_cases()
            .find(|c| c.case == case)
    }

    /// Retirement records across all shards (arbitrary cross-shard order).
    pub fn closed_cases(&self) -> impl Iterator<Item = &crate::live::ClosedCase> {
        self.shards.iter().flat_map(|s| s.closed_cases())
    }

    /// Retire completed cases on every shard; merged `(retired, errors)`,
    /// both sorted by case.
    pub fn retire_completed(&mut self) -> (Vec<Symbol>, Vec<(Symbol, CheckError)>) {
        let mut retired = Vec::new();
        let mut errors = Vec::new();
        for s in &mut self.shards {
            let (r, e) = s.retire_completed();
            retired.extend(r);
            errors.extend(e);
        }
        retired.sort();
        errors.sort_by_key(|(c, _)| *c);
        (retired, errors)
    }

    /// Run the idle sweep on every shard; evicted cases, sorted.
    pub fn maintain(&mut self) -> Result<Vec<Symbol>, CheckError> {
        let mut evicted = Vec::new();
        for s in &mut self.shards {
            evicted.extend(s.maintain()?);
        }
        evicted.sort();
        Ok(evicted)
    }

    /// Flush per-shard counter deltas into `registry` (one obs shard per
    /// monitor shard, one registry merge each — the `audit_parallel`
    /// discipline) and set the `live_open_cases` occupancy gauge once.
    pub fn flush_metrics(&mut self, registry: &Registry) {
        for s in &mut self.shards {
            let mut obs_shard = registry.shard();
            s.flush_stats_into(&mut obs_shard);
            obs_shard.flush(registry);
        }
        // The rebalance counter lives on the monitor, not a shard; same
        // delta discipline.
        if self.rebalances > self.flushed_rebalances {
            let mut obs_shard = registry.shard();
            crate::metrics::record_live_metrics(
                &mut obs_shard,
                &LiveStats {
                    cap_rebalances: self.rebalances - self.flushed_rebalances,
                    ..LiveStats::default()
                },
            );
            obs_shard.flush(registry);
            self.flushed_rebalances = self.rebalances;
        }
        registry.set_gauge("live_open_cases", self.open_cases() as f64);
    }

    /// Serialize every shard (each a complete monitor checkpoint carrying
    /// `stream_offset`) into one sharded envelope.
    pub fn checkpoint(&self, stream_offset: u64) -> Result<Vec<u8>, CheckError> {
        let blobs = self
            .shards
            .iter()
            .map(|s| s.checkpoint(stream_offset))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(encode_sharded(&blobs))
    }

    /// Rebuild a sharded monitor. The checkpoint must have been written
    /// with the same shard count — the router is a function of N, so a
    /// different N would send future entries of checkpointed cases to the
    /// wrong shard.
    pub fn restore(
        auditor: Auditor,
        config: &LiveConfig,
        shards: usize,
        bytes: &[u8],
    ) -> Result<(ShardedMonitor, u64), RestoreError> {
        let blobs = decode_sharded(bytes)?;
        let n = shards.max(1);
        if blobs.len() != n {
            return Err(RestoreError::ShardCountMismatch {
                found: blobs.len(),
                expected: n,
            });
        }
        let mut restored = Vec::with_capacity(n);
        // Every shard of one checkpoint must reflect the same consumed
        // stream offset — `checkpoint` writes one offset to all shards.
        // A disagreement means a partial or spliced checkpoint: resuming
        // at the max (the old behavior) silently skips entries owed to
        // the lagging shards, and resuming at the min would double-feed
        // shards already ahead (entries carry no sequence numbers, so
        // re-ingest is not idempotent). Refuse with a typed error.
        let mut min_offset = u64::MAX;
        let mut max_offset = 0u64;
        for (i, blob) in blobs.iter().enumerate() {
            let (monitor, o) =
                LiveAuditor::restore(auditor.clone(), shard_config(config, i), blob)?;
            min_offset = min_offset.min(o);
            max_offset = max_offset.max(o);
            restored.push(monitor);
        }
        if min_offset != max_offset {
            return Err(RestoreError::ShardOffsetMismatch {
                min: min_offset,
                max: max_offset,
            });
        }
        let offset = min_offset;
        let evictions_then = restored.iter().map(|s| s.stats().evictions).collect();
        Ok((
            ShardedMonitor {
                shards: restored,
                base_cap: config.max_open_cases.max(1),
                since_rebalance: 0,
                evictions_then,
                rebalances: 0,
                flushed_rebalances: 0,
            },
            offset,
        ))
    }
}

fn shard_config(config: &LiveConfig, i: usize) -> LiveConfig {
    LiveConfig {
        spill_dir: config
            .spill_dir
            .as_ref()
            .map(|d| d.join(format!("shard-{i}"))),
        ..config.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::ProcessRegistry;
    use audit::samples::figure4_trail;
    use bpmn::models::{clinical_trial, healthcare_treatment};
    use cows::sym;
    use policy::samples::{
        clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
    };

    fn auditor() -> Auditor {
        let mut registry = ProcessRegistry::new();
        registry.register(treatment(), healthcare_treatment());
        registry.register(clinical_trial_purpose(), clinical_trial());
        registry.add_case_prefix("HT-", treatment());
        registry.add_case_prefix("CT-", clinical_trial_purpose());
        Auditor::new(registry, extended_hospital_policy(), hospital_context())
    }

    #[test]
    fn routing_is_stable_and_total() {
        for n in [1, 2, 3, 8] {
            for case in ["HT-1", "HT-2", "CT-1", "HT-30"] {
                let i = shard_of(sym(case), n);
                assert!(i < n);
                assert_eq!(i, shard_of(sym(case), n), "routing must be stable");
            }
        }
    }

    #[test]
    fn sharded_ingest_matches_single_monitor() {
        let trail = figure4_trail();
        let mut single = LiveAuditor::new(auditor());
        for e in &trail {
            single.observe(e).unwrap();
        }
        for n in [1, 2, 4] {
            let mut sharded = ShardedMonitor::new(auditor(), &LiveConfig::default(), n);
            let events = sharded.ingest(trail.entries()).unwrap();
            assert_eq!(events.len(), trail.len());
            // Same alarms (sharded sorts by case; single preserves stream
            // order — compare as sets of case names).
            let mut single_alarms: Vec<Symbol> = single.alarms().iter().map(|(c, _)| *c).collect();
            single_alarms.sort();
            let sharded_alarms: Vec<Symbol> = sharded.alarms().iter().map(|(c, _)| *c).collect();
            assert_eq!(single_alarms, sharded_alarms, "at {n} shards");
            // Same per-case verdicts.
            for case in trail.cases() {
                match (single.snapshot(case), sharded.snapshot(case)) {
                    (Some(a), Some(b)) => assert_eq!(
                        a.unwrap().verdict.is_compliant(),
                        b.unwrap().verdict.is_compliant(),
                        "case {case} at {n} shards"
                    ),
                    (a, b) => assert_eq!(a.is_some(), b.is_some()),
                }
            }
            assert_eq!(sharded.stats().entries, trail.len() as u64);
        }
    }

    #[test]
    fn sharded_checkpoint_restores_with_matching_count() {
        let trail = figure4_trail();
        let config = LiveConfig::default();
        let mut sharded = ShardedMonitor::new(auditor(), &config, 3);
        sharded.ingest(trail.entries()).unwrap();
        let bytes = sharded.checkpoint(42).unwrap();

        let (back, offset) = ShardedMonitor::restore(auditor(), &config, 3, &bytes).unwrap();
        assert_eq!(offset, 42);
        assert_eq!(back.tracked_cases(), sharded.tracked_cases());
        assert_eq!(
            back.alarms().iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            sharded.alarms().iter().map(|(c, _)| *c).collect::<Vec<_>>()
        );

        match ShardedMonitor::restore(auditor(), &config, 2, &bytes) {
            Err(RestoreError::ShardCountMismatch {
                found: 3,
                expected: 2,
            }) => {}
            other => panic!("expected shard-count mismatch, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn restore_refuses_unequal_shard_offsets() {
        // A spliced envelope whose shards checkpointed at different stream
        // offsets must be rejected with the typed mismatch error — the old
        // behavior resumed at the max and silently skipped the entries
        // still owed to the lagging shards.
        let trail = figure4_trail();
        let config = LiveConfig::default();
        let mut sharded = ShardedMonitor::new(auditor(), &config, 3);
        sharded.ingest(trail.entries()).unwrap();
        let blobs: Vec<Vec<u8>> = sharded
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.checkpoint(100 * (i as u64 + 1)).unwrap())
            .collect();
        let bytes = encode_sharded(&blobs);
        match ShardedMonitor::restore(auditor(), &config, 3, &bytes) {
            Err(RestoreError::ShardOffsetMismatch { min: 100, max: 300 }) => {}
            other => panic!("expected shard-offset mismatch, got ok={:?}", other.is_ok()),
        }
        // Agreeing shards still restore, at exactly the shared offset.
        let bytes = sharded.checkpoint(250).unwrap();
        let (_, offset) = ShardedMonitor::restore(auditor(), &config, 3, &bytes).unwrap();
        assert_eq!(offset, 250);
    }

    #[test]
    fn hot_shards_borrow_headroom_from_idle_ones() {
        // Eight single-case observations all land wherever their shard
        // hash says; with a tiny base cap the loaded shards show demand
        // (open cases + evictions) and a manual rebalance must hand them
        // budget from the idle ones — while conserving the pool.
        let config = LiveConfig {
            max_open_cases: 4,
            ..LiveConfig::default()
        };
        let n = 3;
        let mut sharded = ShardedMonitor::new(auditor(), &config, n);
        let trail = figure4_trail();
        sharded.ingest(trail.entries()).unwrap();
        sharded.rebalance_caps().unwrap();
        assert_eq!(sharded.cap_rebalances(), 1);
        assert_eq!(sharded.stats().cap_rebalances, 1);
        let caps = sharded.resident_caps();
        assert_eq!(caps.iter().sum::<usize>(), 4 * n, "pool is conserved");
        assert!(caps.iter().all(|&c| c >= 2), "every shard keeps the floor");
        // Demand concentrates where the cases hashed; the busiest shard
        // must hold at least as much budget as the emptiest.
        let open: Vec<usize> = (0..n).map(|i| sharded.shard(i).open_cases()).collect();
        let hottest = (0..n).max_by_key(|&i| open[i]).unwrap();
        let coldest = (0..n).min_by_key(|&i| open[i]).unwrap();
        assert!(caps[hottest] >= caps[coldest]);
        // The capacity invariant holds after shrinking to the new caps.
        for i in 0..n {
            assert!(sharded.shard(i).open_cases() <= sharded.shard(i).resident_cap());
        }
    }

    #[test]
    fn metrics_flush_is_delta_not_cumulative() {
        let trail = figure4_trail();
        let registry = Registry::new();
        crate::metrics::register_audit_metrics(&registry);
        let mut sharded = ShardedMonitor::new(auditor(), &LiveConfig::default(), 2);
        sharded.ingest(trail.entries()).unwrap();
        sharded.flush_metrics(&registry);
        let first = registry.counter_value("live_entries_total");
        assert_eq!(first, trail.len() as u64);
        assert_eq!(
            registry.counter_value("live_alarms_total"),
            sharded.stats().alarms
        );
        // A second flush with no new entries must add nothing.
        sharded.flush_metrics(&registry);
        assert_eq!(registry.counter_value("live_entries_total"), first);
        assert_eq!(
            registry.gauge_value("live_open_cases"),
            sharded.open_cases() as f64
        );
    }
}
