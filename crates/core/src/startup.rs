//! Warm-vs-cold startup accounting for the snapshot subsystem.
//!
//! `purposectl check/audit` tries to load a [`ProcessAutomaton`] snapshot
//! before replaying (see `cows::automaton::snapshot`). This module is the
//! stats surface that says how that went: whether the run started warm,
//! what the snapshot contributed, and — when it started cold — why the
//! snapshot was rejected. The CLI prints it; tests assert on it.
//!
//! [`ProcessAutomaton`]: cows::ProcessAutomaton

use cows::{MergeReport, SnapshotError};
use std::fmt;

/// How a replay run's automaton came to life.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StartupStats {
    /// `Some(report)` if a snapshot merged successfully, `None` on a cold
    /// start (no snapshot attempted, or the load failed).
    pub loaded: Option<MergeReport>,
    /// Why the load fell back to cold compilation, if it did. `None` both
    /// on success and when no snapshot was attempted.
    pub fallback: Option<String>,
}

impl StartupStats {
    /// A run that never looked for a snapshot.
    pub fn cold() -> StartupStats {
        StartupStats::default()
    }

    /// Classify a load attempt. Every [`SnapshotError`] becomes a logged
    /// fallback reason — fail-open means the error is recorded, never
    /// propagated into the verdict path.
    pub fn from_load(result: Result<MergeReport, SnapshotError>) -> StartupStats {
        match result {
            Ok(report) => StartupStats {
                loaded: Some(report),
                fallback: None,
            },
            Err(e) => StartupStats {
                loaded: None,
                fallback: Some(e.to_string()),
            },
        }
    }

    /// Whether the automaton started warm (a snapshot contributed at least
    /// one compiled edge table).
    pub fn is_warm(&self) -> bool {
        self.loaded.map(|r| r.is_warm()).unwrap_or(false)
    }

    /// Export into a metrics registry: one warm- or cold-start tick (add
    /// semantics — audits start one automaton per registered process).
    pub fn export_into(&self, registry: &obs::Registry) {
        if self.is_warm() {
            registry.add_counter("startup_warm_total", 1);
        } else {
            registry.add_counter("startup_cold_total", 1);
        }
    }
}

impl fmt::Display for StartupStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.loaded, &self.fallback) {
            (Some(r), _) => write!(
                f,
                "warm start: {} states, {} edge tables from snapshot ({} new)",
                r.snapshot_states, r.edges_loaded, r.new_states
            ),
            (None, Some(reason)) => write!(f, "cold start: {reason}"),
            (None, None) => write!(f, "cold start"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_display() {
        let cold = StartupStats::cold();
        assert!(!cold.is_warm());
        assert_eq!(cold.to_string(), "cold start");

        let failed = StartupStats::from_load(Err(SnapshotError::BadMagic));
        assert!(!failed.is_warm());
        assert!(failed.to_string().contains("cold start"));
        assert!(failed.to_string().contains("bad magic"));

        let warm = StartupStats::from_load(Ok(MergeReport {
            snapshot_states: 10,
            new_states: 10,
            edges_loaded: 9,
            silent_loaded: 4,
            tokens_loaded: 4,
        }));
        assert!(warm.is_warm());
        assert!(warm.to_string().contains("warm start: 10 states"));

        // A snapshot that carried states but no edges is not warm: every
        // lookup still runs weak_next.
        let statesonly = StartupStats::from_load(Ok(MergeReport {
            snapshot_states: 3,
            new_states: 3,
            ..MergeReport::default()
        }));
        assert!(!statesonly.is_warm());
    }
}
