//! The tiered spill store: where evicted cases go, cheaply — and now
//! durably.
//!
//! P12 profiled the old spill path — one `create_dir_all` + `fs::write`
//! per eviction, one `read` + `remove_file` per rehydration — at tens of
//! thousands of filesystem round trips per run. This store replaces it
//! with two tiers:
//!
//! 1. **A compressed in-memory tier** (size-capped). Evicted blobs are
//!    parked in a map; rehydrating from here is a pure memory operation
//!    (`tier_hits`). Under churn — the P12 regime, where the same hot
//!    cases thrash in and out — almost every rehydration is served here
//!    and the disk is never touched. Compression is pressure-gated: blobs
//!    park raw while the tier sits below half its budget (the codec costs
//!    nothing in the common regime) and LZ-compress only once the
//!    watermark is crossed, raw residents repacking before any demotion.
//! 2. **A single append-only spill log**. When the memory tier overflows
//!    its byte budget, the least-recently-spilled blobs are demoted into a
//!    pending buffer and flushed to `spill.log` in coalesced batched
//!    appends (one `write` per ~256 KiB, not per case). An in-memory
//!    offset index serves reads; records orphaned by rehydration or
//!    retirement become dead bytes, and when dead outweighs live the log
//!    is compacted (rewrite + rename).
//!
//! Writes go through [`crate::durable`]: appends land via a
//! [`DurableFile`] whose fsync cadence follows the store's
//! [`SyncPolicy`], and compaction replaces the log with the full
//! write → fsync → rename → dir-fsync sequence, so a crash mid-compaction
//! can never leave a half-written log in place. Every record carries an
//! FNV-1a-64 checksum; [`recover_log`] scans a log front to back and
//! stops at the first record whose header, length or checksum does not
//! hold — the torn-tail truncation point. A failed append repairs itself
//! the same way: the file is truncated back to the last known-good tail
//! and the batch is requeued, so the in-memory index never references
//! bytes that might not exist.
//!
//! The store is format-agnostic: blobs are opaque bytes, so the run-local
//! `PCLE` churn envelope and the durable `PCLC` checkpoints (inserted by
//! monitor restore) coexist; the reader dispatches on magic. The log is
//! strictly run-scoped — created fresh, deleted on drop — and
//! construction sweeps stale `*.pclc` per-case files and leftover logs
//! that a previous run (or crash) left in the directory, counting a
//! torn-tail truncation when a leftover log ends mid-record. (Cross-run
//! blob *adoption* is deliberately impossible: records key on interner
//! indices, which are process-local; durability across runs comes from
//! monitor checkpoints, not the spill log.)

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use cows::symbol::Symbol;
use cows::StableHasher;

use crate::durable::{self, atomic_write_sync, DurableFile, SyncPolicy};

/// Coalescing threshold: demoted blobs accumulate in the pending buffer
/// until this many bytes are ready, then hit the log in one append.
const FLUSH_BYTES: usize = 256 * 1024;

/// Compact when the log carries more dead than live payload, but never
/// for a trivially small log.
const COMPACT_MIN_DEAD: u64 = 64 * 1024;

/// Spill-store traffic counters, merged into
/// [`crate::live::LiveStats`] by the monitor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Rehydrations served from the in-memory tier (no disk involved).
    pub tier_hits: u64,
    /// Blobs actually written to the spill log (the real disk evictions).
    pub disk_demotions: u64,
    /// Total bytes appended to the spill log.
    pub log_bytes: u64,
    /// Log compactions (rewrite + rename).
    pub compactions: u64,
    /// `fsync` calls issued for the log and its compactions.
    pub fsyncs: u64,
    /// Torn tails truncated: leftover logs that ended mid-record at
    /// construction, plus failed appends repaired by truncating back to
    /// the last known-good tail.
    pub torn_tail_truncations: u64,
    /// Faults injected into this store's log writes (test/chaos builds).
    pub injected_faults: u64,
}

/// A spill-store failure, typed so callers can tell "disk full" (degrade
/// by keeping the case resident) from "disk broken" (surface a typed
/// error) from "bytes corrupt" (never silently trusted).
#[derive(Debug)]
pub enum SpillError {
    /// An I/O operation on the spill log or its directory failed.
    Io {
        op: &'static str,
        path: PathBuf,
        source: io::Error,
    },
    /// A stored blob failed to decode.
    Codec { detail: String },
}

impl SpillError {
    fn io<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(io::Error) -> SpillError + 'a {
        move |source| SpillError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }

    /// `true` when the failure means the disk is full — the one class
    /// the live monitor degrades through instead of surfacing.
    pub fn is_no_space(&self) -> bool {
        matches!(self, SpillError::Io { source, .. } if durable::is_no_space(source))
    }
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            SpillError::Codec { detail } => write!(f, "spill blob corrupt: {detail}"),
        }
    }
}

impl std::error::Error for SpillError {}

/// The open spill log plus its in-memory read index.
struct SpillLog {
    path: PathBuf,
    file: DurableFile,
    /// `case -> (payload offset, payload length)`.
    index: HashMap<Symbol, (u64, u32)>,
    /// Append position.
    tail: u64,
    /// Payload bytes still reachable through the index.
    live_bytes: u64,
    /// Payload + header bytes orphaned by take/remove/replace.
    dead_bytes: u64,
}

/// Record header in the log: case interner index (u32 LE) + payload
/// length (u32 LE) + FNV-1a-64 checksum of the payload keyed by the case
/// (u64 LE). The checksum is what lets [`recover_log`] tell a fully
/// written record from a torn tail.
const REC_HEADER: u64 = 16;

/// Checksum of one record: the case index folded in first so a payload
/// can't validate under the wrong case.
fn record_checksum(case_index: u32, payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(&case_index.to_le_bytes());
    h.write(payload);
    h.finish()
}

/// What a torn-tail scan of a spill log recovered.
pub struct LogRecovery {
    /// Fully written records in file order: the case's raw interner index
    /// (interner indices are process-local — a cross-run reader must not
    /// trust them as symbols) and the stored, still-compressed blob
    /// (see [`decompress`]). Superseded records of a replaced case appear
    /// before their replacement; last write wins.
    pub records: Vec<(u32, Vec<u8>)>,
    /// Bytes of the valid prefix — where a repairing truncate would cut.
    pub valid_bytes: u64,
    /// Torn/garbage tail bytes beyond the valid prefix.
    pub dropped_bytes: u64,
}

/// Scan a spill log front to back, stopping at the first record whose
/// header, length or checksum does not hold. Everything before the stop
/// point is returned; everything after is the torn tail.
pub fn recover_log(path: &Path) -> Result<LogRecovery, SpillError> {
    let bytes = fs::read(path).map_err(SpillError::io("read spill log", path))?;
    Ok(scan_records(&bytes))
}

fn scan_records(bytes: &[u8]) -> LogRecovery {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + REC_HEADER as usize) {
        let case = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let stored = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let payload_at = pos + REC_HEADER as usize;
        let Some(payload) = bytes.get(payload_at..payload_at + len) else {
            break;
        };
        if record_checksum(case, payload) != stored {
            break;
        }
        records.push((case, payload.to_vec()));
        pos = payload_at + len;
    }
    LogRecovery {
        records,
        valid_bytes: pos as u64,
        dropped_bytes: (bytes.len() - pos) as u64,
    }
}

/// A two-tier store of evicted-case blobs, keyed by case symbol.
pub struct SpillStore {
    dir: Option<PathBuf>,
    /// Byte budget of the (compressed) memory tier. Ignored when there is
    /// no directory — with nowhere to demote to, the tier is unbounded,
    /// which is the old `Spilled::Memory` behavior and the right default
    /// for tests and bounded runs.
    mem_cap: usize,
    /// Fsync cadence for log appends and compactions.
    policy: SyncPolicy,
    mem: HashMap<Symbol, (u64, Vec<u8>)>,
    /// Demotion order: `(case, generation)` pairs; stale generations are
    /// skipped, so re-spilled cases are only demoted at their newest slot.
    mem_order: VecDeque<(Symbol, u64)>,
    mem_bytes: usize,
    generation: u64,
    /// Demoted blobs awaiting a coalesced append.
    pending: HashMap<Symbol, Vec<u8>>,
    pending_bytes: usize,
    log: Option<SpillLog>,
    /// Stale files removed from the directory at construction.
    orphans_swept: usize,
    stats: SpillStats,
}

impl SpillStore {
    /// Open a store over `dir` (`None` = memory only). Sweeps orphaned
    /// `*.pclc` per-case spill files and stale `spill.log*` leftovers from
    /// previous runs — scanning a leftover `spill.log` first, so a tail
    /// torn by the previous crash is counted before the file goes; the
    /// sweep is best-effort — an unreadable directory just yields a store
    /// that will surface the IO error on first demote.
    pub fn new(dir: Option<PathBuf>, mem_cap: usize, policy: SyncPolicy) -> SpillStore {
        let mut orphans_swept = 0;
        let mut stats = SpillStats::default();
        if let Some(d) = &dir {
            if let Ok(listing) = fs::read_dir(d) {
                for entry in listing.flatten() {
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if !name.ends_with(".pclc") && !name.starts_with("spill.log") {
                        continue;
                    }
                    if name == "spill.log" {
                        if let Ok(scan) = recover_log(&entry.path()) {
                            if scan.dropped_bytes > 0 {
                                stats.torn_tail_truncations += 1;
                            }
                        }
                    }
                    if fs::remove_file(entry.path()).is_ok() {
                        orphans_swept += 1;
                    }
                }
            }
        }
        SpillStore {
            dir,
            mem_cap,
            policy,
            mem: HashMap::new(),
            mem_order: VecDeque::new(),
            mem_bytes: 0,
            generation: 0,
            pending: HashMap::new(),
            pending_bytes: 0,
            log: None,
            orphans_swept,
            stats,
        }
    }

    /// Stale spill files removed at construction (restore's orphan sweep).
    pub fn orphans_swept(&self) -> usize {
        self.orphans_swept
    }

    pub fn stats(&self) -> SpillStats {
        let mut stats = self.stats;
        if let Some(log) = &self.log {
            let file = log.file.stats();
            stats.fsyncs += file.fsyncs;
            stats.injected_faults += file.injected_faults;
        }
        stats
    }

    pub fn len(&self) -> usize {
        self.mem.len() + self.pending.len() + self.log.as_ref().map_or(0, |l| l.index.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn contains(&self, case: Symbol) -> bool {
        self.mem.contains_key(&case)
            || self.pending.contains_key(&case)
            || self
                .log
                .as_ref()
                .is_some_and(|l| l.index.contains_key(&case))
    }

    /// Every spilled case, unordered.
    pub fn cases(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.mem.keys().copied().collect();
        v.extend(self.pending.keys().copied());
        if let Some(l) = &self.log {
            v.extend(l.index.keys().copied());
        }
        v
    }

    /// Park a blob. Replaces any previous spill of the same case.
    ///
    /// Compression is pressure-gated: while the tier sits below half its
    /// byte budget, blobs park raw (a tag byte and a memcpy — the common
    /// churn regime, where the resident spill set is far smaller than the
    /// budget, pays no codec at all). Once the tier passes the watermark,
    /// new blobs compress on the way in and raw-parked ones compress on
    /// their way out (see the overflow loop), so the budget is still
    /// honored in actual bytes and the disk still receives compressed
    /// records.
    pub fn insert(&mut self, case: Symbol, payload: &[u8]) -> Result<(), SpillError> {
        self.forget(case);
        let pressured =
            self.dir.is_some() && (self.mem_bytes + payload.len()).saturating_mul(2) > self.mem_cap;
        let blob = if pressured {
            compress(payload)
        } else {
            let mut raw = Vec::with_capacity(payload.len() + 1);
            raw.push(TAG_RAW);
            raw.extend_from_slice(payload);
            raw
        };
        self.mem_bytes += blob.len();
        self.generation += 1;
        self.mem_order.push_back((case, self.generation));
        self.mem.insert(case, (self.generation, blob));
        if self.dir.is_some() {
            while self.mem_bytes > self.mem_cap {
                let Some((victim, generation)) = self.mem_order.pop_front() else {
                    break;
                };
                match self.mem.get(&victim) {
                    Some(&(g, _)) if g == generation => {}
                    _ => continue, // stale order slot: taken, removed or re-spilled
                }
                let (_, blob) = self.mem.remove(&victim).expect("checked above");
                self.mem_bytes -= blob.len();
                // A raw-parked blob compresses on its way out; when the
                // reclaimed bytes alone bring the tier back under budget,
                // it stays resident instead of touching disk. (If the
                // data is incompressible the repack is a no-gain copy and
                // the demotion proceeds — no retry loop.)
                let blob = if blob.first() == Some(&TAG_RAW) {
                    let packed = compress(&blob[1..]);
                    if self.mem_bytes + packed.len() <= self.mem_cap {
                        self.mem_bytes += packed.len();
                        self.generation += 1;
                        self.mem_order.push_back((victim, self.generation));
                        self.mem.insert(victim, (self.generation, packed));
                        continue;
                    }
                    packed
                } else {
                    blob
                };
                self.pending_bytes += blob.len();
                self.pending.insert(victim, blob);
            }
            // A zero-byte memory tier means "nothing buffered": flush on
            // every insert instead of coalescing.
            let threshold = if self.mem_cap == 0 { 0 } else { FLUSH_BYTES };
            if self.pending_bytes >= threshold && !self.pending.is_empty() {
                self.flush_pending()?;
            }
        }
        Ok(())
    }

    /// Take a blob out of the store (the rehydration read).
    pub fn take(&mut self, case: Symbol) -> Result<Option<Vec<u8>>, SpillError> {
        if let Some((_, blob)) = self.mem.remove(&case) {
            self.mem_bytes -= blob.len();
            self.stats.tier_hits += 1;
            return decode(&blob).map(Some);
        }
        if let Some(blob) = self.pending.remove(&case) {
            self.pending_bytes -= blob.len();
            self.stats.tier_hits += 1; // never reached disk
            return decode(&blob).map(Some);
        }
        let Some(log) = &mut self.log else {
            return Ok(None);
        };
        let Some((offset, len)) = log.index.remove(&case) else {
            return Ok(None);
        };
        log.live_bytes -= u64::from(len);
        log.dead_bytes += REC_HEADER + u64::from(len);
        let mut blob = vec![0u8; len as usize];
        log.file
            .read_at(offset, &mut blob)
            .map_err(SpillError::io("read spill log", &log.path))?;
        self.maybe_compact()?;
        decode(&blob).map(Some)
    }

    /// Read a blob without removing it or touching the counters (used for
    /// read-only snapshots and whole-monitor checkpoints).
    pub fn peek(&self, case: Symbol) -> Result<Option<Vec<u8>>, SpillError> {
        if let Some((_, blob)) = self.mem.get(&case) {
            return decode(blob).map(Some);
        }
        if let Some(blob) = self.pending.get(&case) {
            return decode(blob).map(Some);
        }
        let Some(log) = &self.log else {
            return Ok(None);
        };
        let Some(&(offset, len)) = log.index.get(&case) else {
            return Ok(None);
        };
        // A fresh read handle keeps peeks `&self`; they are rare (operator
        // snapshots, whole-monitor checkpoints), never the churn path.
        let mut file =
            fs::File::open(&log.path).map_err(SpillError::io("open spill log", &log.path))?;
        let mut blob = vec![0u8; len as usize];
        file.seek(SeekFrom::Start(offset))
            .and_then(|_| file.read_exact(&mut blob))
            .map_err(SpillError::io("read spill log", &log.path))?;
        decode(&blob).map(Some)
    }

    /// Drop a case from every tier (retirement cleanup). Compacts the log
    /// when the removal tips the dead-byte balance.
    pub fn remove(&mut self, case: Symbol) -> Result<(), SpillError> {
        self.forget(case);
        self.maybe_compact()
    }

    /// Untrack `case` everywhere without compaction.
    fn forget(&mut self, case: Symbol) {
        if let Some((_, blob)) = self.mem.remove(&case) {
            self.mem_bytes -= blob.len();
        }
        if let Some(blob) = self.pending.remove(&case) {
            self.pending_bytes -= blob.len();
        }
        if let Some(log) = &mut self.log {
            if let Some((_, len)) = log.index.remove(&case) {
                log.live_bytes -= u64::from(len);
                log.dead_bytes += REC_HEADER + u64::from(len);
            }
        }
    }

    /// One coalesced append of everything pending.
    ///
    /// The index is only updated after the write (and its policy-driven
    /// fsync) succeed. On failure the file is truncated back to the old
    /// tail — repairing any torn partial write — and the batch is
    /// requeued, so a later flush (or rehydration from the pending
    /// buffer) still sees every blob.
    fn flush_pending(&mut self) -> Result<(), SpillError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let dir = self
            .dir
            .clone()
            .expect("pending only accumulates with a dir");
        if self.log.is_none() {
            fs::create_dir_all(&dir).map_err(SpillError::io("create spill dir", &dir))?;
            let path = dir.join("spill.log");
            let file = DurableFile::create(&path, self.policy)
                .map_err(SpillError::io("create spill log", &path))?;
            self.log = Some(SpillLog {
                path,
                file,
                index: HashMap::new(),
                tail: 0,
                live_bytes: 0,
                dead_bytes: 0,
            });
        }
        let log = self.log.as_mut().expect("created above");
        let mut batch =
            Vec::with_capacity(self.pending_bytes + REC_HEADER as usize * self.pending.len());
        let mut drained: Vec<(Symbol, Vec<u8>)> = self.pending.drain().collect();
        self.pending_bytes = 0;
        drained.sort_by_key(|(c, _)| *c);
        let mut placed: Vec<(Symbol, u64, u32)> = Vec::with_capacity(drained.len());
        for (case, blob) in &drained {
            let len = u32::try_from(blob.len()).expect("spill blobs are far below 4 GiB");
            batch.extend_from_slice(&case.index().to_le_bytes());
            batch.extend_from_slice(&len.to_le_bytes());
            batch.extend_from_slice(&record_checksum(case.index(), blob).to_le_bytes());
            let payload_at = log.tail + batch.len() as u64;
            batch.extend_from_slice(blob);
            placed.push((*case, payload_at, len));
        }
        if let Err(source) = log.file.write_at(log.tail, &batch) {
            let _ = log.file.set_len(log.tail);
            let path = log.path.clone();
            self.stats.torn_tail_truncations += 1;
            for (case, blob) in drained {
                self.pending_bytes += blob.len();
                self.pending.insert(case, blob);
            }
            return Err(SpillError::Io {
                op: "append spill log",
                path,
                source,
            });
        }
        for (case, payload_at, len) in placed {
            if let Some((_, old)) = log.index.insert(case, (payload_at, len)) {
                log.live_bytes -= u64::from(old);
                log.dead_bytes += REC_HEADER + u64::from(old);
            }
            log.live_bytes += u64::from(len);
            self.stats.disk_demotions += 1;
        }
        log.tail += batch.len() as u64;
        self.stats.log_bytes += batch.len() as u64;
        Ok(())
    }

    /// Rewrite the log with only live records once dead bytes dominate.
    /// The rewrite goes through [`atomic_write_sync`] — tmp, fsync,
    /// rename, dir fsync — so a crash mid-compaction leaves either the
    /// old log or the new one, never a hybrid.
    fn maybe_compact(&mut self) -> Result<(), SpillError> {
        let Some(log) = &self.log else {
            return Ok(());
        };
        if log.dead_bytes < COMPACT_MIN_DEAD || log.dead_bytes <= log.live_bytes {
            return Ok(());
        }
        let policy = self.policy;
        let log = self.log.as_mut().expect("checked above");
        let mut entries: Vec<(Symbol, u64, u32)> = log
            .index
            .iter()
            .map(|(&c, &(off, len))| (c, off, len))
            .collect();
        entries.sort_by_key(|&(_, off, _)| off);
        let mut rewritten = Vec::new();
        let mut index = HashMap::with_capacity(entries.len());
        let mut live_bytes = 0u64;
        for (case, offset, len) in entries {
            let mut blob = vec![0u8; len as usize];
            log.file
                .read_at(offset, &mut blob)
                .map_err(SpillError::io("compact: read spill log", &log.path))?;
            rewritten.extend_from_slice(&case.index().to_le_bytes());
            rewritten.extend_from_slice(&len.to_le_bytes());
            rewritten.extend_from_slice(&record_checksum(case.index(), &blob).to_le_bytes());
            index.insert(case, (rewritten.len() as u64, len));
            rewritten.extend_from_slice(&blob);
            live_bytes += u64::from(len);
        }
        // The old handle's counters would vanish with the handle — fold
        // them into the store's totals before the swap.
        let retiring = log.file.stats();
        self.stats.fsyncs += retiring.fsyncs;
        self.stats.injected_faults += retiring.injected_faults;
        let fsyncs = atomic_write_sync(&log.path, &rewritten, policy)
            .map_err(SpillError::io("compact: replace spill log", &log.path))?;
        self.stats.fsyncs += fsyncs;
        log.file = DurableFile::open(&log.path, policy)
            .map_err(SpillError::io("compact: reopen spill log", &log.path))?;
        log.tail = rewritten.len() as u64;
        log.index = index;
        log.live_bytes = live_bytes;
        log.dead_bytes = 0;
        self.stats.compactions += 1;
        Ok(())
    }
}

impl Drop for SpillStore {
    /// The log is run-scoped scratch, never a durability surface — remove
    /// it so nothing lingers for the next run's orphan sweep.
    fn drop(&mut self) {
        if let Some(log) = &self.log {
            let _ = fs::remove_file(log.path());
        }
    }
}

impl SpillLog {
    fn path(&self) -> &Path {
        &self.path
    }
}

/// Decode a stored blob, lifting codec failures into [`SpillError`].
fn decode(blob: &[u8]) -> Result<Vec<u8>, SpillError> {
    decompress(blob).map_err(|detail| SpillError::Codec { detail })
}

// ---------------------------------------------------------------------------
// Compression: a dependency-free LZSS
// ---------------------------------------------------------------------------
//
// Checkpoint blobs are full of repeated structure (shared path prefixes,
// runs of similar entries), so even a minimal LZ pass roughly halves them
// — which doubles the effective capacity of the memory tier, the number
// that decides whether churn ever reaches disk. Greedy matching against a
// single-slot 3-byte-prefix hash table; matches are 2 bytes (12-bit
// backward distance, 4-bit length for 3..=18), literals 1 byte, flags
// packed 8 per control byte. If that fails to win, the blob is stored raw
// behind a 1-byte tag, so compression never costs more than one byte.

const TAG_RAW: u8 = 0;
const TAG_LZ: u8 = 1;
const WINDOW: usize = 1 << 12;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 15;

#[inline]
fn prefix_hash(bytes: &[u8]) -> usize {
    let p = u32::from(bytes[0]) | u32::from(bytes[1]) << 8 | u32::from(bytes[2]) << 16;
    (p.wrapping_mul(0x9e37_79b1) >> 19) as usize & (WINDOW - 1)
}

/// Compress `input`; the result always round-trips through [`decompress`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.push(TAG_LZ);
    out.extend_from_slice(&(u32::try_from(input.len()).expect("blob < 4 GiB")).to_le_bytes());
    let mut table = [usize::MAX; WINDOW];
    let mut i = 0usize;
    let mut flags_at = usize::MAX;
    let mut flag_count = 8u8;
    while i < input.len() {
        if flag_count == 8 {
            flags_at = out.len();
            out.push(0);
            flag_count = 0;
        }
        let mut matched = 0usize;
        let mut distance = 0usize;
        if i + MIN_MATCH <= input.len() {
            let slot = prefix_hash(&input[i..]);
            let candidate = table[slot];
            table[slot] = i;
            if candidate != usize::MAX && i - candidate <= WINDOW && candidate < i {
                let limit = MAX_MATCH.min(input.len() - i);
                let mut l = 0;
                while l < limit && input[candidate + l] == input[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    matched = l;
                    distance = i - candidate;
                }
            }
        }
        if matched >= MIN_MATCH {
            // Flag bit 0 = match; 12-bit distance-1 | 4-bit length-3.
            let token = ((distance - 1) as u16) << 4 | (matched - MIN_MATCH) as u16;
            out.extend_from_slice(&token.to_le_bytes());
            i += matched;
        } else {
            out[flags_at] |= 1 << flag_count;
            out.push(input[i]);
            i += 1;
        }
        flag_count += 1;
    }
    if out.len() > input.len() {
        let mut raw = Vec::with_capacity(input.len() + 1);
        raw.push(TAG_RAW);
        raw.extend_from_slice(input);
        return raw;
    }
    out
}

/// Invert [`compress`].
pub fn decompress(blob: &[u8]) -> Result<Vec<u8>, String> {
    match blob.split_first() {
        Some((&TAG_RAW, rest)) => Ok(rest.to_vec()),
        Some((&TAG_LZ, rest)) => {
            if rest.len() < 4 {
                return Err("compressed blob truncated before length".into());
            }
            let expect = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            let mut out = Vec::with_capacity(expect);
            let mut pos = 4usize;
            let mut flags = 0u8;
            let mut flag_count = 8u8;
            while out.len() < expect {
                if flag_count == 8 {
                    flags = *rest.get(pos).ok_or("compressed blob truncated at flags")?;
                    pos += 1;
                    flag_count = 0;
                }
                if flags >> flag_count & 1 == 1 {
                    out.push(
                        *rest
                            .get(pos)
                            .ok_or("compressed blob truncated at literal")?,
                    );
                    pos += 1;
                } else {
                    let lo = *rest.get(pos).ok_or("compressed blob truncated at match")?;
                    let hi = *rest
                        .get(pos + 1)
                        .ok_or("compressed blob truncated at match")?;
                    pos += 2;
                    let token = u16::from_le_bytes([lo, hi]);
                    let distance = (token >> 4) as usize + 1;
                    let length = (token & 0xf) as usize + MIN_MATCH;
                    if distance > out.len() {
                        return Err("match distance before start of output".into());
                    }
                    let start = out.len() - distance;
                    for k in 0..length {
                        // Overlapping copies are the RLE case; index math
                        // stays valid because out grows as we push.
                        let b = out[start + k];
                        out.push(b);
                    }
                }
                flag_count += 1;
            }
            if out.len() != expect {
                return Err("decompressed length mismatch".into());
            }
            Ok(out)
        }
        _ => Err("empty or untagged compressed blob".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::fault;
    use cows::sym;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("purposectl-tests")
            .join(format!("spill-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn compression_round_trips() {
        let samples: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).cycle().take(4096).collect(),
            b"PCLE[Jane]EPR/Clinical[Jane]EPR/Clinical[Jane]EPR/Demographics".to_vec(),
        ];
        for s in samples {
            let c = compress(&s);
            assert_eq!(decompress(&c).unwrap(), s, "sample len {}", s.len());
            assert!(c.len() <= s.len() + 5, "never more than tag+len overhead");
        }
    }

    #[test]
    fn repetitive_blobs_actually_shrink() {
        let blob: Vec<u8> = b"T06 HT-99 201007060900 success "
            .iter()
            .cycle()
            .take(4096)
            .copied()
            .collect();
        let c = compress(&blob);
        assert!(c.len() * 2 < blob.len(), "{} vs {}", c.len(), blob.len());
    }

    #[test]
    fn memory_only_store_round_trips() {
        let mut store = SpillStore::new(None, 0, SyncPolicy::Never);
        let payload = b"hello spill".to_vec();
        store.insert(sym("S-1"), &payload).unwrap();
        assert!(store.contains(sym("S-1")));
        assert_eq!(store.len(), 1);
        assert_eq!(store.peek(sym("S-1")).unwrap().unwrap(), payload);
        assert_eq!(store.take(sym("S-1")).unwrap().unwrap(), payload);
        assert_eq!(store.stats().tier_hits, 1);
        assert_eq!(store.stats().disk_demotions, 0);
        assert!(store.is_empty());
        assert!(store.take(sym("S-1")).unwrap().is_none());
    }

    /// Hash-mixed (incompressible) payloads so tests really reach disk.
    fn mixed_payload(i: u32, len: u64) -> Vec<u8> {
        (0..len)
            .map(|j| {
                let mut h = u64::from(i) * len + j;
                h = (h ^ (h >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                h = (h ^ (h >> 29)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
                (h ^ (h >> 32)) as u8
            })
            .collect()
    }

    #[test]
    fn overflowing_the_memory_tier_demotes_to_the_log() {
        let dir = scratch("demote");
        // A tiny memory tier and an incompressible payload force demotion;
        // FLUSH_BYTES is reached after enough inserts.
        let mut store = SpillStore::new(Some(dir.clone()), 1024, SyncPolicy::Batched(8));
        let payloads: Vec<(Symbol, Vec<u8>)> = (0..600u32)
            .map(|i| (sym(&format!("D-{i}")), mixed_payload(i, 700)))
            .collect();
        for (case, payload) in &payloads {
            store.insert(*case, payload).unwrap();
        }
        assert!(store.stats().disk_demotions > 0, "log must be reached");
        assert!(store.stats().log_bytes > 0);
        assert!(dir.join("spill.log").exists());
        // Every blob still reads back, from whichever tier holds it.
        for (case, payload) in &payloads {
            assert_eq!(store.peek(*case).unwrap().as_ref(), Some(payload));
            assert_eq!(store.take(*case).unwrap().as_ref(), Some(payload));
        }
        assert!(store.is_empty());
        drop(store);
        assert!(!dir.join("spill.log").exists(), "log removed on drop");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn always_policy_fsyncs_every_append() {
        let dir = scratch("fsync-always");
        let mut store = SpillStore::new(Some(dir.clone()), 0, SyncPolicy::Always);
        for i in 0..5u32 {
            store
                .insert(sym(&format!("F-{i}")), &mixed_payload(i, 600))
                .unwrap();
        }
        assert!(store.stats().disk_demotions >= 5);
        assert!(
            store.stats().fsyncs >= 5,
            "every append synced: {:?}",
            store.stats()
        );
        drop(store);

        let mut lazy = SpillStore::new(Some(dir.clone()), 0, SyncPolicy::Never);
        for i in 0..5u32 {
            lazy.insert(sym(&format!("F-{i}")), &mixed_payload(i, 600))
                .unwrap();
        }
        assert_eq!(lazy.stats().fsyncs, 0, "never means never");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compression_is_pressure_gated() {
        let dir = scratch("pressure");
        // Highly compressible payload: LZSS would shrink it ~10x, so the
        // stored size tells us whether the codec ran.
        let payload: Vec<u8> = b"T06 HT-99 201007060900 success "
            .iter()
            .cycle()
            .take(2048)
            .copied()
            .collect();

        // Headroom: a roomy budget parks the blob raw (tag + payload).
        let mut roomy = SpillStore::new(Some(dir.clone()), 1024 * 1024, SyncPolicy::Never);
        roomy.insert(sym("P-raw"), &payload).unwrap();
        assert_eq!(roomy.mem_bytes, payload.len() + 1, "parked raw");
        assert_eq!(roomy.take(sym("P-raw")).unwrap().unwrap(), payload);
        drop(roomy);

        // Pressure: a budget under 2x the payload compresses on insert,
        // and the compressible blob stays resident — no disk involved.
        let mut tight = SpillStore::new(Some(dir.clone()), 3000, SyncPolicy::Never);
        tight.insert(sym("P-lz"), &payload).unwrap();
        assert!(
            tight.mem_bytes * 2 < payload.len(),
            "compressed in place ({} B of {} B)",
            tight.mem_bytes,
            payload.len()
        );
        assert_eq!(tight.stats().disk_demotions, 0);
        assert_eq!(tight.take(sym("P-lz")).unwrap().unwrap(), payload);
        drop(tight);

        // Overflow: a raw-parked blob repacks on its way out of a filling
        // tier; when compression alone reclaims the budget it stays
        // resident instead of demoting. P-0 parks raw under the watermark,
        // the Q-i compress past the cap, and the overflow squeezes P-0.
        let mut filling = SpillStore::new(Some(dir.clone()), 6000, SyncPolicy::Never);
        filling.insert(sym("P-0"), &payload).unwrap();
        assert_eq!(filling.mem_bytes, payload.len() + 1, "parked raw");
        for i in 0..20 {
            filling.insert(sym(&format!("Q-{i}")), &payload).unwrap();
        }
        assert!(filling.mem_bytes <= 6000, "budget honored");
        assert_eq!(filling.stats().disk_demotions, 0, "repack avoided disk");
        assert_eq!(filling.take(sym("P-0")).unwrap().unwrap(), payload);
        for i in 0..20 {
            let got = filling.take(sym(&format!("Q-{i}"))).unwrap().unwrap();
            assert_eq!(got, payload);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn removals_trigger_compaction() {
        let dir = scratch("compact");
        let mut store = SpillStore::new(Some(dir.clone()), 0, SyncPolicy::Batched(4));
        let payload: Vec<u8> = (0..4000u32)
            .map(|j| j.wrapping_mul(2654435761) as u8)
            .collect();
        for i in 0..200 {
            store.insert(sym(&format!("C-{i}")), &payload).unwrap();
        }
        // Force everything pending onto disk by crossing the flush line.
        assert!(store.stats().disk_demotions > 0);
        for i in 0..190 {
            store.remove(sym(&format!("C-{i}"))).unwrap();
        }
        assert!(
            store.stats().compactions > 0,
            "dead bytes must trigger compaction"
        );
        for i in 190..200 {
            let case = sym(&format!("C-{i}"));
            if store.contains(case) {
                assert_eq!(store.take(case).unwrap().unwrap(), payload);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn construction_sweeps_orphaned_spill_files() {
        let dir = scratch("orphans");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("HT-1-0123456789abcdef.pclc"), b"stale").unwrap();
        fs::write(dir.join("spill.log"), b"stale log").unwrap();
        fs::write(dir.join("keep.txt"), b"unrelated").unwrap();
        let store = SpillStore::new(Some(dir.clone()), 0, SyncPolicy::Never);
        assert_eq!(store.orphans_swept(), 2);
        assert_eq!(
            store.stats().torn_tail_truncations,
            1,
            "the garbage leftover log counts as a torn tail"
        );
        assert!(!dir.join("HT-1-0123456789abcdef.pclc").exists());
        assert!(!dir.join("spill.log").exists());
        assert!(dir.join("keep.txt").exists(), "sweep is format-scoped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reinsert_replaces_and_log_reads_survive_replacement() {
        let dir = scratch("replace");
        let mut store = SpillStore::new(Some(dir.clone()), 0, SyncPolicy::Never);
        let a: Vec<u8> = (0..3000u32).map(|j| (j * 31) as u8).collect();
        let b: Vec<u8> = (0..3000u32).map(|j| (j * 37) as u8).collect();
        for i in 0..120 {
            store.insert(sym(&format!("R-{i}")), &a).unwrap();
        }
        for i in 0..120 {
            store.insert(sym(&format!("R-{i}")), &b).unwrap();
        }
        assert_eq!(store.len(), 120, "replacement must not double-count");
        for i in 0..120 {
            assert_eq!(store.take(sym(&format!("R-{i}"))).unwrap().unwrap(), b);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_log_stops_at_torn_tail() {
        let dir = scratch("recover");
        let mut store = SpillStore::new(Some(dir.clone()), 0, SyncPolicy::Never);
        let payloads: Vec<(Symbol, Vec<u8>)> = (0..8u32)
            .map(|i| (sym(&format!("V-{i}")), mixed_payload(i, 900)))
            .collect();
        for (case, payload) in &payloads {
            store.insert(*case, payload).unwrap();
        }
        let log_path = dir.join("spill.log");
        let pristine = fs::read(&log_path).unwrap();

        // Pristine log: every record comes back, in order, bit-exact.
        let scan = scan_records(&pristine);
        assert_eq!(scan.dropped_bytes, 0);
        assert_eq!(scan.records.len(), payloads.len());
        for ((case, payload), (idx, blob)) in payloads.iter().zip(&scan.records) {
            assert_eq!(*idx, case.index());
            assert_eq!(&decompress(blob).unwrap(), payload);
        }

        // Cut mid-record and graft garbage on: the scan keeps exactly the
        // records fully inside the cut and drops the rest.
        let cut = scan.valid_bytes as usize / 2;
        let mut torn = pristine[..cut].to_vec();
        torn.extend_from_slice(b"\xde\xad\xbe\xefgarbage tail");
        let scan_torn = scan_records(&torn);
        assert!(scan_torn.records.len() < payloads.len());
        assert!(scan_torn.dropped_bytes > 0);
        for ((case, payload), (idx, blob)) in payloads.iter().zip(&scan_torn.records) {
            assert_eq!(*idx, case.index());
            assert_eq!(&decompress(blob).unwrap(), payload);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_append_truncates_and_requeues() {
        let dir = scratch("fault-append");
        let mut store = SpillStore::new(Some(dir.clone()), 0, SyncPolicy::Never);
        let first = mixed_payload(1, 800);
        store.insert(sym("A-1"), &first).unwrap();
        let tail = fs::metadata(dir.join("spill.log")).unwrap().len();

        // The next durable write under this directory tears halfway.
        fault::arm(fault::FaultPlan::new(&dir, fault::FaultKind::ShortWrite, 1));
        let second = mixed_payload(2, 800);
        let err = store.insert(sym("A-2"), &second).unwrap_err();
        assert!(!err.is_no_space());
        fault::disarm(&dir);

        // The torn bytes were truncated away and the blob requeued: the
        // log is exactly as long as before the failure, the scan sees
        // only whole records, and the case is still readable.
        assert_eq!(fs::metadata(dir.join("spill.log")).unwrap().len(), tail);
        assert_eq!(store.stats().torn_tail_truncations, 1);
        assert!(store.stats().injected_faults >= 1);
        let scan = recover_log(&dir.join("spill.log")).unwrap();
        assert_eq!(scan.dropped_bytes, 0);
        assert_eq!(store.take(sym("A-2")).unwrap().unwrap(), second);
        assert_eq!(store.take(sym("A-1")).unwrap().unwrap(), first);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_append_is_typed_and_recoverable() {
        let dir = scratch("fault-enospc");
        let mut store = SpillStore::new(Some(dir.clone()), 0, SyncPolicy::Never);
        store.insert(sym("E-1"), &mixed_payload(1, 700)).unwrap();
        fault::arm(fault::FaultPlan::new(&dir, fault::FaultKind::Enospc, 1));
        let payload = mixed_payload(2, 700);
        let err = store.insert(sym("E-2"), &payload).unwrap_err();
        assert!(err.is_no_space(), "{err}");
        // The blob is parked in the pending buffer: readable now, flushed
        // once the disk comes back.
        assert_eq!(store.peek(sym("E-2")).unwrap().unwrap(), payload);
        fault::disarm(&dir);
        store.insert(sym("E-3"), &mixed_payload(3, 700)).unwrap();
        assert_eq!(store.take(sym("E-2")).unwrap().unwrap(), payload);
        let _ = fs::remove_dir_all(&dir);
    }
}
